//! Offline stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! Only `crossbeam::scope` / `Scope::spawn` are used by this workspace;
//! they are implemented on top of `std::thread::scope`. As with real
//! crossbeam, `scope` returns `Err` with the panic payload when any
//! spawned thread panicked instead of unwinding into the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use crate::{scope, Scope, ScopedJoinHandle};
}

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope again so it
    /// can spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns; if any
/// of them (or the closure itself) panicked, the panic payload is
/// returned as `Err` rather than propagated.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_state() {
        let hits = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..4 {
                let hits = &hits;
                scope.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
