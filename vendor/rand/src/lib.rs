//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a deterministic xoshiro256++ `SmallRng` with just the trait surface the
//! repo uses: `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`. Streams are stable across runs for a given seed (all tests
//! and workloads in this repo only require self-consistency, not
//! bit-compatibility with upstream rand).

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let frac: $t = Standard.sample(rng);
                self.start + frac * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let frac: $t = Standard.sample(rng);
                start + frac * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    pub use crate::SmallRng;
}

/// Deterministic xoshiro256++ generator seeded via splitmix64, the same
/// construction upstream `SmallRng` uses on 64-bit targets.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "got {hits}");
    }
}
