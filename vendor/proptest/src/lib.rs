//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal property-testing harness with the same surface the repo's
//! tests use: the `proptest!` macro, `ProptestConfig`, range/tuple/
//! collection/bool strategies, `prop_map`/`prop_flat_map`, `prop_oneof!`,
//! `Just`, and `prop_assert!`/`prop_assert_eq!`. Differences from real
//! proptest: no shrinking (failures report the raw case), and generation
//! is seeded deterministically per case index so runs are reproducible.

#![allow(clippy::type_complexity)]

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`. Only `cases`
    /// is consulted; the other knobs exist for struct-update-syntax
    /// compatibility.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_local_rejects: u32,
        pub max_global_rejects: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_local_rejects: 65_536,
                max_global_rejects: 1_024,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic splitmix64 stream, seeded from the case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            Self {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        pub fn next_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }

        pub fn next_f32(&mut self) -> f32 {
            (((self.next_u64() >> 40) as u32) as f32) * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values. Unlike real proptest there is no value
    /// tree / shrinking: `sample` draws one value per case.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u128 + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty, $draw:ident);*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.$draw() * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + rng.$draw() * (end - start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, next_f32; f64, next_f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound accepted by `collection::vec`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct Weighted {
        probability: f64,
    }

    /// A boolean that is `true` with the given probability.
    pub fn weighted(probability: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&probability));
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.probability
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Define deterministic property tests. Each `fn` runs `config.cases`
/// times with inputs drawn from its strategies; the case index seeds the
/// generator, so failures reproduce exactly on re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__case as u64);
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Without shrinking, a failed property is just a failed assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(
            {
                let __s = $strat;
                Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::sample(&__s, __rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }
        ),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_collections_compose(
            xs in prop::collection::vec((0u32..8, 0u32..8), 1..20),
            p in 0.05f32..=1.0,
            flag in prop::bool::weighted(0.5),
            mode in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in xs {
                prop_assert!(a < 8 && b < 8);
            }
            prop_assert!((0.05..=1.0).contains(&p));
            let _ = flag;
            prop_assert!((1u8..=3).contains(&mode));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            pair in (2usize..10).prop_flat_map(|n| {
                prop::collection::vec(0..n, 1..4).prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u32..100, 0u32..100);
        let a: Vec<_> = (0..10)
            .map(|c| strat.sample(&mut crate::test_runner::TestRng::for_case(c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.sample(&mut crate::test_runner::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
