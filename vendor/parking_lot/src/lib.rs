//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal implementation. Semantics match
//! `parking_lot` where the workspace relies on them: `lock()` returns a
//! guard directly and there is no poisoning — a panicking thread does not
//! wedge the lock for everyone else.
//!
//! Like the real crate (and unlike `std::sync::Mutex`), `Mutex` is a
//! word-sized adaptive lock: an uncontended acquire is a single CAS, a
//! briefly contended one spins, and a longer wait yields to the scheduler
//! instead of parking. The workspace's hot locks are per-thread and
//! effectively uncontended, which is exactly the case this favours.

use std::cell::UnsafeCell;
use std::fmt;
use std::hint;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// Safety: standard mutex reasoning — the flag serialises access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return MutexGuard { lock: self };
        }
        self.lock_contended()
    }

    #[cold]
    fn lock_contended(&self) -> MutexGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            // Read-only wait so the line stays shared while the holder works.
            while self.locked.load(Ordering::Relaxed) {
                if spins < 64 {
                    spins += 1;
                    hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return MutexGuard { lock: self };
            }
        }
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Safety: the guard holds the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard holds the lock exclusively.
        unsafe { &mut *self.lock.data.get() }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_refuses_while_held() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_lock_serialises() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
