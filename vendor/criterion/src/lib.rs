//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal wall-clock benchmark harness exposing the criterion surface
//! the benches use: `criterion_group!`/`criterion_main!`, `Criterion::
//! bench_function`, `benchmark_group` with `bench_with_input`/
//! `BenchmarkId`, and `Throughput`. Each benchmark warms up briefly,
//! calibrates an iteration count, then reports mean ns/iter (and
//! elements/s when a throughput is set). No statistics, plots, or
//! baseline comparisons — numbers are indicative, not criterion-grade.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(400);

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// One benchmark invocation: `iter` calibrates and measures the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Self {
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = (WARMUP.as_nanos() / u128::from(warm_iters.max(1))).max(1);
        let iters = (MEASURE.as_nanos() / per_iter).clamp(10, 100_000_000) as u64;
        let timer = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = timer.elapsed();
        self.iters = iters;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:<48} (no measurement)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let mut line = format!("{id:<48} time: [{ns:>12.2} ns/iter]");
        if let Some(tp) = throughput {
            let per_sec = match tp {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64 * 1e9 / ns,
            };
            let unit = match tp {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!("  thrpt: [{per_sec:>14.0} {unit}]"));
        }
        println!("{line}");
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Bench-group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench invokes the binary with `--bench`; this harness
            // takes no arguments and runs every registered group.
            $($group();)+
        }
    };
}
