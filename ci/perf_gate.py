#!/usr/bin/env python3
"""Perf gate: compare a freshly benched CSV against its checked-in baseline.

Usage: perf_gate.py BASELINE.csv CANDIDATE.csv [--threshold 0.25]
       perf_gate.py --ratio RESULTS.csv [--threshold 0.03]

Both files are the per-op CSVs the quick-mode benches record
(`results/dispatch.csv`, `results/tracker_scale.csv`): a header row, then
one row per variant whose *last* column is the per-op nanosecond figure and
whose remaining columns form the variant key. CSVs that carry extra
informational columns after the timing (`results/superops.csv` appends a
hit-rate column) pass `--key-cols N`: the first N columns form the key,
column N+1 is the per-op figure, and everything after it is ignored.

In the default two-file mode the gate fails (exit 1) when

* any baseline variant is missing from the candidate (a bench leg
  silently disappeared), or
* any variant's per-op time exceeds its baseline by more than the
  threshold (default 25%).

Variants new in the candidate are reported but never fail the gate, and
improvements are simply printed — the checked-in baseline is only ratcheted
down by re-recording it deliberately.

In `--ratio` mode a single freshly benched CSV is checked against itself:
rows whose last key column is the on-tag (default `on`) are paired with
the row sharing every other key column but tagged with the off-tag
(default `off`), and the gate fails when any `on` time exceeds its `off`
partner by more than the threshold (default 3%, the continuous profiler's
overhead budget), or when either side of a pair is missing. A *negative*
threshold turns the gate into a speedup floor: `--threshold=-0.5` with
`--on-tag workers4 --off-tag serial` demands the 4-worker decode run in
under half the serial time (`results/parallel_decode.csv`).

A referenced CSV that is missing or unreadable is a clean, explicit
failure (`perf-gate: <path>: cannot read: ...`), not a traceback — the
usual cause is the bench that records it not having run.
"""

import argparse
import csv
import sys


def load(path, key_cols=None):
    """Returns {variant-key-tuple: per-op-ns} for one CSV.

    By default the last column is the per-op value and everything before
    it is the key; with `key_cols` the first `key_cols` columns are the
    key, the next column is the value and trailing columns are ignored.
    """
    try:
        with open(path, newline="") as fh:
            rows = [r for r in csv.reader(fh) if r]
    except OSError as e:
        sys.exit(f"perf-gate: {path}: cannot read: {e.strerror or e} "
                 "(did the bench that records this CSV run?)")
    if len(rows) < 2:
        sys.exit(f"perf-gate: {path}: no data rows")
    out = {}
    for row in rows[1:]:
        if key_cols is not None and len(row) <= key_cols:
            sys.exit(f"perf-gate: {path}: row {row!r} has no value column "
                     f"after {key_cols} key columns")
        key, value = ((tuple(row[:key_cols]), row[key_cols])
                      if key_cols is not None
                      else (tuple(row[:-1]), row[-1]))
        try:
            out[key] = float(value)
        except ValueError:
            sys.exit(f"perf-gate: {path}: non-numeric per-op value in {row!r}")
    return out


def ratio_gate(args):
    """On/off self-comparison of one CSV (see module docstring)."""
    threshold = args.threshold if args.threshold is not None else 0.03
    rows = load(args.baseline, args.key_cols)
    on = {k[:-1]: v for k, v in rows.items() if k[-1] == args.on_tag}
    off = {k[:-1]: v for k, v in rows.items() if k[-1] == args.off_tag}
    if not on and not off:
        sys.exit(f"perf-gate: {args.baseline}: no "
                 f"{args.on_tag!r}/{args.off_tag!r} rows to pair")

    failures = []
    print(f"perf-gate: {args.baseline} {args.on_tag} vs {args.off_tag} "
          f"(threshold {threshold:+.0%})")
    for key in sorted(set(on) | set(off)):
        name = "/".join(key) or "(all)"
        if key not in on or key not in off:
            tag = args.on_tag if key not in on else args.off_tag
            failures.append(f"{name}: no {tag!r} row to pair")
            print(f"  {name:<24} UNPAIRED (missing {tag!r})")
            continue
        o, f = on[key], off[key]
        ratio = o / f if f > 0 else (1.0 if o == 0 else float("inf"))
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {args.on_tag} {o:.2f} ns/op vs "
                f"{args.off_tag} {f:.2f} ({ratio - 1.0:+.1%})")
        print(f"  {name:<24} {f:>10.2f} -> {o:>10.2f} ns/op  "
              f"({ratio - 1.0:+7.1%})  {verdict}")

    if failures:
        print("perf-gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf-gate: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--threshold", type=float, default=None,
                    help="allowed fractional per-op regression "
                         "(default 0.25, or 0.03 in --ratio mode); a "
                         "negative value in --ratio mode demands a speedup "
                         "(-0.5: on-tag rows must halve their off-tag "
                         "partner). Use --threshold=-0.5 syntax for "
                         "negative values")
    ap.add_argument("--ratio", action="store_true",
                    help="self-compare one CSV: pair rows by key, gating "
                         "on-tag rows against their off-tag partners")
    ap.add_argument("--on-tag", default="on",
                    help="variant tag of the gated rows (default 'on')")
    ap.add_argument("--off-tag", default="off",
                    help="variant tag of the reference rows (default 'off')")
    ap.add_argument("--key-cols", type=int, default=None,
                    help="first N columns form the variant key and column "
                         "N+1 is the per-op value; trailing informational "
                         "columns are ignored (default: last column is the "
                         "value)")
    args = ap.parse_args()
    if args.key_cols is not None and args.key_cols < 1:
        ap.error("--key-cols must be at least 1")

    if args.ratio:
        if args.candidate is not None:
            ap.error("--ratio takes a single CSV")
        return ratio_gate(args)
    if args.candidate is None:
        ap.error("two-file mode needs BASELINE and CANDIDATE")
    if args.threshold is None:
        args.threshold = 0.25

    base = load(args.baseline, args.key_cols)
    cand = load(args.candidate, args.key_cols)

    failures = []
    print(f"perf-gate: {args.candidate} vs {args.baseline} "
          f"(threshold +{args.threshold:.0%})")
    for key in sorted(base):
        name = "/".join(key)
        if key not in cand:
            failures.append(f"{name}: present in baseline but not benched")
            print(f"  {name:<24} MISSING")
            continue
        b, c = base[key], cand[key]
        # A zero baseline is a hard pin (e.g. cold-start trap counts):
        # staying at zero is fine, any non-zero value is a regression.
        ratio = c / b if b > 0 else (1.0 if c == 0 else float("inf"))
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {c:.2f} ns/op vs baseline {b:.2f} "
                f"({ratio - 1.0:+.1%})")
        print(f"  {name:<24} {b:>10.2f} -> {c:>10.2f} ns/op  "
              f"({ratio - 1.0:+7.1%})  {verdict}")
    for key in sorted(set(cand) - set(base)):
        print(f"  {'/'.join(key):<24} (new variant, {cand[key]:.2f} ns/op — "
              f"not gated)")

    if failures:
        print("perf-gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf-gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
