#!/usr/bin/env python3
"""Perf gate: compare a freshly benched CSV against its checked-in baseline.

Usage: perf_gate.py BASELINE.csv CANDIDATE.csv [--threshold 0.25]

Both files are the per-op CSVs the quick-mode benches record
(`results/dispatch.csv`, `results/tracker_scale.csv`): a header row, then
one row per variant whose *last* column is the per-op nanosecond figure and
whose remaining columns form the variant key.

The gate fails (exit 1) when

* any baseline variant is missing from the candidate (a bench leg
  silently disappeared), or
* any variant's per-op time exceeds its baseline by more than the
  threshold (default 25%).

Variants new in the candidate are reported but never fail the gate, and
improvements are simply printed — the checked-in baseline is only ratcheted
down by re-recording it deliberately.
"""

import argparse
import csv
import sys


def load(path):
    """Returns {variant-key-tuple: per-op-ns} for one CSV."""
    with open(path, newline="") as fh:
        rows = [r for r in csv.reader(fh) if r]
    if len(rows) < 2:
        sys.exit(f"perf-gate: {path}: no data rows")
    out = {}
    for row in rows[1:]:
        try:
            out[tuple(row[:-1])] = float(row[-1])
        except ValueError:
            sys.exit(f"perf-gate: {path}: non-numeric per-op value in {row!r}")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional per-op regression (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    print(f"perf-gate: {args.candidate} vs {args.baseline} "
          f"(threshold +{args.threshold:.0%})")
    for key in sorted(base):
        name = "/".join(key)
        if key not in cand:
            failures.append(f"{name}: present in baseline but not benched")
            print(f"  {name:<24} MISSING")
            continue
        b, c = base[key], cand[key]
        # A zero baseline is a hard pin (e.g. cold-start trap counts):
        # staying at zero is fine, any non-zero value is a regression.
        ratio = c / b if b > 0 else (1.0 if c == 0 else float("inf"))
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {c:.2f} ns/op vs baseline {b:.2f} "
                f"({ratio - 1.0:+.1%})")
        print(f"  {name:<24} {b:>10.2f} -> {c:>10.2f} ns/op  "
              f"({ratio - 1.0:+7.1%})  {verdict}")
    for key in sorted(set(cand) - set(base)):
        print(f"  {'/'.join(key):<24} (new variant, {cand[key]:.2f} ns/op — "
              f"not gated)")

    if failures:
        print("perf-gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf-gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
