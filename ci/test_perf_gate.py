#!/usr/bin/env python3
"""Unit tests for ci/perf_gate.py.

Covers the gate's full decision table: a baseline variant missing from
the candidate, a regression past the threshold, an improvement (never
gated), a variant new in the candidate (reported, never gated), and the
zero-baseline hard pin used for cold-start trap counts. The `--ratio`
self-comparison mode (the continuous profiler's 3% on/off overhead
budget) gets its own table: within budget, past budget, an unpaired
row, a custom threshold, and the negative-threshold speedup floor the
fragment-parallel decode gate uses (workers4 must at least halve
serial). Missing or unreadable CSVs must die with a clean perf-gate
message in both modes, never a traceback.

Run directly (`python3 ci/test_perf_gate.py`) or via unittest discovery
(`python3 -m unittest discover ci`); CI runs it in the model-check job.
"""

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import perf_gate  # noqa: E402


def write_csv(directory, name, rows):
    path = os.path.join(directory, name)
    with open(path, "w", newline="") as fh:
        fh.write("\n".join(",".join(r) for r in rows) + "\n")
    return path


HEADER = ["bench", "variant", "ns_per_op"]


class PerfGateTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def run_gate(self, base_rows, cand_rows, threshold=None):
        """Runs perf_gate.main() on two in-tempdir CSVs.

        Returns (exit_code, stdout_text).
        """
        base = write_csv(self.dir, "base.csv", [HEADER] + base_rows)
        cand = write_csv(self.dir, "cand.csv", [HEADER] + cand_rows)
        argv = ["perf_gate.py", base, cand]
        if threshold is not None:
            argv += ["--threshold", str(threshold)]
        out = io.StringIO()
        old_argv, sys.argv = sys.argv, argv
        try:
            with contextlib.redirect_stdout(out):
                code = perf_gate.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue()

    def test_identical_results_pass(self):
        rows = [["dispatch", "direct", "12.5"], ["dispatch", "virtual", "30.0"]]
        code, out = self.run_gate(rows, rows)
        self.assertEqual(code, 0)
        self.assertIn("perf-gate: ok", out)

    def test_missing_variant_fails(self):
        base = [["dispatch", "direct", "12.5"], ["dispatch", "virtual", "30.0"]]
        cand = [["dispatch", "direct", "12.5"]]
        code, out = self.run_gate(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("MISSING", out)
        self.assertIn("present in baseline but not benched", out)

    def test_regression_past_threshold_fails(self):
        base = [["dispatch", "direct", "10.0"]]
        cand = [["dispatch", "direct", "13.0"]]  # +30% > default 25%
        code, out = self.run_gate(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("perf-gate: FAIL", out)

    def test_regression_within_threshold_passes(self):
        base = [["dispatch", "direct", "10.0"]]
        cand = [["dispatch", "direct", "12.0"]]  # +20% < default 25%
        code, out = self.run_gate(base, cand)
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_custom_threshold_is_honoured(self):
        base = [["dispatch", "direct", "10.0"]]
        cand = [["dispatch", "direct", "12.0"]]  # +20% > custom 10%
        code, _ = self.run_gate(base, cand, threshold=0.10)
        self.assertEqual(code, 1)

    def test_improvement_passes_and_is_not_ratcheted(self):
        base = [["tracker", "t8", "100.0"]]
        cand = [["tracker", "t8", "40.0"]]
        code, out = self.run_gate(base, cand)
        self.assertEqual(code, 0)
        # The baseline is only re-recorded deliberately; an improvement is
        # printed as an ok row, never as a failure.
        self.assertIn("-60.0%", out)
        self.assertIn("ok", out)

    def test_new_variant_is_reported_but_never_gated(self):
        base = [["dispatch", "direct", "12.5"]]
        cand = [["dispatch", "direct", "12.5"],
                ["dispatch", "megamorphic", "95.0"]]
        code, out = self.run_gate(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("new variant", out)
        self.assertIn("not gated", out)

    def test_zero_baseline_pins_cold_traps_at_zero(self):
        # A zero baseline (e.g. warm-start cold_traps) is a hard pin:
        # staying at zero passes, any nonzero candidate is a regression
        # regardless of the threshold.
        base = [["tracker", "cold_traps", "0"]]
        code, _ = self.run_gate(base, [["tracker", "cold_traps", "0"]])
        self.assertEqual(code, 0)
        code, out = self.run_gate(base, [["tracker", "cold_traps", "1"]],
                                  threshold=100.0)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_empty_candidate_file_is_a_hard_error(self):
        base = write_csv(self.dir, "base.csv",
                         [HEADER, ["dispatch", "direct", "12.5"]])
        cand = write_csv(self.dir, "cand.csv", [HEADER])
        old_argv, sys.argv = sys.argv, ["perf_gate.py", base, cand]
        try:
            with self.assertRaises(SystemExit) as cm:
                with contextlib.redirect_stdout(io.StringIO()):
                    perf_gate.main()
        finally:
            sys.argv = old_argv
        self.assertIn("no data rows", str(cm.exception))

    def run_ratio_gate(self, rows, threshold=None,
                       header=("threads", "sampling", "per_op_ns")):
        """Runs perf_gate.main() in --ratio mode on one in-tempdir CSV."""
        path = write_csv(self.dir, "ratio.csv", [list(header)] + rows)
        argv = ["perf_gate.py", "--ratio", path]
        if threshold is not None:
            argv += ["--threshold", str(threshold)]
        out = io.StringIO()
        old_argv, sys.argv = sys.argv, argv
        try:
            with contextlib.redirect_stdout(out):
                code = perf_gate.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue()

    def test_ratio_within_budget_passes(self):
        rows = [["1", "off", "43.41"], ["1", "on", "44.48"],  # +2.5%
                ["4", "off", "46.76"], ["4", "on", "47.72"]]  # +2.1%
        code, out = self.run_ratio_gate(rows)
        self.assertEqual(code, 0)
        self.assertIn("perf-gate: ok", out)

    def test_ratio_past_budget_fails(self):
        rows = [["1", "off", "40.0"], ["1", "on", "41.0"],   # +2.5%
                ["4", "off", "40.0"], ["4", "on", "42.0"]]   # +5.0% > 3%
        code, out = self.run_ratio_gate(rows)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("perf-gate: FAIL", out)

    def test_ratio_unpaired_row_fails(self):
        rows = [["1", "off", "40.0"], ["1", "on", "40.5"],
                ["4", "on", "41.0"]]  # no off partner
        code, out = self.run_ratio_gate(rows)
        self.assertEqual(code, 1)
        self.assertIn("UNPAIRED", out)

    def test_ratio_custom_threshold_is_honoured(self):
        rows = [["1", "off", "40.0"], ["1", "on", "42.0"]]  # +5%
        code, _ = self.run_ratio_gate(rows, threshold=0.10)
        self.assertEqual(code, 0)
        code, _ = self.run_ratio_gate(rows, threshold=0.03)
        self.assertEqual(code, 1)

    def run_ratio_gate_keycols(self, rows, key_cols, threshold=None):
        """--ratio mode with an explicit --key-cols on one CSV."""
        header = ["threads", "variant", "per_op_ns", "hit_rate"]
        path = write_csv(self.dir, "keycols.csv", [header] + rows)
        argv = ["perf_gate.py", "--ratio", path, "--key-cols", str(key_cols)]
        if threshold is not None:
            argv += ["--threshold", str(threshold)]
        out = io.StringIO()
        old_argv, sys.argv = sys.argv, argv
        try:
            with contextlib.redirect_stdout(out):
                code = perf_gate.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue()

    def test_key_cols_ignores_trailing_hit_rate_column(self):
        # superops.csv shape: the timing sits before an informational
        # hit-rate column, so --key-cols 2 must pair on (threads, variant)
        # and gate on column 3 only.
        rows = [["1", "off", "17.0", "0.00"], ["1", "on", "8.0", "0.97"],
                ["4", "off", "18.0", "0.00"], ["4", "on", "18.2", "0.95"]]
        code, out = self.run_ratio_gate_keycols(rows, key_cols=2)
        self.assertEqual(code, 0)
        self.assertIn("perf-gate: ok", out)

    def test_key_cols_still_detects_a_regression(self):
        rows = [["1", "off", "17.0", "0.00"], ["1", "on", "18.0", "0.99"]]
        code, out = self.run_ratio_gate_keycols(rows, key_cols=2)  # +5.9%
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_key_cols_row_without_value_column_is_a_hard_error(self):
        path = write_csv(self.dir, "short.csv",
                         [["threads", "variant", "per_op_ns"],
                          ["1", "off"]])
        old_argv = sys.argv
        sys.argv = ["perf_gate.py", "--ratio", path, "--key-cols", "2"]
        try:
            with self.assertRaises(SystemExit) as cm:
                with contextlib.redirect_stdout(io.StringIO()):
                    perf_gate.main()
        finally:
            sys.argv = old_argv
        self.assertIn("no value column", str(cm.exception))

    def test_missing_candidate_file_fails_cleanly(self):
        # Satellite of the decode-gate work: a results CSV the bench never
        # wrote must produce the explicit perf-gate message, not an
        # uncaught FileNotFoundError traceback.
        base = write_csv(self.dir, "base.csv",
                         [HEADER, ["dispatch", "direct", "12.5"]])
        missing = os.path.join(self.dir, "never_recorded.csv")
        old_argv, sys.argv = sys.argv, ["perf_gate.py", base, missing]
        try:
            with self.assertRaises(SystemExit) as cm:
                with contextlib.redirect_stdout(io.StringIO()):
                    perf_gate.main()
        finally:
            sys.argv = old_argv
        msg = str(cm.exception)
        self.assertIn("perf-gate:", msg)
        self.assertIn("cannot read", msg)
        self.assertIn("never_recorded.csv", msg)

    def test_missing_ratio_file_fails_cleanly(self):
        missing = os.path.join(self.dir, "parallel_decode.csv")
        old_argv, sys.argv = sys.argv, ["perf_gate.py", "--ratio", missing]
        try:
            with self.assertRaises(SystemExit) as cm:
                with contextlib.redirect_stdout(io.StringIO()):
                    perf_gate.main()
        finally:
            sys.argv = old_argv
        msg = str(cm.exception)
        self.assertIn("cannot read", msg)
        self.assertIn("bench that records this CSV", msg)

    def test_negative_threshold_gates_a_speedup_floor(self):
        # The fragment-parallel decode gate: workers4 paired against
        # serial with --threshold=-0.5 demands at least a 2x speedup.
        def gate(rows):
            path = write_csv(self.dir, "speedup.csv", [HEADER] + rows)
            argv = ["perf_gate.py", "--ratio", path, "--on-tag", "workers4",
                    "--off-tag", "serial", "--threshold=-0.5"]
            out = io.StringIO()
            old_argv, sys.argv = sys.argv, argv
            try:
                with contextlib.redirect_stdout(out):
                    code = perf_gate.main()
            finally:
                sys.argv = old_argv
            return code, out.getvalue()

        code, out = gate([["server-rr", "serial", "28.5"],
                          ["server-rr", "workers4", "7.2"]])  # 3.96x
        self.assertEqual(code, 0)
        self.assertIn("perf-gate: ok", out)
        # Intermediate worker counts are extra rows, not gated pairs.
        code, _ = gate([["server-rr", "serial", "28.5"],
                       ["server-rr", "workers2", "14.3"],
                       ["server-rr", "workers4", "7.2"]])
        self.assertEqual(code, 0)
        code, out = gate([["server-rr", "serial", "28.5"],
                          ["server-rr", "workers4", "20.0"]])  # only 1.43x
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        code, out = gate([["server-rr", "serial", "28.5"]])  # bench leg lost
        self.assertEqual(code, 1)
        self.assertIn("UNPAIRED", out)

    def test_non_numeric_per_op_value_is_a_hard_error(self):
        base = write_csv(self.dir, "base.csv",
                         [HEADER, ["dispatch", "direct", "12.5"]])
        cand = write_csv(self.dir, "cand.csv",
                         [HEADER, ["dispatch", "direct", "fast"]])
        old_argv, sys.argv = sys.argv, ["perf_gate.py", base, cand]
        try:
            with self.assertRaises(SystemExit) as cm:
                with contextlib.redirect_stdout(io.StringIO()):
                    perf_gate.main()
        finally:
            sys.argv = old_argv
        self.assertIn("non-numeric", str(cm.exception))


if __name__ == "__main__":
    unittest.main()
