//! Integration tests for the warm-start pipeline and the export lint gate:
//! seeding the engine from `dacce-analyze`'s static graph must strictly
//! reduce first-invocation traps across the workload suite, and a corrupted
//! export must be caught by the verifier with a witness path.

use dacce::{export_samples, export_state, import, DacceConfig, DacceRuntime};
use dacce_analyze::verify_export;
use dacce_program::{CostModel, InterpConfig, Interpreter, ProgramBuilder};
use dacce_workloads::{all_benchmarks, run_dacce_only, run_dacce_warm, DriverConfig};

/// The acceptance criterion of the warm-start ablation: strictly fewer
/// first-invocation traps than a cold engine on every suite benchmark, with
/// all samples still validating.
#[test]
fn warm_start_traps_strictly_below_cold_across_suite() {
    for spec in all_benchmarks() {
        let cfg = DriverConfig {
            scale: 0.01,
            ..DriverConfig::default()
        };
        let (_, cold) = run_dacce_only(&spec, &cfg);
        let (report, rt) = run_dacce_warm(&spec, &cfg);
        let warm = rt.stats();
        assert!(
            warm.traps < cold.traps,
            "{}: warm traps {} not below cold {}",
            spec.name,
            warm.traps,
            cold.traps
        );
        assert_eq!(
            report.mismatches, 0,
            "{}: {:?}",
            spec.name, report.mismatch_examples
        );
        assert_eq!(report.unsupported, 0, "{}", spec.name);
        let wr = rt.warm_report().expect("warm run has a report");
        assert!(wr.seeded_edges > 0, "{}: nothing seeded", spec.name);
        rt.engine()
            .check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

/// Engine exports pass the lint verifier unmodified, and a seeded mutation
/// (duplicating one edge's encoding) is caught with a concrete witness.
#[test]
fn mutated_export_is_caught_with_witness() {
    // Diamond: c has two incoming edges with distinct encodings 0 and 1.
    let mut b = ProgramBuilder::new();
    let main = b.function("main");
    let a = b.function("a");
    let bb = b.function("b");
    let c = b.function("c");
    b.body(main).call(a).call(bb).done();
    b.body(a).work(1).call(c).done();
    b.body(bb).work(1).call(c).done();
    b.body(c).work(1).done();
    let p = b.build(main);

    let mut dacce_cfg = DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 8,
        ..DacceConfig::default()
    };
    dacce_cfg.keep_sample_log = true;
    let mut rt = DacceRuntime::new(dacce_cfg, CostModel::default());
    let icfg = InterpConfig {
        budget_calls: 5_000,
        sample_every: 37,
        ..InterpConfig::default()
    };
    let report = Interpreter::new(&p, icfg).run(&mut rt);
    assert_eq!(report.mismatches, 0);

    let mut text = export_state(rt.engine());
    text.push_str(&export_samples(rt.engine().sample_log().iter()));

    // The pristine export is lint-clean.
    let clean = import(&text).expect("export parses");
    assert!(
        verify_export(&clean).iter().all(|d| !d.is_error()),
        "pristine export must verify: {:?}",
        verify_export(&clean)
    );

    // Seeded mutation: rewrite the first non-back edge with a nonzero
    // encoding to encoding 0, duplicating its sibling's path ids.
    let mut mutated = false;
    let text: String = text
        .lines()
        .map(|line| {
            let mut fields: Vec<&str> = line.split_whitespace().collect();
            // Line shape: `edge <caller> <callee> <site> <encoding> <back>
            // <dispatch>` — zero the encoding of a non-back encoded edge.
            if !mutated
                && fields.first() == Some(&"edge")
                && fields.get(5) == Some(&"0")
                && fields.get(4).is_some_and(|e| *e != "0")
            {
                mutated = true;
                fields[4] = "0";
                format!("{}\n", fields.join(" "))
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    assert!(mutated, "export had no encoded edge to corrupt");

    let broken = import(&text).expect("mutated export still parses");
    let diags = verify_export(&broken);
    let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
    assert!(!errors.is_empty(), "mutation must be detected");
    assert!(
        errors.iter().any(|d| !d.witness.is_empty()),
        "at least one error must carry a witness path: {errors:?}"
    );
    assert!(
        errors
            .iter()
            .any(|d| d.rule == "encoding-partition" || d.rule == "path-id-unique"),
        "expected a partition/uniqueness violation: {errors:?}"
    );
}
