//! Property tests for `dacce-analyze`: on arbitrary generated programs,
//!
//! 1. the static call graph is a sound over-approximation — every edge the
//!    dynamic engine discovers is already present statically, with the same
//!    site owner;
//! 2. the encoding verifier accepts every dictionary a real engine run
//!    publishes, across eager re-encoding schedules; and
//! 3. warm-starting from the static graph eliminates first-invocation
//!    traps whenever the seed fits the id budget unpruned.

use proptest::prelude::*;

use dacce::{DacceConfig, DacceRuntime};
use dacce_analyze::{build_static_graph, verify_dicts, warm_seed};
use dacce_program::model::TargetChoice;
use dacce_program::{CostModel, InterpConfig, Interpreter, Program, ProgramBuilder};

/// A randomly shaped call op (same generator family as
/// `proptest_roundtrip.rs`).
#[derive(Clone, Debug)]
struct OpSpec {
    callee: usize,
    prob: f32,
    repeat: u16,
    indirect: bool,
    tail: bool,
}

#[derive(Clone, Debug)]
struct ProgSpec {
    functions: usize,
    bodies: Vec<Vec<OpSpec>>,
}

fn op_strategy(functions: usize) -> impl Strategy<Value = OpSpec> {
    (
        0..functions,
        0.05f32..=1.0,
        1u16..3,
        prop::bool::weighted(0.2),
        prop::bool::weighted(0.15),
    )
        .prop_map(|(callee, prob, repeat, indirect, tail)| OpSpec {
            callee,
            prob,
            repeat,
            indirect,
            tail,
        })
}

fn prog_strategy() -> impl Strategy<Value = ProgSpec> {
    (2usize..10).prop_flat_map(|functions| {
        prop::collection::vec(
            prop::collection::vec(op_strategy(functions), 0..4),
            functions,
        )
        .prop_map(move |bodies| ProgSpec { functions, bodies })
    })
}

fn build(spec: &ProgSpec) -> Program {
    let mut b = ProgramBuilder::new();
    let fns: Vec<_> = (0..spec.functions)
        .map(|i| b.function(&format!("f{i}")))
        .collect();
    let table = b.table(fns.clone());
    for (i, ops) in spec.bodies.iter().enumerate() {
        let mut body = b.body(fns[i]).work(3);
        for op in ops.iter().filter(|o| !o.tail) {
            if op.indirect {
                body = body.indirect(table, TargetChoice::Uniform, [op.prob, op.prob], op.repeat);
            } else {
                body = body.call_rep(fns[op.callee], [op.prob, op.prob], op.repeat);
            }
        }
        // Tails only outside main; see proptest_roundtrip.rs for why.
        if i != 0 {
            if let Some(op) = ops.iter().find(|o| o.tail) {
                body = if op.indirect {
                    body.tail_indirect(table, TargetChoice::Uniform, [op.prob, op.prob])
                } else {
                    body.tail(fns[op.callee], [op.prob, op.prob])
                };
            }
        }
        body.done();
    }
    b.build(fns[0])
}

fn eager_config(edge_threshold: usize) -> DacceConfig {
    DacceConfig {
        edge_threshold,
        min_events_between_reencodes: 32,
        reencode_backoff: 1.1,
        reencode_interval_cap: 4_096,
        hot_check_every: 1_500,
        hot_change_nodes: 1,
        ..DacceConfig::default()
    }
}

fn interp(seed: u64) -> InterpConfig {
    InterpConfig {
        seed,
        budget_calls: 3_000,
        sample_every: 23,
        max_depth: 48,
        ..InterpConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Soundness: every `(site, callee)` edge the engine discovers at run
    /// time is present in the static graph, owned by the same caller.
    #[test]
    fn static_graph_covers_dynamic_edges(spec in prog_strategy(), seed in 0u64..1_000) {
        let program = build(&spec);
        let sg = build_static_graph(&program);

        let mut rt = DacceRuntime::with_defaults();
        let _ = Interpreter::new(&program, interp(seed)).run(&mut rt);

        for (_, e) in rt.engine().graph().edges() {
            let sid = sg.graph.edge_id(e.site, e.callee);
            prop_assert!(
                sid.is_some(),
                "dynamic edge {:?} -> {:?} at {:?} missing statically",
                e.caller, e.callee, e.site
            );
            prop_assert_eq!(sg.site_owner.get(&e.site), Some(&e.caller));
            prop_assert_eq!(sg.graph.edge(sid.unwrap()).dispatch, e.dispatch);
        }
    }

    /// The verifier accepts every dictionary version a real engine run
    /// publishes, even under eager re-encoding.
    #[test]
    fn verifier_accepts_engine_encodings(
        spec in prog_strategy(),
        seed in 0u64..1_000,
        edge_threshold in 1usize..8,
    ) {
        let program = build(&spec);
        let mut rt = DacceRuntime::new(eager_config(edge_threshold), CostModel::default());
        let report = Interpreter::new(&program, interp(seed)).run(&mut rt);
        prop_assert_eq!(report.mismatches, 0);

        let diags = verify_dicts(rt.engine().dicts(), rt.engine().site_owner_map());
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        prop_assert!(errors.is_empty(), "verifier rejected a live engine: {errors:?}");
    }

    /// Warm start from the static graph removes every first-invocation trap
    /// whenever nothing was pruned for id-budget reasons (small programs
    /// never overflow, so nothing is).
    #[test]
    fn warm_start_eliminates_traps(spec in prog_strategy(), seed in 0u64..500) {
        let program = build(&spec);
        let seed_graph = warm_seed(&program);
        let mut rt = DacceRuntime::with_warm_start(
            DacceConfig::default(),
            CostModel::default(),
            seed_graph,
        );
        let report = Interpreter::new(&program, interp(seed)).run(&mut rt);
        prop_assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        prop_assert_eq!(report.unsupported, 0);
        let wr = *rt.warm_report().expect("warm run has a report");
        if wr.pruned_edges == 0 {
            prop_assert_eq!(rt.stats().traps, 0, "seeded edges must not trap");
        }
        prop_assert!(rt.engine().check_invariants().is_ok(),
            "invariants: {:?}", rt.engine().check_invariants());
    }
}
