//! Property tests: for arbitrary generated programs and engine
//! configurations, every sampled context decodes to exactly the oracle's
//! calling context — the fundamental invariant of the encoding (DESIGN.md).

use proptest::prelude::*;

use dacce::{CompressionMode, DacceConfig, DacceRuntime};
use dacce_program::model::TargetChoice;
use dacce_program::{CostModel, InterpConfig, Interpreter, Program, ProgramBuilder};

/// A randomly shaped call op.
#[derive(Clone, Debug)]
struct OpSpec {
    callee: usize,
    prob: f32,
    repeat: u16,
    indirect: bool,
    tail: bool,
}

/// A random program description: per function, a list of ops.
#[derive(Clone, Debug)]
struct ProgSpec {
    functions: usize,
    bodies: Vec<Vec<OpSpec>>,
}

fn op_strategy(functions: usize) -> impl Strategy<Value = OpSpec> {
    (
        0..functions,
        0.05f32..=1.0,
        1u16..3,
        prop::bool::weighted(0.2),
        prop::bool::weighted(0.15),
    )
        .prop_map(|(callee, prob, repeat, indirect, tail)| OpSpec {
            callee,
            prob,
            repeat,
            indirect,
            tail,
        })
}

fn prog_strategy() -> impl Strategy<Value = ProgSpec> {
    (2usize..10).prop_flat_map(|functions| {
        prop::collection::vec(
            prop::collection::vec(op_strategy(functions), 0..4),
            functions,
        )
        .prop_map(move |bodies| ProgSpec { functions, bodies })
    })
}

fn build(spec: &ProgSpec) -> Program {
    let mut b = ProgramBuilder::new();
    let fns: Vec<_> = (0..spec.functions)
        .map(|i| b.function(&format!("f{i}")))
        .collect();
    // One indirect table over all functions (any-to-any indirect calls).
    let table = b.table(fns.clone());
    for (i, ops) in spec.bodies.iter().enumerate() {
        let mut body = b.body(fns[i]).work(3);
        // Tails must come last; partition the ops.
        for op in ops.iter().filter(|o| !o.tail) {
            if op.indirect {
                body = body.indirect(table, TargetChoice::Uniform, [op.prob, op.prob], op.repeat);
            } else {
                body = body.call_rep(fns[op.callee], [op.prob, op.prob], op.repeat);
            }
        }
        // Tail ops everywhere except in main (i == 0): the interpreter's
        // main-loop restart models a fresh iteration, but a tail-chained
        // main never returns through its own instrumented sites — in a
        // real run those ccStack entries simply leak until process exit,
        // which the engine surfaces as a dirty reset. Excluding main keeps
        // the balanced-state invariant meaningful.
        if i != 0 {
            if let Some(op) = ops.iter().find(|o| o.tail) {
                body = if op.indirect {
                    body.tail_indirect(table, TargetChoice::Uniform, [op.prob, op.prob])
                } else {
                    body.tail(fns[op.callee], [op.prob, op.prob])
                };
            }
        }
        body.done();
    }
    b.build(fns[0])
}

fn eager_config(edge_threshold: usize, compression: CompressionMode) -> DacceConfig {
    DacceConfig {
        edge_threshold,
        min_events_between_reencodes: 32,
        reencode_backoff: 1.1,
        reencode_interval_cap: 4_096,
        compression,
        compression_min_heat: 4,
        hot_check_every: 1_500,
        hot_change_nodes: 1,
        ..DacceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// DACCE validates every sample on arbitrary programs, across eager
    /// re-encoding and every compression mode.
    #[test]
    fn dacce_decodes_everything(
        spec in prog_strategy(),
        seed in 0u64..1_000,
        edge_threshold in 1usize..8,
        mode in prop_oneof![
            Just(CompressionMode::Never),
            Just(CompressionMode::Adaptive),
            Just(CompressionMode::Always)
        ],
    ) {
        let program = build(&spec);
        let mut rt = DacceRuntime::new(eager_config(edge_threshold, mode), CostModel::default());
        let icfg = InterpConfig {
            seed,
            budget_calls: 3_000,
            sample_every: 23,
            max_depth: 48,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&program, icfg).run(&mut rt);
        prop_assert_eq!(report.mismatches, 0, "mismatches: {:?}", report.mismatch_examples);
        prop_assert_eq!(report.unsupported, 0, "some sample failed to decode");
        let stats = rt.stats();
        prop_assert_eq!(stats.decode_errors, 0);
        prop_assert_eq!(stats.unbalanced_resets, 0);
    }

    /// The encoding state returns to its initial value whenever the
    /// program fully unwinds (balanced instrumentation).
    #[test]
    fn dacce_state_is_balanced(spec in prog_strategy(), seed in 0u64..500) {
        let program = build(&spec);
        let mut rt = DacceRuntime::new(
            eager_config(3, CompressionMode::Adaptive),
            CostModel::default(),
        );
        let icfg = InterpConfig {
            seed,
            budget_calls: 2_000,
            sample_every: 0,
            max_depth: 32,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&program, icfg).run(&mut rt);
        // Tail calls legitimately produce no return events, so the trace
        // need not balance call-for-call; what must hold is that the engine
        // state itself stays consistent and clean.
        prop_assert!(report.returns <= report.calls);
        prop_assert_eq!(rt.stats().unbalanced_resets, 0);
        prop_assert!(rt.engine().check_invariants().is_ok(),
            "invariants: {:?}", rt.engine().check_invariants());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// PCCE (with its offline profile) also validates every sample on
    /// arbitrary programs.
    #[test]
    fn pcce_decodes_everything(spec in prog_strategy(), seed in 0u64..500) {
        use dacce_pcce::{PcceRuntime, ProfilingRuntime};
        let program = build(&spec);
        let icfg = InterpConfig {
            seed,
            budget_calls: 2_500,
            sample_every: 31,
            max_depth: 48,
            ..InterpConfig::default()
        };
        let mut profiler = ProfilingRuntime::new();
        let _ = Interpreter::new(&program, icfg.clone()).run(&mut profiler);
        let mut rt = PcceRuntime::new(profiler.into_data(), CostModel::default());
        let report = Interpreter::new(&program, icfg).run(&mut rt);
        prop_assert_eq!(report.mismatches, 0, "mismatches: {:?}", report.mismatch_examples);
        prop_assert_eq!(report.unsupported, 0);
        prop_assert_eq!(rt.stats().decode_errors, 0);
        prop_assert_eq!(rt.stats().unexpected_edges, 0);
    }
}
