//! Cross-crate integration: every context runtime over shared workloads,
//! with the orderings the paper's related-work discussion predicts.

use dacce::DacceRuntime;
use dacce_baselines::{CctRuntime, PccRuntime, StackWalkRuntime};
use dacce_pcce::{PcceRuntime, ProfilingRuntime};
use dacce_program::{CostModel, Interpreter};
use dacce_workloads::{driver, run_benchmark, BenchSpec, DriverConfig};

fn spec() -> BenchSpec {
    BenchSpec {
        budget_calls: 40_000,
        threads: 3,
        ..BenchSpec::tiny("cross-runtime", 99)
    }
}

#[test]
fn all_decodable_runtimes_validate_the_same_workload() {
    let spec = spec();
    let program = driver::program_of(&spec);
    let cfg = driver::interp_config(&spec, &DriverConfig::default());

    // DACCE.
    let mut dacce = DacceRuntime::with_defaults();
    let r = Interpreter::new(&program, cfg.clone()).run(&mut dacce);
    assert_eq!(r.mismatches, 0, "dacce: {:?}", r.mismatch_examples);
    assert_eq!(r.unsupported, 0);

    // PCCE.
    let mut profiler = ProfilingRuntime::new();
    let _ = Interpreter::new(&program, cfg.clone()).run(&mut profiler);
    let mut pcce = PcceRuntime::new(profiler.into_data(), CostModel::default());
    let r = Interpreter::new(&program, cfg.clone()).run(&mut pcce);
    assert_eq!(r.mismatches, 0, "pcce: {:?}", r.mismatch_examples);
    assert_eq!(r.unsupported, 0);

    // CCT.
    let mut cct = CctRuntime::new(CostModel::default());
    let r = Interpreter::new(&program, cfg.clone()).run(&mut cct);
    assert_eq!(r.mismatches, 0, "cct: {:?}", r.mismatch_examples);
    assert_eq!(r.unsupported, 0);

    // Stack walking.
    let mut walk = StackWalkRuntime::new(CostModel::default());
    let r = Interpreter::new(&program, cfg).run(&mut walk);
    assert_eq!(r.mismatches, 0, "walk: {:?}", r.mismatch_examples);
    assert_eq!(r.unsupported, 0);
}

#[test]
fn related_work_cost_orderings_hold() {
    let spec = BenchSpec {
        budget_calls: 60_000,
        call_work: 120,
        ..BenchSpec::tiny("cost-ordering", 7)
    };
    let program = driver::program_of(&spec);
    let cfg = driver::interp_config(&spec, &DriverConfig::default());

    let mut dacce = DacceRuntime::with_defaults();
    let dacce_oh = Interpreter::new(&program, cfg.clone())
        .run(&mut dacce)
        .warm_overhead();

    let mut cct = CctRuntime::new(CostModel::default());
    let cct_oh = Interpreter::new(&program, cfg.clone())
        .run(&mut cct)
        .warm_overhead();

    let mut walk = StackWalkRuntime::new(CostModel::default());
    let walk_oh = Interpreter::new(&program, cfg.clone())
        .run(&mut walk)
        .warm_overhead();

    let mut walk_vg = StackWalkRuntime::valgrind_mode(CostModel::default());
    let walk_vg_oh = Interpreter::new(&program, cfg.clone())
        .run(&mut walk_vg)
        .warm_overhead();

    let mut pcc = PccRuntime::new(CostModel::default());
    let pcc_oh = Interpreter::new(&program, cfg)
        .run(&mut pcc)
        .warm_overhead();

    // The paper's related-work landscape (§7): CCT maintenance on every
    // call dwarfs encoding; Valgrind-style per-event walking dwarfs even
    // that; sampled walking is the cheapest but gives no always-on
    // contexts; PCC is cheap but probabilistic.
    assert!(cct_oh > dacce_oh * 2.0, "cct {cct_oh} vs dacce {dacce_oh}");
    assert!(walk_vg_oh > cct_oh, "valgrind {walk_vg_oh} vs cct {cct_oh}");
    assert!(
        walk_oh < dacce_oh,
        "sampled walk {walk_oh} vs dacce {dacce_oh}"
    );
    assert!(pcc_oh < cct_oh, "pcc {pcc_oh} vs cct {cct_oh}");
}

#[test]
fn driver_outcome_is_fully_validated_on_suite_entries() {
    // Two real suite entries at reduced scale (one single- and one
    // multi-threaded), end to end through the driver.
    for name in ["458.sjeng", "bodytrack"] {
        let spec = dacce_workloads::all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let out = run_benchmark(
            &spec,
            &DriverConfig {
                scale: 0.15,
                ..DriverConfig::default()
            },
        );
        assert!(
            out.fully_validated(),
            "{name}: dacce {:?} pcce {:?}",
            out.dacce_report.mismatch_examples,
            out.pcce_report.mismatch_examples
        );
        assert!(out.pcce_stats.nodes >= out.dacce_graph.0);
    }
}

#[test]
fn pcce_overflow_benchmark_still_validates() {
    // The perlbench analog overflows PCCE's 64-bit budget and forces
    // profile pruning; the pruned encoding must still decode everything.
    let spec = dacce_workloads::all_benchmarks()
        .into_iter()
        .find(|s| s.name == "400.perlbench")
        .unwrap();
    let out = run_benchmark(
        &spec,
        &DriverConfig {
            scale: 0.05,
            ..DriverConfig::default()
        },
    );
    assert!(out.pcce_stats.overflowed, "must exercise the overflow path");
    assert!(out.pcce_stats.pruned_edges > 0);
    assert!(out.fully_validated());
}
