//! Property tests for the flattened dispatch path: for arbitrary call
//! histories the compiled flat table must resolve every `(site, callee)`
//! pair exactly like the logical hash-map patch table, across re-encoding
//! generation bumps. The exhaustive cross-check itself lives in the
//! engine (`check_invariants` walks every patched site against every
//! graph node plus an unknown-callee probe); these tests drive the state
//! into as many shapes as possible and invoke it mid-run, so transient
//! disagreement between a patch mutation and its dispatch sync cannot
//! hide behind a final-state-only check.

use proptest::prelude::*;

use dacce::{CompressionMode, DacceConfig, DacceRuntime, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::model::TargetChoice;
use dacce_program::{CostModel, InterpConfig, Interpreter, Program, ProgramBuilder};

/// One static call site with its fixed shape: a direct site always
/// invokes the same callee, an indirect one takes whatever the walk
/// picks. A site belongs to exactly one owner function.
#[derive(Clone, Copy, Debug)]
struct SiteSpec {
    site: CallSiteId,
    indirect: bool,
    direct_callee: usize,
}

/// A random walk step: which owned site to fire, which callee an
/// indirect site should take, or a return instead.
#[derive(Clone, Copy, Debug)]
struct Step {
    site_pick: u8,
    callee_pick: u8,
    ret: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..=255, 0u8..=255, prop::bool::weighted(0.4)).prop_map(|(site_pick, callee_pick, ret)| {
        Step {
            site_pick,
            callee_pick,
            ret,
        }
    })
}

/// Shape of the static program: per function, how many sites it owns and
/// which are indirect.
fn shape_strategy() -> impl Strategy<Value = Vec<Vec<(bool, u8)>>> {
    prop::collection::vec(
        prop::collection::vec((prop::bool::weighted(0.35), 0u8..=255), 1..4),
        3..8,
    )
}

/// Eager triggers: every trap may fire a re-encoding, so the walk keeps
/// crossing generations and the dispatch table keeps being rebuilt.
fn eager_tracker() -> Tracker {
    Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        reencode_backoff: 1.0,
        ..DacceConfig::default()
    })
}

const MAX_DEPTH: usize = 24;
const CHECK_EVERY: usize = 16;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Flat-table resolution ≡ logical hash-map lookup for every
    /// `(site, callee)` pair, re-checked throughout a random call walk
    /// that forces at least one generation bump.
    #[test]
    fn flat_dispatch_matches_logical_across_generations(
        shape in shape_strategy(),
        steps in prop::collection::vec(step_strategy(), 30..150),
    ) {
        let tracker = eager_tracker();
        let fns: Vec<FunctionId> = (0..shape.len())
            .map(|i| tracker.define_function(&format!("f{i}")))
            .collect();
        // Each function owns its own sites (a call site is one static
        // location in one function).
        let sites: Vec<Vec<SiteSpec>> = shape
            .iter()
            .map(|specs| {
                specs
                    .iter()
                    .map(|&(indirect, callee)| SiteSpec {
                        site: tracker.define_call_site(),
                        indirect,
                        direct_callee: callee as usize % shape.len(),
                    })
                    .collect()
            })
            .collect();

        let th = tracker.register_thread(fns[0]);
        // Deterministic preamble: two distinct edges through f0's first
        // site-owner pair guarantee at least one re-encode under the
        // eager triggers before the random walk starts.
        {
            let warm = &sites[0][0];
            let callees = [fns[1 % fns.len()], fns[2 % fns.len()]];
            for &c in &callees {
                drop(th.call_indirect(warm.site, c));
            }
        }
        prop_assert!(tracker.stats().reencodes >= 1, "preamble must bump the generation");

        // Random walk. `stack` holds the guards; `current` mirrors the
        // function whose sites may fire next.
        let mut stack = Vec::new();
        let mut current = 0usize;
        for (i, step) in steps.iter().enumerate() {
            if (step.ret && !stack.is_empty()) || stack.len() >= MAX_DEPTH {
                let (guard, caller) = stack.pop().unwrap();
                drop(guard);
                current = caller;
            } else {
                let owned = &sites[current];
                let spec = owned[step.site_pick as usize % owned.len()];
                let callee = if spec.indirect {
                    step.callee_pick as usize % fns.len()
                } else {
                    spec.direct_callee
                };
                let guard = if spec.indirect {
                    th.call_indirect(spec.site, fns[callee])
                } else {
                    th.call(spec.site, fns[callee])
                };
                stack.push((guard, current));
                current = callee;
            }
            if i % CHECK_EVERY == 0 {
                prop_assert!(
                    tracker.check_invariants().is_ok(),
                    "mid-walk dispatch disagreement: {:?}",
                    tracker.check_invariants()
                );
            }
        }
        while let Some((g, caller)) = stack.pop() {
            drop(g);
            current = caller;
        }
        prop_assert_eq!(current, 0);

        prop_assert!(
            tracker.check_invariants().is_ok(),
            "final dispatch disagreement: {:?}",
            tracker.check_invariants()
        );
        let stats = tracker.stats();
        prop_assert!(stats.reencodes >= 1);
        prop_assert_eq!(stats.decode_errors, 0);
    }
}

/// A randomly shaped call op (same generator family as
/// `proptest_roundtrip`).
#[derive(Clone, Debug)]
struct OpSpec {
    callee: usize,
    prob: f32,
    repeat: u16,
    indirect: bool,
}

fn op_strategy(functions: usize) -> impl Strategy<Value = OpSpec> {
    (
        0..functions,
        0.05f32..=1.0,
        1u16..3,
        prop::bool::weighted(0.3),
    )
        .prop_map(|(callee, prob, repeat, indirect)| OpSpec {
            callee,
            prob,
            repeat,
            indirect,
        })
}

fn build(functions: usize, bodies: &[Vec<OpSpec>]) -> Program {
    let mut b = ProgramBuilder::new();
    let fns: Vec<_> = (0..functions)
        .map(|i| b.function(&format!("f{i}")))
        .collect();
    let table = b.table(fns.clone());
    for (i, ops) in bodies.iter().enumerate() {
        let mut body = b.body(fns[i]).work(3);
        for op in ops {
            if op.indirect {
                body = body.indirect(table, TargetChoice::Uniform, [op.prob, op.prob], op.repeat);
            } else {
                body = body.call_rep(fns[op.callee], [op.prob, op.prob], op.repeat);
            }
        }
        body.done();
    }
    b.build(fns[0])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The same equivalence holds for interpreter-driven programs across
    /// every compression mode — compression changes the actions the
    /// compiled records must carry, not just their deltas.
    #[test]
    fn flat_dispatch_matches_logical_for_programs(
        spec in (3usize..9).prop_flat_map(|functions| {
            prop::collection::vec(
                prop::collection::vec(op_strategy(functions), 0..4),
                functions,
            )
            .prop_map(move |bodies| (functions, bodies))
        }),
        seed in 0u64..1_000,
        mode in prop_oneof![
            Just(CompressionMode::Never),
            Just(CompressionMode::Adaptive),
            Just(CompressionMode::Always)
        ],
    ) {
        let (functions, bodies) = spec;
        let program = build(functions, &bodies);
        let cfg = DacceConfig {
            edge_threshold: 1,
            min_events_between_reencodes: 16,
            reencode_backoff: 1.1,
            compression: mode,
            compression_min_heat: 4,
            ..DacceConfig::default()
        };
        let mut rt = DacceRuntime::new(cfg, CostModel::default());
        let icfg = InterpConfig {
            seed,
            budget_calls: 1_500,
            sample_every: 37,
            max_depth: 32,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&program, icfg).run(&mut rt);
        prop_assert_eq!(report.mismatches, 0, "mismatches: {:?}", report.mismatch_examples);
        prop_assert!(
            rt.engine().check_invariants().is_ok(),
            "dispatch disagreement: {:?}",
            rt.engine().check_invariants()
        );
        prop_assert_eq!(rt.stats().decode_errors, 0);
    }
}
