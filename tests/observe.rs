//! Acceptance tests for the observability layer: the merged event journal
//! of a suite workload round-trips through its JSON export and replays to
//! the same aggregates the engine's own `DacceStats` reports, and the
//! metrics registry mirrors the engine counters.

use dacce::{DacceConfig, DacceRuntime};
use dacce_obs::{events_from_json, events_to_json, EventKind, JournalAggregates};
use dacce_program::Interpreter;
use dacce_workloads::{all_benchmarks, interp_config, program_of, BenchSpec, DriverConfig};

/// Runs one suite workload with journaling enabled from the first event and
/// a ring large enough to keep every record.
fn run_journaled(spec: &BenchSpec, scale: f64) -> DacceRuntime {
    let cfg = DriverConfig {
        scale,
        dacce: DacceConfig {
            journal_ring_capacity: 1 << 18,
            ..DacceConfig::default()
        },
        ..DriverConfig::default()
    };
    let program = program_of(spec);
    let icfg = interp_config(spec, &cfg);
    let mut rt = DacceRuntime::new(cfg.dacce.clone(), cfg.cost.clone());
    rt.observability().set_journaling(true);
    let report = Interpreter::new(&program, icfg).run(&mut rt);
    assert_eq!(report.mismatches, 0, "workload must still validate");
    rt
}

fn bzip2() -> BenchSpec {
    all_benchmarks()
        .into_iter()
        .find(|s| s.name == "401.bzip2")
        .expect("401.bzip2 in the suite")
}

#[test]
fn journal_roundtrips_and_replays_to_engine_stats() {
    let rt = run_journaled(&bzip2(), 0.05);
    let stats = rt.stats();
    assert!(stats.reencodes > 0, "adaptive workload must re-encode");

    let batch = rt.observability().drain_journal();
    assert_eq!(batch.dropped, 0, "ring must be large enough for this run");
    assert!(!batch.events.is_empty());

    // Merged stream is ordered by global sequence number.
    for w in batch.events.windows(2) {
        assert!(w[0].seq < w[1].seq, "stream must be seq-ordered");
    }

    // JSON export round-trips losslessly.
    let json = events_to_json(&batch.events);
    let back = events_from_json(&json).expect("export must parse");
    assert_eq!(back, batch.events);

    // Replaying the stream reproduces the engine's own aggregates.
    let agg = JournalAggregates::replay(&batch.events);
    assert_eq!(agg.traps, stats.traps);
    assert_eq!(agg.reencodes, stats.reencodes);
    assert_eq!(agg.reencode_cost, stats.reencode_cost);
    assert_eq!(agg.overflow_aborts, stats.overflow_aborts);
    // Every trap discovers at most one edge, and every discovered edge of
    // the final graph was journaled.
    assert!(agg.edges_discovered <= agg.traps);
    assert_eq!(
        agg.edges_discovered,
        rt.engine().graph().edge_count() as u64
    );
    // Each applied re-encoding migrates every live thread.
    assert!(agg.migrations >= stats.reencodes - stats.overflow_aborts);
}

#[test]
fn reencode_events_carry_generation_and_cost() {
    let rt = run_journaled(&bzip2(), 0.05);
    let batch = rt.observability().drain_journal();
    let ends: Vec<_> = batch
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::ReencodeEnd {
                generation,
                applied,
                cost,
                ..
            } => Some((generation, applied, cost)),
            _ => None,
        })
        .collect();
    assert!(!ends.is_empty());
    // Applied generations are strictly increasing and costs are charged.
    let applied: Vec<u32> = ends
        .iter()
        .filter(|(_, a, _)| *a)
        .map(|(g, _, _)| *g)
        .collect();
    for w in applied.windows(2) {
        assert!(w[0] < w[1], "generations must increase");
    }
    assert!(ends.iter().all(|(_, _, c)| *c > 0));
}

#[test]
fn journaling_off_keeps_metrics_but_no_events() {
    let spec = bzip2();
    let cfg = DriverConfig {
        scale: 0.02,
        ..DriverConfig::default()
    };
    let program = program_of(&spec);
    let icfg = interp_config(&spec, &cfg);
    let mut rt = DacceRuntime::new(cfg.dacce.clone(), cfg.cost.clone());
    let _ = Interpreter::new(&program, icfg).run(&mut rt);
    let stats = rt.stats();

    let batch = rt.observability().drain_journal();
    assert!(batch.events.is_empty(), "journaling defaults to off");
    assert_eq!(batch.dropped, 0);

    // Metrics are collected regardless (they live on the slow path).
    let snap = rt.observe();
    assert_eq!(snap.traps, stats.traps);
    assert_eq!(snap.reencodes, stats.reencodes);
    assert_eq!(snap.samples, stats.samples);
    assert_eq!(snap.trap_ns.count, stats.traps);
    assert!(!snap.generations.is_empty());
    // The newest generation row was frozen at the last re-encode; edges
    // discovered since then are in the graph but not yet in any dictionary.
    let latest = snap.generations.last().unwrap();
    assert!(u64::from(latest.edges) <= rt.engine().graph().edge_count() as u64);
    assert_eq!(latest.max_id, snap.id_headroom.max_id);

    // Exports are well-formed (details are unit-tested in dacce-obs; here
    // we only guard the end-to-end plumbing).
    assert!(snap.to_json().starts_with('{'));
    assert!(snap.to_prometheus().contains("dacce_traps_total"));
}

#[test]
fn drain_is_incremental_across_phases() {
    let spec = bzip2();
    let cfg = DriverConfig {
        scale: 0.02,
        dacce: DacceConfig {
            journal_ring_capacity: 1 << 18,
            ..DacceConfig::default()
        },
        ..DriverConfig::default()
    };
    let program = program_of(&spec);
    let icfg = interp_config(&spec, &cfg);
    let mut rt = DacceRuntime::new(cfg.dacce.clone(), cfg.cost.clone());
    rt.observability().set_journaling(true);
    let _ = Interpreter::new(&program, icfg).run(&mut rt);

    let first = rt.observability().drain_journal();
    let second = rt.observability().drain_journal();
    assert!(!first.events.is_empty());
    assert!(
        second.events.is_empty(),
        "drain must not replay already-drained events"
    );
}
