//! CI-style gate: every benchmark of the suite validates end to end at
//! reduced scale — every sampled context of both PCCE and DACCE decodes to
//! the oracle's calling context.

use dacce_workloads::{all_benchmarks, run_benchmark, DriverConfig};

#[test]
fn all_41_benchmarks_validate_at_small_scale() {
    let cfg = DriverConfig {
        scale: 0.05,
        sample_every: 257,
        ..DriverConfig::default()
    };
    let mut failures = Vec::new();
    for spec in all_benchmarks() {
        let out = run_benchmark(&spec, &cfg);
        if !out.fully_validated() {
            failures.push(format!(
                "{}: dacce {:?} pcce {:?}",
                out.name, out.dacce_report.mismatch_examples, out.pcce_report.mismatch_examples
            ));
        }
        // Structural sanity that must hold at any scale.
        assert!(
            out.dacce_graph.0 <= out.pcce_stats.nodes,
            "{}: dynamic graph larger than static",
            out.name
        );
    }
    assert!(failures.is_empty(), "{failures:#?}");
}
