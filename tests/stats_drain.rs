//! Satellite: stats and journal drains under concurrency. Draining while
//! tracker threads are mid-call must never double-count or lose events —
//! repeated drains are monotone while workers run and exact once they stop.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};

const THREADS: usize = 4;
const ITERS: usize = 2_000;

fn run_workers(tracker: &Tracker, main_fn: FunctionId, sites: &[CallSiteId], fns: &[FunctionId]) {
    let stop = AtomicBool::new(false);
    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            let tr = tracker.clone();
            let (sites, fns) = (sites.to_vec(), fns.to_vec());
            scope.spawn(move |_| {
                let th = tr.register_thread(main_fn);
                for i in 0..ITERS {
                    let k = (i + t) % sites.len();
                    let _g = th.call(sites[k], fns[k]);
                    if i % 257 == 0 {
                        let _ = th.sample();
                    }
                }
            });
        }
        // Drain continuously while the workers run: every intermediate
        // observation must be internally consistent and monotone.
        let stop = &stop;
        let tr = tracker.clone();
        let drainer = scope.spawn(move |_| {
            let mut last_calls = 0u64;
            let mut drains = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = tr.stats();
                assert!(
                    s.calls >= last_calls,
                    "drain went backwards: {} < {last_calls}",
                    s.calls
                );
                last_calls = s.calls;
                drains += 1;
            }
            drains
        });
        // Wait for the workers to finish (observable through the drain
        // itself), then stop the drainer.
        let target = (THREADS * ITERS) as u64;
        while tracker.stats().calls < target {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let drains = drainer.join().unwrap();
        assert!(drains > 0);
    })
    .unwrap();
}

#[test]
fn concurrent_stats_drains_are_monotone_and_exact() {
    let tracker = Tracker::new();
    let main_fn = tracker.define_function("main");
    let fns: Vec<FunctionId> = (0..4)
        .map(|i| tracker.define_function(&format!("f{i}")))
        .collect();
    let sites: Vec<CallSiteId> = (0..4).map(|_| tracker.define_call_site()).collect();

    run_workers(&tracker, main_fn, &sites, &fns);

    // Once quiescent, the drain is exact: no event lost, none counted
    // twice, however many concurrent drains happened mid-run.
    let s1 = tracker.stats();
    let s2 = tracker.stats();
    assert_eq!(s1.calls, (THREADS * ITERS) as u64);
    assert_eq!(s2.calls, s1.calls, "repeated drains must be idempotent");
    assert_eq!(s2.traps, s1.traps);
    assert_eq!(s2.samples, s1.samples);
    assert_eq!(tracker.stats().decode_errors, 0);
    tracker.check_invariants().unwrap();
}

#[test]
fn concurrent_journal_drains_never_duplicate_events() {
    let tracker = Tracker::with_config(DacceConfig {
        journal_ring_capacity: 1 << 14,
        ..DacceConfig::default()
    });
    let obs = tracker.observability().clone();
    obs.set_journaling(true);
    let main_fn = tracker.define_function("main");
    let fns: Vec<FunctionId> = (0..4)
        .map(|i| tracker.define_function(&format!("f{i}")))
        .collect();
    let sites: Vec<CallSiteId> = (0..4).map(|_| tracker.define_call_site()).collect();

    let mut seen: Vec<u64> = Vec::new();
    crossbeam::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let tr = tracker.clone();
            let (sites, fns) = (sites.clone(), fns.clone());
            workers.push(scope.spawn(move |_| {
                let th = tr.register_thread(main_fn);
                for i in 0..ITERS {
                    let k = (i + t) % sites.len();
                    let _g = th.call(sites[k], fns[k]);
                }
            }));
        }
        // Drain concurrently with the writers.
        for _ in 0..50 {
            seen.extend(obs.drain_journal().events.iter().map(|e| e.seq));
            std::thread::yield_now();
        }
        for w in workers {
            w.join().unwrap();
        }
    })
    .unwrap();
    seen.extend(obs.drain_journal().events.iter().map(|e| e.seq));

    // Every drained record is distinct — overlapping drains never hand the
    // same event out twice.
    let unique: HashSet<u64> = seen.iter().copied().collect();
    assert_eq!(unique.len(), seen.len(), "duplicate seq in drained stream");
    // And nothing is left behind once everything stopped.
    assert!(obs.drain_journal().events.is_empty());
}
