//! Integration tests of the versioned-dictionary mechanism (§4.1): samples
//! recorded under any historical timestamp must remain decodable after
//! arbitrarily many later re-encodings.

use dacce::{DacceConfig, DacceRuntime};
use dacce_program::{CostModel, Interpreter};
use dacce_workloads::{driver, BenchSpec, DriverConfig};

fn eager() -> DacceConfig {
    DacceConfig {
        edge_threshold: 2,
        min_events_between_reencodes: 64,
        reencode_backoff: 1.05,
        reencode_interval_cap: 2_000,
        keep_sample_log: true,
        ..DacceConfig::default()
    }
}

#[test]
fn samples_from_every_timestamp_decode() {
    let spec = BenchSpec {
        budget_calls: 60_000,
        phase_shift: true,
        ..BenchSpec::tiny("versioned", 5)
    };
    let program = driver::program_of(&spec);
    let mut icfg = driver::interp_config(&spec, &DriverConfig::default());
    icfg.sample_every = 37;

    let mut rt = DacceRuntime::new(eager(), CostModel::default());
    let report = Interpreter::new(&program, icfg).run(&mut rt);
    assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);

    let engine = rt.engine();
    let stats = rt.stats();
    assert!(
        stats.reencodes >= 6,
        "need many re-encodings, got {}",
        stats.reencodes
    );

    // The log spans many timestamps; every sample decodes against its own
    // dictionary even though the encodings changed many times since.
    let mut stamps = std::collections::HashSet::new();
    for samp in engine.sample_log() {
        stamps.insert(samp.ts);
        engine.decode(samp).expect("historical sample decodes");
    }
    assert!(
        stamps.len() >= 4,
        "samples must span many dictionary versions, got {}",
        stamps.len()
    );
    assert_eq!(engine.dicts().len() as u64, stats.reencodes + 1);
}

#[test]
fn dictionaries_are_immutable_snapshots() {
    let spec = BenchSpec {
        budget_calls: 20_000,
        ..BenchSpec::tiny("immutable", 6)
    };
    let program = driver::program_of(&spec);
    let icfg = driver::interp_config(&spec, &DriverConfig::default());

    let mut rt = DacceRuntime::new(eager(), CostModel::default());
    let _ = Interpreter::new(&program, icfg).run(&mut rt);

    let engine = rt.engine();
    let dicts = engine.dicts();
    assert!(dicts.len() >= 2);
    // maxID per snapshot is non-decreasing only in the typical case; what
    // must always hold is that each dictionary's edge set is a subset of
    // the final graph's edges.
    let graph = engine.graph();
    for ts in 0..dicts.len() {
        let dict = dicts
            .get(dacce_callgraph::TimeStamp::new(ts as u32))
            .unwrap();
        assert!(dict.edge_count() <= graph.edge_count());
        for e in dict.edges() {
            assert!(
                graph.edge_id(e.site, e.callee).is_some(),
                "dictionary edge missing from final graph"
            );
        }
    }
}
