//! Concurrency test: many real OS threads hammering one `Tracker`, each
//! validating its own decoded contexts while the shared engine re-encodes
//! underneath them.

use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::ThreadId;

#[test]
fn concurrent_threads_decode_their_own_contexts() {
    let tracker = Tracker::with_config(DacceConfig {
        edge_threshold: 3,
        min_events_between_reencodes: 16,
        reencode_backoff: 1.1,
        reencode_interval_cap: 512,
        ..DacceConfig::default()
    });

    let f_main = tracker.define_function("main");
    let f_worker = tracker.define_function("worker");
    let depth_fns: Vec<FunctionId> = (0..6)
        .map(|i| tracker.define_function(&format!("level{i}")))
        .collect();
    let spawn_site = tracker.define_call_site();
    // Each worker gets its own call sites (sites are static locations; in
    // this synthetic test every worker "runs its own copy of the code").
    let sites_per_worker: Vec<Vec<CallSiteId>> = (0..4)
        .map(|_| (0..6).map(|_| tracker.define_call_site()).collect())
        .collect();

    let main_th = tracker.register_thread(f_main);

    crossbeam::scope(|scope| {
        for (w, sites) in sites_per_worker.iter().enumerate() {
            let tracker = &tracker;
            let main_th = &main_th;
            let depth_fns = &depth_fns;
            scope.spawn(move |_| {
                let th = tracker.register_spawned_thread(f_worker, main_th, spawn_site);
                for round in 0..200usize {
                    let depth = 1 + (round * 7 + w) % 6;
                    let mut guards = Vec::new();
                    for d in 0..depth {
                        guards.push(th.call(sites[d], depth_fns[d]));
                    }
                    let ctx = th.sample();
                    let path = tracker.decode(&ctx).expect("decodes under concurrency");
                    // main -> worker -> level0..level{depth-1}
                    assert_eq!(path.depth(), 2 + depth, "round {round} worker {w}");
                    assert_eq!(path.0[0].func, f_main);
                    assert_eq!(path.0[1].func, f_worker);
                    for (d, step) in path.0[2..].iter().enumerate() {
                        assert_eq!(step.func, depth_fns[d]);
                    }
                    // Guards must unwind innermost-first: a plain
                    // `drop(Vec)` drops front-to-back and would violate the
                    // stack discipline.
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                    if round % 50 == 0 {
                        tracker.check_invariants().expect("invariants hold mid-run");
                    }
                }
            });
        }
    })
    .expect("threads complete");

    tracker
        .check_invariants()
        .expect("invariants hold after all threads finish");
    let stats = tracker.stats();
    assert!(stats.calls >= 4 * 200);
    assert!(stats.reencodes > 0, "re-encoding must have happened");
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn thread_ids_are_distinct_and_stable() {
    let tracker = Tracker::new();
    let f_main = tracker.define_function("main");
    let f_w = tracker.define_function("w");
    let site = tracker.define_call_site();
    let main_th = tracker.register_thread(f_main);
    let a = tracker.register_spawned_thread(f_w, &main_th, site);
    let b = tracker.register_spawned_thread(f_w, &main_th, site);
    assert_ne!(a.id(), b.id());
    assert_ne!(a.id(), ThreadId::MAIN);
    assert_eq!(main_th.id(), ThreadId::new(0));
}
