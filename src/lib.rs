//! Workspace facade for the DACCE reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! and re-exports the member crates for convenience. The real entry points
//! are:
//!
//! * [`dacce`] — the DACCE engine and embeddable `Tracker`;
//! * [`dacce_pcce`] — the static PCCE baseline;
//! * [`dacce_baselines`] — stack walking / CCT / PCC comparators;
//! * [`dacce_program`] — the synthetic program substrate;
//! * [`dacce_workloads`] — the SPEC/PARSEC analog suite and driver;
//! * [`dacce_callgraph`] / [`dacce_metrics`] — supporting libraries.
//!
//! See `README.md` for the tour and `DESIGN.md` / `EXPERIMENTS.md` for the
//! reproduction methodology.

pub use dacce;
pub use dacce_baselines;
pub use dacce_callgraph;
pub use dacce_metrics;
pub use dacce_obs;
pub use dacce_pcce;
pub use dacce_program;
pub use dacce_workloads;
