//! Record online, decode offline — the paper's deployment split.
//!
//! The instrumented process stays lean: it appends tiny encoded contexts to
//! a log and dumps the decode dictionaries (once per re-encoding). A
//! separate analysis process — here simulated in the same binary, after
//! dropping the engine — imports the dump and reconstructs full calling
//! contexts.
//!
//! ```text
//! cargo run --release --example offline_decode
//! ```

use dacce::{export_samples, export_state, import, DacceConfig, DacceRuntime};
use dacce_program::{CostModel, Interpreter};
use dacce_workloads::{driver, BenchSpec, DriverConfig};

fn main() {
    // ---- the "production" process -------------------------------------
    let spec = BenchSpec {
        budget_calls: 50_000,
        ..BenchSpec::tiny("offline-decode-demo", 1234)
    };
    let program = driver::program_of(&spec);
    let icfg = driver::interp_config(&spec, &DriverConfig::default());
    let mut rt = DacceRuntime::new(
        DacceConfig {
            keep_sample_log: true,
            ..DacceConfig::default()
        },
        CostModel::default(),
    );
    let report = Interpreter::new(&program, icfg).run(&mut rt);

    let engine = rt.engine();
    let dump = format!(
        "{}{}",
        export_state(engine),
        export_samples(engine.sample_log().iter())
    );
    println!(
        "production run: {} calls, {} samples, {} re-encodings",
        report.calls,
        engine.sample_log().len(),
        rt.stats().reencodes
    );
    println!(
        "export: {} bytes ({} lines) — dictionaries + samples",
        dump.len(),
        dump.lines().count()
    );

    // Function names: shipped separately, like a symbol table.
    let names: Vec<String> = program.functions.iter().map(|f| f.name.clone()).collect();

    // The engine is gone now; only the text dump crosses the boundary.
    drop(rt);

    // ---- the "analysis" process ----------------------------------------
    let offline = import(&dump).expect("dump parses");
    println!(
        "\nanalysis process: imported {} dictionaries, {} samples",
        offline.dicts().len(),
        offline.samples().len()
    );

    let mut shown = 0;
    for samp in offline.samples() {
        let path = offline.decode(samp).expect("offline decode");
        if shown < 5 {
            shown += 1;
            let rendered: Vec<&str> = path
                .0
                .iter()
                .map(|s| names[s.func.index()].as_str())
                .collect();
            println!(
                "  sample @{} id={:<4} -> {}",
                samp.ts,
                samp.id,
                rendered.join(" -> ")
            );
        }
    }
    println!(
        "  ... all {} samples decoded offline",
        offline.samples().len()
    );
}
