//! A miniature happens-before-free data-race *reporter* built on DACCE —
//! the paper's headline use case (§1: race detectors must record context
//! per memory access, and stack walking at every access is far too slow).
//!
//! Worker threads perform simulated shared-memory accesses. For every
//! access the detector logs `(address, thread, is_write, encoded context)` —
//! the encoded context being one integer plus a usually-empty stack, cheap
//! enough to record on *every* access. After the run, conflicting accesses
//! (same address, different threads, at least one write) are reported with
//! both *full calling contexts*, decoded on demand, across thread-creation
//! boundaries.
//!
//! ```text
//! cargo run --example race_detector
//! ```

use std::sync::Mutex;

use dacce::{EncodedContext, Tracker};
use dacce_program::ThreadId;

/// One logged shared-memory access.
struct Access {
    addr: usize,
    tid: ThreadId,
    write: bool,
    ctx: EncodedContext,
}

fn main() {
    let tracker = Tracker::new();
    let f_main = tracker.define_function("main");
    let f_worker = tracker.define_function("worker");
    let f_update = tracker.define_function("update_stats");
    let f_publish = tracker.define_function("publish_result");
    let s_spawn = tracker.define_call_site();
    let s_update = tracker.define_call_site();
    let s_publish = tracker.define_call_site();

    let log: Mutex<Vec<Access>> = Mutex::new(Vec::new());
    let main_thread = tracker.register_thread(f_main);

    crossbeam::scope(|scope| {
        for w in 0..3usize {
            let tracker = &tracker;
            let log = &log;
            let main_thread = &main_thread;
            scope.spawn(move |_| {
                let th = tracker.register_spawned_thread(f_worker, main_thread, s_spawn);
                for i in 0..40usize {
                    // Each worker updates its own counter slot (no race)...
                    {
                        let _g = th.call(s_update, f_update);
                        log.lock().unwrap().push(Access {
                            addr: 0x1000 + w,
                            tid: th.id(),
                            write: true,
                            ctx: th.sample(),
                        });
                    }
                    // ...but every 13th iteration publishes to a shared
                    // slot without synchronisation (the race).
                    if i % 13 == 0 {
                        let _g = th.call(s_publish, f_publish);
                        log.lock().unwrap().push(Access {
                            addr: 0x2000,
                            tid: th.id(),
                            write: true,
                            ctx: th.sample(),
                        });
                    }
                }
            });
        }
    })
    .expect("workers run");

    // Offline analysis: group by address, report cross-thread write
    // conflicts with decoded contexts.
    let log = log.into_inner().unwrap();
    println!("logged {} accesses", log.len());
    let mut reported = 0;
    for (i, a) in log.iter().enumerate() {
        for b in log.iter().skip(i + 1) {
            if a.addr == b.addr && a.tid != b.tid && (a.write || b.write) && reported < 1 {
                reported += 1;
                println!("\nPOSSIBLE RACE on {:#x}:", a.addr);
                println!(
                    "  {} wrote at: {}",
                    a.tid,
                    tracker.format_path(&tracker.decode(&a.ctx).expect("decodes"))
                );
                println!(
                    "  {} wrote at: {}",
                    b.tid,
                    tracker.format_path(&tracker.decode(&b.ctx).expect("decodes"))
                );
            }
        }
    }
    assert!(reported > 0, "the seeded race must be found");

    let per_event_words: usize = log.iter().map(|a| a.ctx.space()).sum::<usize>() / log.len();
    println!(
        "\ncontext cost: ~{per_event_words} machine words/access (a full backtrace would be \
         the entire stack, walked at access time)"
    );
}
