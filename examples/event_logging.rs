//! Context-compressed event logging — the paper's §1 motivation from
//! execution fast-forwarding: tagging logged events with calling contexts
//! lets replay tools prune redundant events, but collecting those contexts
//! by stack walking is too slow to leave on.
//!
//! This example runs a synthetic server loop that logs an event per
//! request. Each event carries its *encoded* context; at analysis time the
//! log is deduplicated by context (id + boundaries), and one representative
//! of each class is decoded for the report.
//!
//! ```text
//! cargo run --example event_logging
//! ```

use std::collections::HashMap;

use dacce::Tracker;

fn main() {
    let tracker = Tracker::new();
    let f_main = tracker.define_function("main");
    let f_accept = tracker.define_function("accept");
    let f_route = tracker.define_function("route");
    let f_get = tracker.define_function("handle_get");
    let f_put = tracker.define_function("handle_put");
    let f_log = tracker.define_function("append_log");
    let s_accept = tracker.define_call_site();
    let s_route = tracker.define_call_site();
    let s_get = tracker.define_call_site();
    let s_put = tracker.define_call_site();
    let s_log_get = tracker.define_call_site();
    let s_log_put = tracker.define_call_site();

    let th = tracker.register_thread(f_main);

    // The "event log": (event payload, encoded context).
    let mut log: Vec<(String, dacce::EncodedContext)> = Vec::new();

    for req in 0..400u32 {
        let _accept = th.call(s_accept, f_accept);
        let _route = th.call(s_route, f_route);
        if req % 5 == 0 {
            let _h = th.call(s_put, f_put);
            let _l = th.call(s_log_put, f_log);
            log.push((format!("PUT #{req}"), th.sample()));
        } else {
            let _h = th.call(s_get, f_get);
            let _l = th.call(s_log_get, f_log);
            log.push((format!("GET #{req}"), th.sample()));
        }
    }

    // Offline: group events by context identity. Two events with the same
    // (timestamp, id, boundaries) happened in the *same calling context* —
    // no decoding needed to bucket them.
    let mut classes: HashMap<String, (usize, dacce::EncodedContext)> = HashMap::new();
    for (_, ctx) in &log {
        let key = format!("{}:{}:{:?}", ctx.ts, ctx.id, ctx.cc);
        classes.entry(key).or_insert_with(|| (0, ctx.clone())).0 += 1;
    }

    println!(
        "{} events collapse into {} context classes:",
        log.len(),
        classes.len()
    );
    let mut rows: Vec<(usize, dacce::EncodedContext)> = classes.into_values().collect();
    rows.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
    for (count, ctx) in rows {
        println!(
            "  {count:>4} events at {}",
            tracker.format_path(&tracker.decode(&ctx).expect("decodes"))
        );
    }

    let words: usize = log.iter().map(|(_, c)| c.space()).sum();
    println!(
        "\nlog size for contexts: {words} machine words total \
         ({:.1} words/event); decoding happened {} times, not {} times",
        words as f64 / log.len() as f64,
        2,
        log.len()
    );
}
