//! Quickstart: track calling contexts in ordinary Rust code.
//!
//! The [`dacce::Tracker`] is the library-level equivalent of preloading the
//! paper's `dacce.so`: declare functions and call sites once, bracket calls
//! with RAII guards, and sample an *encoded* context — a single integer
//! plus a (usually empty) auxiliary stack — wherever you would otherwise
//! walk the stack. Decoding happens offline, against the versioned
//! dictionaries the engine maintains.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dacce::Tracker;

fn main() {
    let tracker = Tracker::new();

    // Static program structure: declared once, like symbols in a binary.
    let f_main = tracker.define_function("main");
    let f_parse = tracker.define_function("parse");
    let f_eval = tracker.define_function("eval");
    let f_apply = tracker.define_function("apply");
    let s_parse = tracker.define_call_site(); // main -> parse
    let s_eval = tracker.define_call_site(); // main -> eval
    let s_apply = tracker.define_call_site(); // eval -> apply
    let s_self = tracker.define_call_site(); // apply -> apply (recursion)

    let thread = tracker.register_thread(f_main);

    // A little call tree: main -> parse, then main -> eval -> apply^3.
    {
        let _g = thread.call(s_parse, f_parse);
        let ctx = thread.sample();
        println!(
            "inside parse : id={:<3} ccStack={:<2} -> {}",
            ctx.id,
            ctx.cc_depth(),
            tracker.format_path(&tracker.decode(&ctx).expect("decodes"))
        );
    }

    let _g1 = thread.call(s_eval, f_eval);
    let _g2 = thread.call(s_apply, f_apply);
    let _g3 = thread.call(s_self, f_apply);
    let _g4 = thread.call(s_self, f_apply);

    let ctx = thread.sample();
    println!(
        "inside apply : id={:<3} ccStack={:<2} -> {}",
        ctx.id,
        ctx.cc_depth(),
        tracker.format_path(&tracker.decode(&ctx).expect("decodes"))
    );

    // The encoded context is tiny: one u64 plus the (compressed) stack of
    // recursion boundaries. That is what a race detector or event logger
    // would store per event instead of a full backtrace.
    println!(
        "stored per event: {} machine words (vs {} stack frames)",
        ctx.space(),
        tracker.decode(&ctx).unwrap().depth()
    );

    let stats = tracker.stats();
    println!(
        "engine: {} calls, {} handler traps, {} re-encodings",
        stats.calls, stats.traps, stats.reencodes
    );
}
