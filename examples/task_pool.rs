//! Work migration (§5.3): calling contexts that follow tasks across
//! threads.
//!
//! A producer enqueues tasks from meaningful calling contexts; a pool of
//! executor threads runs them. Without migration support, a sample taken
//! inside an executor decodes to `executor -> task_body` — useless for
//! attributing the work. With [`dacce::Tracker::capture_task`] /
//! `ThreadHandle::adopt`, the origin context travels with the task, and
//! samples decode to the *logical* context:
//! `main -> producer_path -> (handoff) -> executor frames`.
//!
//! ```text
//! cargo run --release --example task_pool
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

use dacce::{TaskContext, Tracker};

struct Task {
    name: &'static str,
    origin: TaskContext,
}

fn main() {
    let tracker = Tracker::new();
    let f_main = tracker.define_function("main");
    let f_ingest = tracker.define_function("ingest");
    let f_render = tracker.define_function("render");
    let f_executor = tracker.define_function("executor");
    let f_work = tracker.define_function("do_work");
    let s_ingest = tracker.define_call_site();
    let s_render = tracker.define_call_site();
    let s_handoff = tracker.define_call_site();
    let s_spawn = tracker.define_call_site();
    let s_work = tracker.define_call_site();

    let queue: Mutex<VecDeque<Task>> = Mutex::new(VecDeque::new());

    // Producer: enqueue tasks from two different calling contexts.
    let main_th = tracker.register_thread(f_main);
    {
        let _g = main_th.call(s_ingest, f_ingest);
        for _ in 0..3 {
            queue.lock().unwrap().push_back(Task {
                name: "parse-record",
                origin: main_th.capture_task(s_handoff),
            });
        }
    }
    {
        let _g = main_th.call(s_render, f_render);
        for _ in 0..2 {
            queue.lock().unwrap().push_back(Task {
                name: "rasterise-tile",
                origin: main_th.capture_task(s_handoff),
            });
        }
    }

    // Executors: adopt each task's origin context while running it.
    crossbeam::scope(|scope| {
        for _ in 0..2 {
            let tracker = &tracker;
            let queue = &queue;
            let main_th = &main_th;
            scope.spawn(move |_| {
                let th = tracker.register_spawned_thread(f_executor, main_th, s_spawn);
                loop {
                    let Some(task) = queue.lock().unwrap().pop_front() else {
                        break;
                    };
                    let _adopted = th.adopt(&task.origin);
                    let _g = th.call(s_work, f_work);
                    let ctx = th.sample();
                    println!(
                        "{:<15} attributed to: {}",
                        task.name,
                        tracker.format_path(&tracker.decode(&ctx).expect("decodes"))
                    );
                }
            });
        }
    })
    .expect("executors finish");
}
