//! A sampling calling-context profiler over a full synthetic workload,
//! showing the adaptive machinery end to end: the engine discovers the
//! call graph, re-encodes as hot paths emerge (and shift mid-run), and the
//! profiler reports the hottest calling contexts from periodically
//! collected encoded samples — decoded only at report time, against the
//! dictionary version each sample was recorded under.
//!
//! ```text
//! cargo run --release --example adaptive_profiler
//! ```

use dacce::{DacceConfig, DacceRuntime, HotContextProfile};
use dacce_program::{CostModel, Interpreter};
use dacce_workloads::{driver, BenchSpec, DriverConfig, Suite};

fn main() {
    // A phase-shifting workload: the hot paths change halfway through.
    let spec = BenchSpec {
        phase_shift: true,
        budget_calls: 120_000,
        call_work: 80,
        ..BenchSpec::tiny("adaptive-profiler-demo", 4242)
    };
    assert_eq!(spec.suite, Suite::SpecInt);
    let program = driver::program_of(&spec);
    let icfg = driver::interp_config(&spec, &DriverConfig::default());

    let mut rt = DacceRuntime::new(
        DacceConfig {
            keep_sample_log: true,
            ..DacceConfig::default()
        },
        CostModel::default(),
    );
    let report = Interpreter::new(&program, icfg).run(&mut rt);

    println!(
        "ran {} calls, overhead {:.2}% (steady state {:.2}%)",
        report.calls,
        report.overhead() * 100.0,
        report.warm_overhead() * 100.0
    );

    let stats = rt.stats();
    println!("\nencoding progress (Figure 9 view):");
    println!(
        "{:>10} {:>6} {:>6} {:>10}",
        "calls", "nodes", "edges", "maxID"
    );
    for p in &stats.progress {
        println!(
            "{:>10} {:>6} {:>6} {:>10}",
            p.calls, p.nodes, p.edges, p.max_id
        );
    }

    // Aggregate the sample log into a hot-context profile.
    let engine = rt.engine();
    let mut profile = HotContextProfile::new();
    for samp in engine.sample_log() {
        profile.record(&engine.decode(samp).expect("samples decode"));
    }

    println!("\nhottest calling contexts ({} samples):", profile.total());
    for (path, count) in profile.top(8) {
        println!(
            "  {count:>4}  {}",
            path.0
                .iter()
                .map(|s| program.name(s.func).to_string())
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }

    println!("\ncontext tree (inclusive sample counts):");
    let tree = profile.render_tree(|f| program.name(f).to_string());
    for line in tree.lines().take(14) {
        println!("{line}");
    }

    println!(
        "\nengine: {} traps, {} re-encodings, {} compressed recursion hits",
        stats.traps, stats.reencodes, stats.compress_hits
    );
}
