//! Plain-text and CSV table rendering.

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns, a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting — cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            debug_assert!(row.iter().all(|c| !c.contains(',')));
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "23"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines[2].len(), lines[3].len(), "aligned rows");
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
