//! Paper-style number formatting.

/// Formats a (possibly huge) count the way Table 1 prints `MaxID`: plain up
/// to six digits, scientific (`1.4E+11`) beyond, `overflow` when flagged.
pub fn sci(value: u128, overflow: bool) -> String {
    if overflow {
        return "overflow".to_string();
    }
    if value < 1_000_000 {
        return value.to_string();
    }
    let v = value as f64;
    let exp = v.log10().floor() as i32;
    let mantissa = v / 10f64.powi(exp);
    format!("{mantissa:.1}E+{exp:02}")
}

/// Formats an overhead ratio as a percentage with one decimal.
pub fn percent(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_stay_plain() {
        assert_eq!(sci(0, false), "0");
        assert_eq!(sci(999_999, false), "999999");
    }

    #[test]
    fn large_values_go_scientific() {
        assert_eq!(sci(140_000_000_000, false), "1.4E+11");
        assert_eq!(sci(3_400_000_000_000_000, false), "3.4E+15");
    }

    #[test]
    fn overflow_is_literal() {
        assert_eq!(sci(7, true), "overflow");
    }

    #[test]
    fn percent_formats_ratio() {
        assert_eq!(percent(0.02), "2.0%");
        assert_eq!(percent(0.1234), "12.3%");
    }
}
