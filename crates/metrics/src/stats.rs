//! Summary statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of overhead *factors*.
///
/// Overheads are passed as ratios (0.02 = 2%); the mean is computed over
/// `1 + x` and converted back, the standard way benchmark-suite overheads
/// are aggregated (the paper's `geomean` column in Figure 8).
pub fn geomean(overheads: &[f64]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads.iter().map(|x| (1.0 + x).ln()).sum();
    (log_sum / overheads.len() as f64).exp() - 1.0
}

/// The `q`-quantile (0.0..=1.0) by nearest-rank on a sorted copy.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let rank = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    v[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_averages() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_equal_overheads_is_that_overhead() {
        let g = geomean(&[0.02, 0.02, 0.02]);
        assert!((g - 0.02).abs() < 1e-9, "{g}");
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let xs = [0.0, 0.10];
        assert!(geomean(&xs) < mean(&xs));
        assert!(geomean(&xs) > 0.0);
    }

    #[test]
    fn geomean_of_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
