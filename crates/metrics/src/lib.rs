//! Statistics and report rendering for the DACCE reproduction experiments.
//!
//! Small, dependency-free helpers shared by the experiment driver and the
//! table/figure binaries: summary statistics ([`stats`]), cumulative
//! distributions for Figure 10 ([`cdf`]), paper-style number formatting
//! (`format`) and plain-text / CSV table rendering
//! ([`table`]).

pub mod cdf;
pub mod format;
pub mod stats;
pub mod table;

pub use cdf::Cdf;
pub use format::{percent, sci};
pub use stats::{geomean, mean, percentile};
pub use table::Table;
