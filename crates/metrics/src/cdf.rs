//! Cumulative distributions (Figure 10 of the paper).

/// An empirical CDF over integer observations (stack depths).
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted: Vec<u32>,
}

impl Cdf {
    /// Builds the CDF from raw observations.
    pub fn new(mut samples: Vec<u32>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `<= x` (0 for an empty CDF).
    pub fn at(&self, x: u32) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Smallest depth covering at least `q` of the observations — e.g. the
    /// paper's "the stack depth needed to cover 90% of contexts".
    pub fn depth_covering(&self, q: f64) -> u32 {
        if self.sorted.is_empty() {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0)) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// The maximum observation.
    pub fn max(&self) -> u32 {
        self.sorted.last().copied().unwrap_or(0)
    }

    /// Evenly spaced `(depth, cumulative %)` points for plotting, always
    /// including the 100% point.
    pub fn series(&self, points: usize) -> Vec<(u32, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let max = self.max();
        let step = (max / points.max(1) as u32).max(1);
        let mut out = Vec::new();
        let mut x = 0;
        while x < max {
            out.push((x, self.at(x)));
            x += step;
        }
        out.push((max, 1.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.at(10), 0.0);
        assert_eq!(c.depth_covering(0.9), 0);
        assert!(c.series(5).is_empty());
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::new(vec![0, 1, 1, 2, 4]);
        assert_eq!(c.len(), 5);
        assert!((c.at(0) - 0.2).abs() < 1e-12);
        assert!((c.at(1) - 0.6).abs() < 1e-12);
        assert!((c.at(4) - 1.0).abs() < 1e-12);
        assert!((c.at(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depth_covering_matches_quantiles() {
        let c = Cdf::new((0..100).collect());
        assert_eq!(c.depth_covering(0.9), 89);
        assert_eq!(c.depth_covering(1.0), 99);
        assert_eq!(c.max(), 99);
    }

    #[test]
    fn series_ends_at_full_coverage() {
        let c = Cdf::new(vec![3, 7, 9, 12]);
        let s = c.series(4);
        let last = s.last().unwrap();
        assert_eq!(last.0, 12);
        assert!((last.1 - 1.0).abs() < 1e-12);
    }
}
