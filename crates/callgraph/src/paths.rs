//! Acyclic path enumeration — the ground truth the encoding must match.
//!
//! The Ball–Larus invariant behind the whole system: after encoding,
//! `numCC(n)` equals the number of distinct acyclic paths from the roots to
//! `n` over encoded (non-back) edges, and accumulating `En(e)` along each
//! such path yields a unique id in `[0, numCC(n))`. This module enumerates
//! those paths directly (exponential — test-sized graphs only) so property
//! tests can check both halves of the invariant against an implementation
//! that shares no code with the encoder.

use std::collections::HashMap;

use crate::encode::Encoding;
use crate::graph::CallGraph;
use crate::ids::{CallSiteId, FunctionId};

/// One acyclic root-to-node path: the sequence of `(site, callee)` steps
/// taken from the root (excluded) to the node (included as last callee).
pub type SitePath = Vec<(CallSiteId, FunctionId)>;

/// Enumerates every acyclic path from `root` over non-back edges, invoking
/// `visit` with each path and its terminal node. Paths longer than
/// `max_len` are skipped (guards test blowup).
pub fn enumerate_paths(
    graph: &CallGraph,
    root: FunctionId,
    max_len: usize,
    visit: &mut impl FnMut(FunctionId, &SitePath),
) {
    if !graph.contains_node(root) {
        return;
    }
    let mut path: SitePath = Vec::new();
    visit(root, &path);
    walk(graph, root, max_len, &mut path, visit);
}

fn walk(
    graph: &CallGraph,
    node: FunctionId,
    max_len: usize,
    path: &mut SitePath,
    visit: &mut impl FnMut(FunctionId, &SitePath),
) {
    if path.len() >= max_len {
        return;
    }
    for &eid in graph.outgoing(node) {
        let e = graph.edge(eid);
        if e.back {
            continue;
        }
        path.push((e.site, e.callee));
        visit(e.callee, path);
        walk(graph, e.callee, max_len, path, visit);
        path.pop();
    }
}

/// Counts acyclic root-to-node paths per node (roots contribute their own
/// empty path).
pub fn count_paths(
    graph: &CallGraph,
    roots: &[FunctionId],
    max_len: usize,
) -> HashMap<FunctionId, u128> {
    let mut counts: HashMap<FunctionId, u128> = HashMap::new();
    for &root in roots {
        enumerate_paths(graph, root, max_len, &mut |node, _| {
            *counts.entry(node).or_insert(0) += 1;
        });
    }
    counts
}

/// Accumulates the encoded id of one path under `encoding`.
///
/// Returns `None` if any step's edge is missing or unencoded.
pub fn path_id(graph: &CallGraph, encoding: &Encoding, path: &SitePath) -> Option<u128> {
    let mut id: u128 = 0;
    for &(site, callee) in path {
        let eid = graph.edge_id(site, callee)?;
        id += encoding.edge_encoding.get(&eid)?;
    }
    Some(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::classify_back_edges;
    use crate::encode::{encode_graph, EncodeOptions};
    use crate::graph::Dispatch;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    fn build(pairs: &[(u32, u32)]) -> CallGraph {
        let mut g = CallGraph::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            g.add_edge(f(a), f(b), CallSiteId::new(i as u32), Dispatch::Direct);
        }
        g
    }

    #[test]
    fn diamond_has_two_paths_to_sink() {
        let mut g = build(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        classify_back_edges(&mut g, &[f(0)]);
        let counts = count_paths(&g, &[f(0)], 16);
        assert_eq!(counts[&f(0)], 1);
        assert_eq!(counts[&f(3)], 2);
    }

    #[test]
    fn numcc_equals_path_count() {
        let mut g = build(&[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (1, 4),
            (2, 4),
            (4, 5),
            (3, 5),
            (5, 1), // cycle; becomes a back edge
        ]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let counts = count_paths(&g, &[f(0)], 32);
        for &node in g.nodes() {
            assert_eq!(
                enc.num_cc[&node],
                counts.get(&node).copied().unwrap_or(0).max(1),
                "numCC mismatch at {node}"
            );
        }
    }

    #[test]
    fn path_ids_are_unique_and_dense() {
        let mut g = build(&[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut ids: HashMap<FunctionId, Vec<u128>> = HashMap::new();
        enumerate_paths(&g, f(0), 32, &mut |node, path| {
            let id = path_id(&g, &enc, path).expect("all edges encoded");
            ids.entry(node).or_default().push(id);
        });
        for (node, mut v) in ids {
            v.sort_unstable();
            let expect: Vec<u128> = (0..enc.num_cc[&node]).collect();
            assert_eq!(v, expect, "ids of {node} not dense/unique");
        }
    }

    #[test]
    fn enumeration_respects_max_len() {
        let mut g = build(&[(0, 1), (1, 2), (2, 3)]);
        classify_back_edges(&mut g, &[f(0)]);
        let counts = count_paths(&g, &[f(0)], 2);
        assert!(counts.contains_key(&f(2)));
        assert!(!counts.contains_key(&f(3)), "depth 3 exceeds max_len 2");
    }

    #[test]
    fn missing_root_enumerates_nothing() {
        let g = CallGraph::new();
        let counts = count_paths(&g, &[f(0)], 8);
        assert!(counts.is_empty());
    }
}
