//! Graphviz (DOT) export of call graphs and encodings, for debugging.

use std::fmt::Write as _;

use crate::encode::Encoding;
use crate::graph::{CallGraph, Dispatch};
use crate::ids::FunctionId;

/// Renders `graph` in DOT syntax.
///
/// Nodes are labelled by `name(f)`; back edges are dashed; indirect edges are
/// coloured; when `encoding` is given, every encoded edge is annotated with
/// its `En(e)` value and every node with its `numCC`.
pub fn to_dot(
    graph: &CallGraph,
    encoding: Option<&Encoding>,
    mut name: impl FnMut(FunctionId) -> String,
) -> String {
    let mut out = String::from("digraph callgraph {\n  rankdir=TB;\n");
    for &node in graph.nodes() {
        let label = match encoding.and_then(|e| e.num_cc.get(&node)) {
            Some(cc) => format!("{} [{}]", name(node), cc),
            None => name(node),
        };
        let _ = writeln!(out, "  n{} [label=\"{}\"];", node.raw(), label);
    }
    for (eid, e) in graph.edges() {
        let mut attrs: Vec<String> = Vec::new();
        if e.back {
            attrs.push("style=dashed".to_string());
        }
        match e.dispatch {
            Dispatch::Indirect => attrs.push("color=blue".to_string()),
            Dispatch::Plt => attrs.push("color=darkgreen".to_string()),
            Dispatch::Spawn => attrs.push("color=red".to_string()),
            Dispatch::Direct => {}
        }
        if let Some(en) = encoding.and_then(|enc| enc.edge_encoding.get(&eid)) {
            if *en != 0 {
                attrs.push(format!("label=\"+{en}\""));
            }
        }
        let attr_str = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        let _ = writeln!(
            out,
            "  n{} -> n{}{};",
            e.caller.raw(),
            e.callee.raw(),
            attr_str
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::classify_back_edges;
    use crate::encode::{encode_graph, EncodeOptions};
    use crate::ids::CallSiteId;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    #[test]
    fn dot_output_contains_nodes_edges_and_annotations() {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), CallSiteId::new(0), Dispatch::Direct);
        g.add_edge(f(0), f(2), CallSiteId::new(1), Dispatch::Indirect);
        g.add_edge(f(1), f(2), CallSiteId::new(2), Dispatch::Direct);
        g.add_edge(f(2), f(0), CallSiteId::new(3), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let dot = to_dot(&g, Some(&enc), |id| format!("fn{}", id.raw()));
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"), "back edge must be dashed");
        assert!(dot.contains("color=blue"), "indirect edge coloured");
        assert!(dot.contains("label=\"+1\""), "non-zero encoding labelled");
        assert!(dot.contains("fn0 [1]"), "node annotated with numCC");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_without_encoding_has_plain_labels() {
        let mut g = CallGraph::new();
        g.ensure_node(f(7));
        let dot = to_dot(&g, None, |id| format!("fn{}", id.raw()));
        assert!(dot.contains("n7 [label=\"fn7\"];"));
    }
}
