//! Dense identifier newtypes shared across the workspace.
//!
//! All identifiers are thin wrappers over `u32` so they can index `Vec`-based
//! side tables without hashing. They deliberately do not implement arithmetic;
//! conversion to `usize` goes through [`FunctionId::index`] and friends.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize` suitable for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_newtype!(
    /// Identifies a function (a call-graph node).
    ///
    /// In the program model every function of the main executable and of all
    /// shared libraries has a unique, dense `FunctionId`; the dynamic call
    /// graph only materialises nodes for functions observed at runtime.
    FunctionId,
    "f"
);

id_newtype!(
    /// Identifies a static call site (the address of a CALL instruction in
    /// the paper; a unique index of a `call` op in the program model).
    ///
    /// One call site can give rise to several call edges when it dispatches
    /// indirectly.
    CallSiteId,
    "cs"
);

id_newtype!(
    /// Identifies a call edge `(caller, call site, callee)` inside one
    /// [`crate::CallGraph`].
    EdgeId,
    "e"
);

/// The global re-encoding timestamp (`gTimeStamp` in the paper, §4.1).
///
/// Every adaptive re-encoding increments the timestamp; collected context
/// samples are tagged with it so that they can be decoded against the decode
/// dictionary that was current when they were recorded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimeStamp(u32);

impl TimeStamp {
    /// The timestamp before any re-encoding has happened.
    pub const ZERO: TimeStamp = TimeStamp(0);

    /// Creates a timestamp from its raw counter value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw counter value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the timestamp as an index into a dictionary store.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the timestamp after one more re-encoding.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl std::fmt::Display for TimeStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gTS{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_id_roundtrip() {
        let id = FunctionId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(CallSiteId::new(1) < CallSiteId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(1));
    }

    #[test]
    fn debug_and_display_formats_are_tagged() {
        assert_eq!(format!("{:?}", FunctionId::new(3)), "f3");
        assert_eq!(format!("{}", CallSiteId::new(7)), "cs7");
        assert_eq!(format!("{}", EdgeId::new(9)), "e9");
        assert_eq!(format!("{}", TimeStamp::new(2)), "gTS2");
    }

    #[test]
    fn timestamp_next_increments() {
        let t = TimeStamp::ZERO;
        assert_eq!(t.next().raw(), 1);
        assert_eq!(t.next().next().index(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(FunctionId::default().raw(), 0);
        assert_eq!(TimeStamp::default(), TimeStamp::ZERO);
    }
}
