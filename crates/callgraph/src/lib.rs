//! Dynamic call-graph representation and context-encoding algorithms.
//!
//! This crate is the graph substrate of the DACCE reproduction (Li et al.,
//! *Dynamic and Adaptive Calling Context Encoding*, CGO 2014). It provides:
//!
//! * dense identifier newtypes for functions, call sites and edges
//!   ([`FunctionId`], [`CallSiteId`], [`EdgeId`]),
//! * an incrementally growable [`CallGraph`] that stores one node per
//!   function and one edge per `(call site, target)` pair,
//! * graph analyses ([`analysis`]): deterministic DFS back-edge
//!   identification, topological ordering of the acyclic (encoded) subgraph,
//!   and reachability,
//! * the Ball–Larus-style numbering used by both DACCE and the PCCE baseline
//!   ([`encode`]): `numCC` computation with 128-bit overflow detection and
//!   frequency-ordered edge-encoding assignment (the hottest incoming edge of
//!   every node is encoded `0` and needs no instrumentation),
//! * versioned decode dictionaries ([`dict`]): immutable snapshots of
//!   `(edge encodings, numCC, maxID)` tagged with the global re-encoding
//!   timestamp `gTimeStamp`, exactly as in Figure 6 of the paper,
//! * Graphviz export for debugging ([`dot`]).
//!
//! # Example
//!
//! Encode the call graph of Figure 1 of the paper and observe that only the
//! edge `C -> D` receives a non-zero encoding:
//!
//! ```
//! use dacce_callgraph::{CallGraph, CallSiteId, Dispatch, FunctionId};
//! use dacce_callgraph::encode::{encode_graph, EncodeOptions};
//!
//! let mut g = CallGraph::new();
//! let f: Vec<FunctionId> = (0..6).map(|i| {
//!     let id = FunctionId::new(i);
//!     g.ensure_node(id);
//!     id
//! }).collect();
//! let mut site = 0u32;
//! let mut call = |g: &mut CallGraph, from: usize, to: usize| {
//!     let s = CallSiteId::new(site);
//!     site += 1;
//!     g.add_edge(f[from], f[to], s, Dispatch::Direct);
//! };
//! call(&mut g, 0, 1); // A -> B
//! call(&mut g, 0, 2); // A -> C
//! call(&mut g, 1, 3); // B -> D
//! call(&mut g, 2, 3); // C -> D
//! call(&mut g, 3, 4); // D -> E
//! call(&mut g, 3, 5); // D -> F
//! let enc = encode_graph(&mut g, &[f[0]], &EncodeOptions::default());
//! assert_eq!(enc.max_id, 1); // D, E, F each have two contexts
//! ```

pub mod analysis;
pub mod dict;
pub mod dot;
pub mod encode;
pub mod graph;
pub mod ids;
pub mod paths;

pub use dict::{DecodeDict, DictEdge, DictStore};
pub use encode::{EncodeOptions, Encoding};
pub use graph::{CallGraph, Dispatch, Edge, Node};
pub use ids::{CallSiteId, EdgeId, FunctionId, TimeStamp};
