//! Versioned decode dictionaries (`gTimeStamp` mechanism, §4.1, Figure 6).
//!
//! Every adaptive re-encoding changes edge encodings, `numCC` values and
//! `maxID`. A context id recorded *before* a re-encoding must be decoded with
//! the dictionary that was current when it was emitted, so the runtime keeps
//! an append-only [`DictStore`] of immutable [`DecodeDict`] snapshots indexed
//! by [`TimeStamp`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::encode::Encoding;
use crate::graph::{CallGraph, Dispatch};
use crate::ids::{CallSiteId, FunctionId, TimeStamp};

/// One edge as frozen into a decode dictionary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictEdge {
    /// The calling function `p`.
    pub caller: FunctionId,
    /// The called function `n`.
    pub callee: FunctionId,
    /// The call site `l` inside the caller.
    pub site: CallSiteId,
    /// `En(e)`; `0` for back edges (which are never added to the id).
    pub encoding: u64,
    /// Whether this edge was a back edge under this dictionary's analysis.
    pub back: bool,
    /// Dispatch kind, kept for diagnostics.
    pub dispatch: Dispatch,
}

/// An immutable snapshot of everything needed to decode ids recorded at one
/// timestamp: edge encodings (`Edge._encoding`), context counts
/// (`Node._numCC`) and `maxID` (Figure 6 of the paper).
#[derive(Clone, Debug, Default)]
pub struct DecodeDict {
    timestamp: TimeStamp,
    max_id: u64,
    edges: Vec<DictEdge>,
    incoming: HashMap<FunctionId, Vec<u32>>,
    by_site_callee: HashMap<(CallSiteId, FunctionId), u32>,
    num_cc: HashMap<FunctionId, u64>,
}

/// Errors building a dictionary from an encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DictError {
    /// The encoding overflowed the 64-bit id budget and cannot drive a
    /// runtime (PCCE must prune and re-encode first).
    Overflow,
}

impl std::fmt::Display for DictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictError::Overflow => write!(f, "encoding exceeds the 64-bit context id budget"),
        }
    }
}

impl std::error::Error for DictError {}

impl DecodeDict {
    /// Freezes `graph` + `encoding` into a dictionary tagged `timestamp`.
    ///
    /// # Errors
    ///
    /// Returns [`DictError::Overflow`] if the encoding overflowed.
    pub fn from_encoding(
        graph: &CallGraph,
        encoding: &Encoding,
        timestamp: TimeStamp,
    ) -> Result<Self, DictError> {
        if encoding.overflow {
            return Err(DictError::Overflow);
        }
        let mut dict = DecodeDict {
            timestamp,
            max_id: encoding.max_id,
            ..DecodeDict::default()
        };
        for (eid, e) in graph.edges() {
            let en = if e.back {
                0
            } else {
                match encoding.encoding_u64(eid) {
                    Some(v) => v,
                    None => return Err(DictError::Overflow),
                }
            };
            let idx = dict.edges.len() as u32;
            dict.edges.push(DictEdge {
                caller: e.caller,
                callee: e.callee,
                site: e.site,
                encoding: en,
                back: e.back,
                dispatch: e.dispatch,
            });
            dict.incoming.entry(e.callee).or_default().push(idx);
            dict.by_site_callee.insert((e.site, e.callee), idx);
        }
        for (&node, &cc) in &encoding.num_cc {
            dict.num_cc
                .insert(node, u64::try_from(cc).map_err(|_| DictError::Overflow)?);
        }
        Ok(dict)
    }

    /// The timestamp this dictionary is valid for.
    pub fn timestamp(&self) -> TimeStamp {
        self.timestamp
    }

    /// `maxID` under this dictionary: the greatest encodable sub-path id.
    pub fn max_id(&self) -> u64 {
        self.max_id
    }

    /// Number of edges frozen into the dictionary.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes with a context count.
    pub fn node_count(&self) -> usize {
        self.num_cc.len()
    }

    /// `numCC(f)`, or `None` if `f` was not in the graph at snapshot time.
    pub fn num_cc(&self, f: FunctionId) -> Option<u64> {
        self.num_cc.get(&f).copied()
    }

    /// Incoming dictionary edges of `f`, in graph insertion order.
    pub fn incoming(&self, f: FunctionId) -> impl Iterator<Item = &DictEdge> {
        self.incoming
            .get(&f)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i as usize])
    }

    /// The paper's `getEdge(cs, ifun)`: the edge at call site `site` whose
    /// callee is `callee`, if it existed at snapshot time.
    pub fn get_edge(&self, site: CallSiteId, callee: FunctionId) -> Option<&DictEdge> {
        self.by_site_callee
            .get(&(site, callee))
            .map(|&i| &self.edges[i as usize])
    }

    /// All dictionary edges.
    pub fn edges(&self) -> &[DictEdge] {
        &self.edges
    }
}

/// Append-only store of decode dictionaries, one per re-encoding.
///
/// Dictionaries are held behind [`Arc`] so the store can be cloned in O(n)
/// pointer copies — concurrent runtimes publish immutable store snapshots
/// to reader threads on every re-encoding without duplicating dictionary
/// contents.
#[derive(Clone, Debug, Default)]
pub struct DictStore {
    dicts: Vec<Arc<DecodeDict>>,
}

impl DictStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a dictionary.
    ///
    /// # Panics
    ///
    /// Panics if the dictionary's timestamp does not equal the next store
    /// index — timestamps and store positions must stay in lock step.
    pub fn push(&mut self, dict: DecodeDict) {
        assert_eq!(
            dict.timestamp().index(),
            self.dicts.len(),
            "dictionary timestamp out of order"
        );
        self.dicts.push(Arc::new(dict));
    }

    /// The dictionary for `ts`, if recorded.
    pub fn get(&self, ts: TimeStamp) -> Option<&DecodeDict> {
        self.dicts.get(ts.index()).map(Arc::as_ref)
    }

    /// A shared handle to the dictionary for `ts`, if recorded.
    pub fn get_arc(&self, ts: TimeStamp) -> Option<Arc<DecodeDict>> {
        self.dicts.get(ts.index()).cloned()
    }

    /// The most recent dictionary, if any.
    pub fn latest(&self) -> Option<&DecodeDict> {
        self.dicts.last().map(Arc::as_ref)
    }

    /// A shared handle to the most recent dictionary, if any.
    pub fn latest_arc(&self) -> Option<Arc<DecodeDict>> {
        self.dicts.last().cloned()
    }

    /// Number of dictionaries recorded (equals the number of re-encodings).
    pub fn len(&self) -> usize {
        self.dicts.len()
    }

    /// True when no re-encoding has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.dicts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::classify_back_edges;
    use crate::encode::{encode_graph, EncodeOptions};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn diamond() -> CallGraph {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(2), s(1), Dispatch::Direct);
        g.add_edge(f(1), f(3), s(2), Dispatch::Direct);
        g.add_edge(f(2), f(3), s(3), Dispatch::Direct);
        g
    }

    #[test]
    fn snapshot_freezes_encodings() {
        let mut g = diamond();
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let dict = DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap();
        assert_eq!(dict.max_id(), 1);
        assert_eq!(dict.edge_count(), 4);
        assert_eq!(dict.node_count(), 4);
        assert_eq!(dict.num_cc(f(3)), Some(2));
        assert_eq!(dict.num_cc(f(9)), None);
        let e = dict.get_edge(s(3), f(3)).unwrap();
        assert_eq!(e.caller, f(2));
        assert_eq!(e.encoding, 1);
        assert!(dict.get_edge(s(3), f(1)).is_none());
    }

    #[test]
    fn incoming_iterates_in_insertion_order() {
        let mut g = diamond();
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let dict = DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap();
        let callers: Vec<FunctionId> = dict.incoming(f(3)).map(|e| e.caller).collect();
        assert_eq!(callers, vec![f(1), f(2)]);
        assert_eq!(dict.incoming(f(0)).count(), 0);
    }

    #[test]
    fn back_edges_are_frozen_with_zero_encoding() {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(1), f(0), s(1), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let dict = DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap();
        let back = dict.get_edge(s(1), f(0)).unwrap();
        assert!(back.back);
        assert_eq!(back.encoding, 0);
    }

    #[test]
    fn overflowed_encoding_is_rejected() {
        let g = diamond();
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        enc.overflow = true;
        assert_eq!(
            DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap_err(),
            DictError::Overflow
        );
    }

    #[test]
    fn store_enforces_timestamp_ordering() {
        let mut g = diamond();
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        assert!(store.is_empty());
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::new(1)).unwrap());
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.get(TimeStamp::ZERO).unwrap().timestamp(),
            TimeStamp::ZERO
        );
        assert_eq!(store.latest().unwrap().timestamp(), TimeStamp::new(1));
        assert!(store.get(TimeStamp::new(5)).is_none());
    }

    #[test]
    fn store_clones_share_dictionaries() {
        let mut g = diamond();
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let snapshot = store.clone();
        let a = store.get_arc(TimeStamp::ZERO).unwrap();
        let b = snapshot.latest_arc().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "clones must share dictionary storage");
    }

    #[test]
    #[should_panic(expected = "timestamp out of order")]
    fn store_rejects_out_of_order_push() {
        let mut g = diamond();
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::new(3)).unwrap());
    }

    #[test]
    fn dict_error_displays() {
        assert!(DictError::Overflow.to_string().contains("64-bit"));
    }
}
