//! Graph analyses: back-edge identification, topological order, reachability.
//!
//! DACCE never encodes back edges (recursive calls split full call paths into
//! acyclic sub-paths, §3.3), so every re-encoding first classifies edges with
//! a deterministic iterative DFS and then lays out the acyclic remainder in
//! topological order for the `numCC` computation.

use std::collections::{HashMap, HashSet};

use crate::graph::CallGraph;
use crate::ids::{EdgeId, FunctionId};

/// Result of [`find_back_edges`].
#[derive(Clone, Debug, Default)]
pub struct BackEdgeAnalysis {
    /// Edges classified as back edges, in discovery order.
    pub back_edges: Vec<EdgeId>,
    /// DFS finish order (reverse of it is a topological order of the
    /// non-back subgraph restricted to visited nodes).
    pub finish_order: Vec<FunctionId>,
    /// Nodes reachable from the supplied roots.
    pub reachable: HashSet<FunctionId>,
}

/// Classifies back edges by iterative DFS from `roots`.
///
/// An edge is a back edge iff its target is on the current DFS stack
/// (including self loops). Nodes unreachable from any root are scanned
/// afterwards in insertion order so that *every* edge gets a classification
/// — PCCE's conservative static graphs routinely contain such nodes.
///
/// The traversal visits out-edges in insertion order, which makes the
/// classification deterministic for a given graph construction order. This
/// mirrors the paper's behaviour where the classification depends on
/// discovery order (§6.4 discusses a hot edge of `483.xalancbmk` turning into
/// a back edge only after a later edge discovery).
pub fn find_back_edges(graph: &CallGraph, roots: &[FunctionId]) -> BackEdgeAnalysis {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }

    let mut color: HashMap<FunctionId, Color> =
        graph.nodes().iter().map(|&f| (f, Color::White)).collect();
    let mut out = BackEdgeAnalysis::default();

    // Explicit DFS frame: node + index of next outgoing edge to process.
    let mut stack: Vec<(FunctionId, usize)> = Vec::new();

    let mut start_points: Vec<FunctionId> = Vec::new();
    for &r in roots {
        if graph.contains_node(r) {
            start_points.push(r);
        }
    }
    start_points.extend(graph.nodes().iter().copied());

    for start in start_points {
        if color.get(&start) != Some(&Color::White) {
            continue;
        }
        color.insert(start, Color::Grey);
        stack.push((start, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let outgoing = graph.outgoing(node);
            if *next < outgoing.len() {
                let eid = outgoing[*next];
                *next += 1;
                let target = graph.edge(eid).callee;
                match color[&target] {
                    Color::Grey => out.back_edges.push(eid),
                    Color::White => {
                        color.insert(target, Color::Grey);
                        stack.push((target, 0));
                    }
                    Color::Black => {}
                }
            } else {
                stack.pop();
                color.insert(node, Color::Black);
                out.finish_order.push(node);
            }
        }
    }

    // Precise reachability from the given roots over all edges.
    let mut worklist: Vec<FunctionId> = roots
        .iter()
        .copied()
        .filter(|f| graph.contains_node(*f))
        .collect();
    for &f in &worklist {
        out.reachable.insert(f);
    }
    while let Some(f) = worklist.pop() {
        for &eid in graph.outgoing(f) {
            let t = graph.edge(eid).callee;
            if out.reachable.insert(t) {
                worklist.push(t);
            }
        }
    }

    out
}

/// Runs [`find_back_edges`] and stores the classification in the graph's
/// `back` flags. Returns the analysis.
pub fn classify_back_edges(graph: &mut CallGraph, roots: &[FunctionId]) -> BackEdgeAnalysis {
    graph.clear_back_flags();
    let analysis = find_back_edges(graph, roots);
    for &eid in &analysis.back_edges {
        graph.edge_mut(eid).back = true;
    }
    analysis
}

/// Topological order of the non-back subgraph (callers before callees).
///
/// # Panics
///
/// Panics if the non-back subgraph still contains a cycle, which indicates
/// that back-edge classification was skipped or the graph mutated since.
pub fn topological_order(graph: &CallGraph) -> Vec<FunctionId> {
    let mut indegree: HashMap<FunctionId, usize> =
        graph.nodes().iter().map(|&f| (f, 0usize)).collect();
    for (_, e) in graph.edges() {
        if !e.back {
            *indegree.get_mut(&e.callee).expect("endpoint present") += 1;
        }
    }
    let mut ready: Vec<FunctionId> = graph
        .nodes()
        .iter()
        .copied()
        .filter(|f| indegree[f] == 0)
        .collect();
    let mut order = Vec::with_capacity(graph.node_count());
    let mut head = 0;
    while head < ready.len() {
        let f = ready[head];
        head += 1;
        order.push(f);
        for &eid in graph.outgoing(f) {
            let e = graph.edge(eid);
            if e.back {
                continue;
            }
            let d = indegree.get_mut(&e.callee).expect("endpoint present");
            *d -= 1;
            if *d == 0 {
                ready.push(e.callee);
            }
        }
    }
    assert_eq!(
        order.len(),
        graph.node_count(),
        "non-back subgraph contains a cycle; run classify_back_edges first"
    );
    order
}

/// Strongly connected components of a call graph, with the condensation
/// metadata ahead-of-time analyses need: which components are recursive
/// (so every intra-component edge chosen as a DFS back edge stays
/// unencoded forever) and the component DAG over the rest.
#[derive(Clone, Debug, Default)]
pub struct SccAnalysis {
    /// Component index per node; components are numbered in reverse
    /// topological order of the condensation (callees before callers).
    pub component_of: HashMap<FunctionId, usize>,
    /// Member lists per component, in discovery order.
    pub components: Vec<Vec<FunctionId>>,
    /// Components containing a cycle: more than one member, or a single
    /// member with a self loop. Functions in these components can recurse.
    pub recursive: Vec<bool>,
    /// Condensation edges `(caller component, callee component)`, deduped,
    /// self edges excluded. This is a DAG by construction.
    pub dag_edges: Vec<(usize, usize)>,
}

impl SccAnalysis {
    /// Whether `f` sits inside a recursive component.
    pub fn is_recursive(&self, f: FunctionId) -> bool {
        self.component_of
            .get(&f)
            .is_some_and(|&c| self.recursive[c])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Computes the strongly connected components of `graph` with an iterative
/// Tarjan traversal (no recursion: PCCE-style static graphs can be deep).
///
/// Deterministic for a given construction order: roots are visited first,
/// then remaining nodes in insertion order, and out-edges in insertion
/// order — the same discipline as [`find_back_edges`].
pub fn strongly_connected_components(graph: &CallGraph, roots: &[FunctionId]) -> SccAnalysis {
    const UNVISITED: usize = usize::MAX;
    let mut index_of: HashMap<FunctionId, usize> =
        graph.nodes().iter().map(|&f| (f, UNVISITED)).collect();
    let mut lowlink: HashMap<FunctionId, usize> = HashMap::new();
    let mut on_stack: HashSet<FunctionId> = HashSet::new();
    let mut tarjan_stack: Vec<FunctionId> = Vec::new();
    let mut next_index = 0usize;
    let mut out = SccAnalysis::default();

    let mut start_points: Vec<FunctionId> = roots
        .iter()
        .copied()
        .filter(|f| graph.contains_node(*f))
        .collect();
    start_points.extend(graph.nodes().iter().copied());

    // Explicit DFS frame: node + index of the next outgoing edge.
    let mut work: Vec<(FunctionId, usize)> = Vec::new();
    for start in start_points {
        if index_of[&start] != UNVISITED {
            continue;
        }
        work.push((start, 0));
        index_of.insert(start, next_index);
        lowlink.insert(start, next_index);
        next_index += 1;
        tarjan_stack.push(start);
        on_stack.insert(start);

        while let Some(&mut (node, ref mut next)) = work.last_mut() {
            let outgoing = graph.outgoing(node);
            if *next < outgoing.len() {
                let eid = outgoing[*next];
                *next += 1;
                let target = graph.edge(eid).callee;
                if index_of[&target] == UNVISITED {
                    work.push((target, 0));
                    index_of.insert(target, next_index);
                    lowlink.insert(target, next_index);
                    next_index += 1;
                    tarjan_stack.push(target);
                    on_stack.insert(target);
                } else if on_stack.contains(&target) {
                    let t_idx = index_of[&target];
                    let low = lowlink.get_mut(&node).expect("visited");
                    *low = (*low).min(t_idx);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    let node_low = lowlink[&node];
                    let low = lowlink.get_mut(&parent).expect("visited");
                    *low = (*low).min(node_low);
                }
                if lowlink[&node] == index_of[&node] {
                    // `node` is a component root; pop its members.
                    let comp = out.components.len();
                    let mut members = Vec::new();
                    loop {
                        let m = tarjan_stack.pop().expect("component member on stack");
                        on_stack.remove(&m);
                        out.component_of.insert(m, comp);
                        members.push(m);
                        if m == node {
                            break;
                        }
                    }
                    let recursive = members.len() > 1
                        || graph.outgoing(node).iter().any(|&eid| {
                            let e = graph.edge(eid);
                            e.caller == node && e.callee == node
                        });
                    out.components.push(members);
                    out.recursive.push(recursive);
                }
            }
        }
    }

    // Condensation edges, deduped, excluding intra-component edges.
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for (_, e) in graph.edges() {
        let a = out.component_of[&e.caller];
        let b = out.component_of[&e.callee];
        if a != b && seen.insert((a, b)) {
            out.dag_edges.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dispatch;
    use crate::ids::CallSiteId;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    fn chain(graph: &mut CallGraph, pairs: &[(u32, u32)]) {
        for (i, &(a, b)) in pairs.iter().enumerate() {
            graph.add_edge(f(a), f(b), CallSiteId::new(i as u32), Dispatch::Direct);
        }
    }

    #[test]
    fn acyclic_graph_has_no_back_edges() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert!(a.back_edges.is_empty());
        assert_eq!(g.back_edge_count(), 0);
    }

    #[test]
    fn simple_cycle_yields_one_back_edge() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 0)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        // The edge closing the cycle (2 -> 0) is the back edge because DFS
        // starts at the root 0.
        let back = g.edge(a.back_edges[0]);
        assert_eq!((back.caller, back.callee), (f(2), f(0)));
    }

    #[test]
    fn self_loop_is_a_back_edge() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 1)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        let back = g.edge(a.back_edges[0]);
        assert_eq!((back.caller, back.callee), (f(1), f(1)));
    }

    #[test]
    fn mutual_recursion_breaks_exactly_one_direction() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 1)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        let back = g.edge(a.back_edges[0]);
        assert_eq!((back.caller, back.callee), (f(2), f(1)));
    }

    #[test]
    fn unreachable_nodes_are_still_classified() {
        let mut g = CallGraph::new();
        // Root component 0 -> 1; detached cycle 5 <-> 6.
        chain(&mut g, &[(0, 1), (5, 6), (6, 5)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        assert!(a.reachable.contains(&f(1)));
        assert!(!a.reachable.contains(&f(5)));
        // Topological order must now succeed on the full node set.
        let order = topological_order(&g);
        assert_eq!(order.len(), g.node_count());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        classify_back_edges(&mut g, &[f(0)]);
        let order = topological_order(&g);
        let pos: HashMap<FunctionId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (_, e) in g.edges() {
            assert!(pos[&e.caller] < pos[&e.callee], "edge {e:?} violates order");
        }
    }

    #[test]
    #[should_panic(expected = "contains a cycle")]
    fn topological_order_panics_on_unclassified_cycle() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 0)]);
        // Deliberately skip classify_back_edges.
        let _ = topological_order(&g);
    }

    #[test]
    fn dfs_is_deterministic_across_runs() {
        let build = || {
            let mut g = CallGraph::new();
            chain(
                &mut g,
                &[(0, 1), (1, 2), (2, 3), (3, 1), (0, 3), (3, 4), (4, 2)],
            );
            g
        };
        let mut g1 = build();
        let mut g2 = build();
        let a1 = classify_back_edges(&mut g1, &[f(0)]);
        let a2 = classify_back_edges(&mut g2, &[f(0)]);
        assert_eq!(a1.back_edges, a2.back_edges);
        assert_eq!(a1.finish_order, a2.finish_order);
    }

    #[test]
    fn reachability_covers_transitive_targets() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 3)]);
        let a = find_back_edges(&g, &[f(0)]);
        for i in 0..4 {
            assert!(a.reachable.contains(&f(i)));
        }
    }

    #[test]
    fn scc_identifies_recursive_components() {
        let mut g = CallGraph::new();
        // main -> a; a <-> b (mutual recursion); a -> leaf; self loop on c.
        chain(&mut g, &[(0, 1), (1, 2), (2, 1), (1, 3), (0, 4), (4, 4)]);
        let scc = strongly_connected_components(&g, &[f(0)]);
        assert_eq!(scc.component_of[&f(1)], scc.component_of[&f(2)]);
        assert_ne!(scc.component_of[&f(0)], scc.component_of[&f(1)]);
        assert!(scc.is_recursive(f(1)));
        assert!(scc.is_recursive(f(2)));
        assert!(scc.is_recursive(f(4)), "self loop is recursive");
        assert!(!scc.is_recursive(f(0)));
        assert!(!scc.is_recursive(f(3)));
        assert!(!scc.is_recursive(f(99)), "unknown node is not recursive");
    }

    #[test]
    fn scc_condensation_is_a_dag_in_reverse_topological_order() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 1), (2, 3), (0, 3)]);
        let scc = strongly_connected_components(&g, &[f(0)]);
        assert!(!scc.is_empty());
        // Tarjan emits components callees-first, so every condensation edge
        // goes from a higher-numbered component to a lower-numbered one.
        for &(a, b) in &scc.dag_edges {
            assert!(a > b, "condensation edge {a} -> {b} not reverse-topo");
        }
        // No intra-component edges and no duplicates.
        let mut seen = HashSet::new();
        for &e in &scc.dag_edges {
            assert_ne!(e.0, e.1);
            assert!(seen.insert(e));
        }
    }

    #[test]
    fn scc_covers_unreachable_nodes() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (5, 6), (6, 5)]);
        let scc = strongly_connected_components(&g, &[f(0)]);
        assert_eq!(scc.component_of.len(), 4);
        assert!(scc.is_recursive(f(5)));
        assert_eq!(
            scc.components.iter().map(Vec::len).sum::<usize>(),
            g.node_count()
        );
    }

    #[test]
    fn scc_back_edge_agreement_on_acyclic_graph() {
        // On an acyclic graph every component is a singleton and nothing is
        // recursive — matching find_back_edges reporting no back edges.
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let scc = strongly_connected_components(&g, &[f(0)]);
        assert_eq!(scc.len(), g.node_count());
        assert!(scc.recursive.iter().all(|&r| !r));
        assert!(find_back_edges(&g, &[f(0)]).back_edges.is_empty());
    }

    #[test]
    fn multiple_roots_are_supported() {
        let mut g = CallGraph::new();
        // Two disjoint components rooted at 0 and 10 (e.g. main + thread
        // entry).
        chain(&mut g, &[(0, 1), (10, 11), (11, 10)]);
        let a = classify_back_edges(&mut g, &[f(0), f(10)]);
        assert_eq!(a.back_edges.len(), 1);
        assert!(a.reachable.contains(&f(11)));
    }
}
