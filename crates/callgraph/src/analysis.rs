//! Graph analyses: back-edge identification, topological order, reachability.
//!
//! DACCE never encodes back edges (recursive calls split full call paths into
//! acyclic sub-paths, §3.3), so every re-encoding first classifies edges with
//! a deterministic iterative DFS and then lays out the acyclic remainder in
//! topological order for the `numCC` computation.

use std::collections::{HashMap, HashSet};

use crate::graph::CallGraph;
use crate::ids::{EdgeId, FunctionId};

/// Result of [`find_back_edges`].
#[derive(Clone, Debug, Default)]
pub struct BackEdgeAnalysis {
    /// Edges classified as back edges, in discovery order.
    pub back_edges: Vec<EdgeId>,
    /// DFS finish order (reverse of it is a topological order of the
    /// non-back subgraph restricted to visited nodes).
    pub finish_order: Vec<FunctionId>,
    /// Nodes reachable from the supplied roots.
    pub reachable: HashSet<FunctionId>,
}

/// Classifies back edges by iterative DFS from `roots`.
///
/// An edge is a back edge iff its target is on the current DFS stack
/// (including self loops). Nodes unreachable from any root are scanned
/// afterwards in insertion order so that *every* edge gets a classification
/// — PCCE's conservative static graphs routinely contain such nodes.
///
/// The traversal visits out-edges in insertion order, which makes the
/// classification deterministic for a given graph construction order. This
/// mirrors the paper's behaviour where the classification depends on
/// discovery order (§6.4 discusses a hot edge of `483.xalancbmk` turning into
/// a back edge only after a later edge discovery).
pub fn find_back_edges(graph: &CallGraph, roots: &[FunctionId]) -> BackEdgeAnalysis {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }

    let mut color: HashMap<FunctionId, Color> =
        graph.nodes().iter().map(|&f| (f, Color::White)).collect();
    let mut out = BackEdgeAnalysis::default();

    // Explicit DFS frame: node + index of next outgoing edge to process.
    let mut stack: Vec<(FunctionId, usize)> = Vec::new();

    let mut start_points: Vec<FunctionId> = Vec::new();
    for &r in roots {
        if graph.contains_node(r) {
            start_points.push(r);
        }
    }
    start_points.extend(graph.nodes().iter().copied());

    for start in start_points {
        if color.get(&start) != Some(&Color::White) {
            continue;
        }
        color.insert(start, Color::Grey);
        stack.push((start, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let outgoing = graph.outgoing(node);
            if *next < outgoing.len() {
                let eid = outgoing[*next];
                *next += 1;
                let target = graph.edge(eid).callee;
                match color[&target] {
                    Color::Grey => out.back_edges.push(eid),
                    Color::White => {
                        color.insert(target, Color::Grey);
                        stack.push((target, 0));
                    }
                    Color::Black => {}
                }
            } else {
                stack.pop();
                color.insert(node, Color::Black);
                out.finish_order.push(node);
            }
        }
    }

    // Precise reachability from the given roots over all edges.
    let mut worklist: Vec<FunctionId> = roots
        .iter()
        .copied()
        .filter(|f| graph.contains_node(*f))
        .collect();
    for &f in &worklist {
        out.reachable.insert(f);
    }
    while let Some(f) = worklist.pop() {
        for &eid in graph.outgoing(f) {
            let t = graph.edge(eid).callee;
            if out.reachable.insert(t) {
                worklist.push(t);
            }
        }
    }

    out
}

/// Runs [`find_back_edges`] and stores the classification in the graph's
/// `back` flags. Returns the analysis.
pub fn classify_back_edges(graph: &mut CallGraph, roots: &[FunctionId]) -> BackEdgeAnalysis {
    graph.clear_back_flags();
    let analysis = find_back_edges(graph, roots);
    for &eid in &analysis.back_edges {
        graph.edge_mut(eid).back = true;
    }
    analysis
}

/// Topological order of the non-back subgraph (callers before callees).
///
/// # Panics
///
/// Panics if the non-back subgraph still contains a cycle, which indicates
/// that back-edge classification was skipped or the graph mutated since.
pub fn topological_order(graph: &CallGraph) -> Vec<FunctionId> {
    let mut indegree: HashMap<FunctionId, usize> =
        graph.nodes().iter().map(|&f| (f, 0usize)).collect();
    for (_, e) in graph.edges() {
        if !e.back {
            *indegree.get_mut(&e.callee).expect("endpoint present") += 1;
        }
    }
    let mut ready: Vec<FunctionId> = graph
        .nodes()
        .iter()
        .copied()
        .filter(|f| indegree[f] == 0)
        .collect();
    let mut order = Vec::with_capacity(graph.node_count());
    let mut head = 0;
    while head < ready.len() {
        let f = ready[head];
        head += 1;
        order.push(f);
        for &eid in graph.outgoing(f) {
            let e = graph.edge(eid);
            if e.back {
                continue;
            }
            let d = indegree.get_mut(&e.callee).expect("endpoint present");
            *d -= 1;
            if *d == 0 {
                ready.push(e.callee);
            }
        }
    }
    assert_eq!(
        order.len(),
        graph.node_count(),
        "non-back subgraph contains a cycle; run classify_back_edges first"
    );
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dispatch;
    use crate::ids::CallSiteId;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    fn chain(graph: &mut CallGraph, pairs: &[(u32, u32)]) {
        for (i, &(a, b)) in pairs.iter().enumerate() {
            graph.add_edge(f(a), f(b), CallSiteId::new(i as u32), Dispatch::Direct);
        }
    }

    #[test]
    fn acyclic_graph_has_no_back_edges() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert!(a.back_edges.is_empty());
        assert_eq!(g.back_edge_count(), 0);
    }

    #[test]
    fn simple_cycle_yields_one_back_edge() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 0)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        // The edge closing the cycle (2 -> 0) is the back edge because DFS
        // starts at the root 0.
        let back = g.edge(a.back_edges[0]);
        assert_eq!((back.caller, back.callee), (f(2), f(0)));
    }

    #[test]
    fn self_loop_is_a_back_edge() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 1)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        let back = g.edge(a.back_edges[0]);
        assert_eq!((back.caller, back.callee), (f(1), f(1)));
    }

    #[test]
    fn mutual_recursion_breaks_exactly_one_direction() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 1)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        let back = g.edge(a.back_edges[0]);
        assert_eq!((back.caller, back.callee), (f(2), f(1)));
    }

    #[test]
    fn unreachable_nodes_are_still_classified() {
        let mut g = CallGraph::new();
        // Root component 0 -> 1; detached cycle 5 <-> 6.
        chain(&mut g, &[(0, 1), (5, 6), (6, 5)]);
        let a = classify_back_edges(&mut g, &[f(0)]);
        assert_eq!(a.back_edges.len(), 1);
        assert!(a.reachable.contains(&f(1)));
        assert!(!a.reachable.contains(&f(5)));
        // Topological order must now succeed on the full node set.
        let order = topological_order(&g);
        assert_eq!(order.len(), g.node_count());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        classify_back_edges(&mut g, &[f(0)]);
        let order = topological_order(&g);
        let pos: HashMap<FunctionId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (_, e) in g.edges() {
            assert!(pos[&e.caller] < pos[&e.callee], "edge {e:?} violates order");
        }
    }

    #[test]
    #[should_panic(expected = "contains a cycle")]
    fn topological_order_panics_on_unclassified_cycle() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 0)]);
        // Deliberately skip classify_back_edges.
        let _ = topological_order(&g);
    }

    #[test]
    fn dfs_is_deterministic_across_runs() {
        let build = || {
            let mut g = CallGraph::new();
            chain(
                &mut g,
                &[(0, 1), (1, 2), (2, 3), (3, 1), (0, 3), (3, 4), (4, 2)],
            );
            g
        };
        let mut g1 = build();
        let mut g2 = build();
        let a1 = classify_back_edges(&mut g1, &[f(0)]);
        let a2 = classify_back_edges(&mut g2, &[f(0)]);
        assert_eq!(a1.back_edges, a2.back_edges);
        assert_eq!(a1.finish_order, a2.finish_order);
    }

    #[test]
    fn reachability_covers_transitive_targets() {
        let mut g = CallGraph::new();
        chain(&mut g, &[(0, 1), (1, 2), (2, 3)]);
        let a = find_back_edges(&g, &[f(0)]);
        for i in 0..4 {
            assert!(a.reachable.contains(&f(i)));
        }
    }

    #[test]
    fn multiple_roots_are_supported() {
        let mut g = CallGraph::new();
        // Two disjoint components rooted at 0 and 10 (e.g. main + thread
        // entry).
        chain(&mut g, &[(0, 1), (10, 11), (11, 10)]);
        let a = classify_back_edges(&mut g, &[f(0), f(10)]);
        assert_eq!(a.back_edges.len(), 1);
        assert!(a.reachable.contains(&f(11)));
    }
}
