//! The incrementally growable call graph.
//!
//! DACCE starts from a graph containing only `main` and adds nodes and edges
//! as call edges are observed at runtime (§3 of the paper); the PCCE baseline
//! constructs the complete static graph up front. Both use this structure.
//!
//! Iteration order over nodes and edges is insertion order, which keeps every
//! algorithm in this workspace deterministic.

use std::collections::HashMap;

use crate::ids::{CallSiteId, EdgeId, FunctionId};

/// How a call site dispatches to its target.
///
/// The paper distinguishes normal (direct) calls, indirect calls through
/// function pointers (§3.2), calls through the PLT into shared libraries
/// (§5.1) and thread-creation calls (§5.3). Tail calls (§5.2) are an
/// orthogonal property carried by the program model, not by the edge: an
/// indirect branch can also be a tail call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dispatch {
    /// A direct call whose target is known statically.
    Direct,
    /// An indirect call through a function pointer; targets are discovered
    /// at runtime (DACCE) or over-approximated by points-to analysis (PCCE).
    Indirect,
    /// A lazily bound call through the procedure linkage table.
    Plt,
    /// A thread-creation call (`clone` interception in the paper).
    Spawn,
}

impl Dispatch {
    /// Returns `true` for dispatch kinds whose concrete target is only known
    /// at runtime.
    pub fn is_dynamic(self) -> bool {
        matches!(self, Dispatch::Indirect | Dispatch::Plt)
    }
}

/// A call edge `<p, n, l>`: caller `p` invokes callee `n` from call site `l`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The calling function.
    pub caller: FunctionId,
    /// The called function.
    pub callee: FunctionId,
    /// The call site inside the caller.
    pub site: CallSiteId,
    /// How the call dispatches.
    pub dispatch: Dispatch,
    /// Whether the most recent back-edge analysis classified this edge as a
    /// back edge (recursion). Back edges are never encoded.
    pub back: bool,
}

/// A call-graph node: one function plus its incident edge lists.
#[derive(Clone, Debug, Default)]
pub struct Node {
    /// Edges for which this node is the callee, in insertion order.
    pub incoming: Vec<EdgeId>,
    /// Edges for which this node is the caller, in insertion order.
    pub outgoing: Vec<EdgeId>,
}

/// An insertion-ordered multigraph of call edges.
///
/// Nodes are keyed by [`FunctionId`]; at most one edge exists per
/// `(call site, callee)` pair (an indirect site contributes one edge per
/// distinct runtime target).
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    nodes: HashMap<FunctionId, Node>,
    node_order: Vec<FunctionId>,
    edges: Vec<Edge>,
    edge_index: HashMap<(CallSiteId, FunctionId), EdgeId>,
}

impl CallGraph {
    /// Creates an empty call graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.node_order.len()
    }

    /// Number of edges currently in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if `f` has a node in the graph.
    pub fn contains_node(&self, f: FunctionId) -> bool {
        self.nodes.contains_key(&f)
    }

    /// Adds a node for `f` if absent. Returns `true` if the node was new.
    pub fn ensure_node(&mut self, f: FunctionId) -> bool {
        if self.nodes.contains_key(&f) {
            return false;
        }
        self.nodes.insert(f, Node::default());
        self.node_order.push(f);
        true
    }

    /// Adds the edge `(caller, site, callee)` if absent, creating both
    /// endpoint nodes as needed. Returns the edge id and whether it was new.
    pub fn add_edge(
        &mut self,
        caller: FunctionId,
        callee: FunctionId,
        site: CallSiteId,
        dispatch: Dispatch,
    ) -> (EdgeId, bool) {
        if let Some(&id) = self.edge_index.get(&(site, callee)) {
            return (id, false);
        }
        self.ensure_node(caller);
        self.ensure_node(callee);
        let id = EdgeId::new(self.edges.len() as u32);
        self.edges.push(Edge {
            caller,
            callee,
            site,
            dispatch,
            back: false,
        });
        self.edge_index.insert((site, callee), id);
        self.nodes
            .get_mut(&caller)
            .expect("caller node just ensured")
            .outgoing
            .push(id);
        self.nodes
            .get_mut(&callee)
            .expect("callee node just ensured")
            .incoming
            .push(id);
        (id, true)
    }

    /// Looks up the edge created by `site` calling `callee`, if any.
    pub fn edge_id(&self, site: CallSiteId, callee: FunctionId) -> Option<EdgeId> {
        self.edge_index.get(&(site, callee)).copied()
    }

    /// Returns the edge data for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Mutable access to the edge data for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.index()]
    }

    /// Returns the node for `f`, if present.
    pub fn node(&self, f: FunctionId) -> Option<&Node> {
        self.nodes.get(&f)
    }

    /// All node ids in insertion order.
    pub fn nodes(&self) -> &[FunctionId] {
        &self.node_order
    }

    /// All edges with their ids, in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i as u32), e))
    }

    /// Incoming edge ids of `f` (empty if `f` has no node).
    pub fn incoming(&self, f: FunctionId) -> &[EdgeId] {
        self.nodes.get(&f).map_or(&[], |n| n.incoming.as_slice())
    }

    /// Outgoing edge ids of `f` (empty if `f` has no node).
    pub fn outgoing(&self, f: FunctionId) -> &[EdgeId] {
        self.nodes.get(&f).map_or(&[], |n| n.outgoing.as_slice())
    }

    /// Clears every `back` flag; used before re-running back-edge analysis.
    pub fn clear_back_flags(&mut self) {
        for e in &mut self.edges {
            e.back = false;
        }
    }

    /// Number of edges currently flagged as back edges.
    pub fn back_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.back).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = CallGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.contains_node(f(0)));
        assert!(g.incoming(f(0)).is_empty());
        assert!(g.outgoing(f(0)).is_empty());
    }

    #[test]
    fn ensure_node_is_idempotent() {
        let mut g = CallGraph::new();
        assert!(g.ensure_node(f(1)));
        assert!(!g.ensure_node(f(1)));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.nodes(), &[f(1)]);
    }

    #[test]
    fn add_edge_creates_endpoints() {
        let mut g = CallGraph::new();
        let (id, new) = g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        assert!(new);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let e = g.edge(id);
        assert_eq!(e.caller, f(0));
        assert_eq!(e.callee, f(1));
        assert_eq!(e.site, s(0));
        assert!(!e.back);
    }

    #[test]
    fn add_edge_is_idempotent_per_site_and_callee() {
        let mut g = CallGraph::new();
        let (a, new_a) = g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        let (b, new_b) = g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        assert!(new_a);
        assert!(!new_b);
        assert_eq!(a, b);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn indirect_site_can_have_multiple_targets() {
        let mut g = CallGraph::new();
        let (a, _) = g.add_edge(f(0), f(1), s(0), Dispatch::Indirect);
        let (b, _) = g.add_edge(f(0), f(2), s(0), Dispatch::Indirect);
        assert_ne!(a, b);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.outgoing(f(0)).len(), 2);
        assert_eq!(g.edge_id(s(0), f(1)), Some(a));
        assert_eq!(g.edge_id(s(0), f(2)), Some(b));
    }

    #[test]
    fn incoming_and_outgoing_track_insertion_order() {
        let mut g = CallGraph::new();
        let (a, _) = g.add_edge(f(0), f(2), s(0), Dispatch::Direct);
        let (b, _) = g.add_edge(f(1), f(2), s(1), Dispatch::Direct);
        assert_eq!(g.incoming(f(2)), &[a, b]);
        assert_eq!(g.outgoing(f(0)), &[a]);
        assert_eq!(g.outgoing(f(1)), &[b]);
    }

    #[test]
    fn self_loop_is_representable() {
        let mut g = CallGraph::new();
        let (id, _) = g.add_edge(f(0), f(0), s(0), Dispatch::Direct);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.incoming(f(0)), &[id]);
        assert_eq!(g.outgoing(f(0)), &[id]);
    }

    #[test]
    fn clear_back_flags_resets_all_edges() {
        let mut g = CallGraph::new();
        let (id, _) = g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.edge_mut(id).back = true;
        assert_eq!(g.back_edge_count(), 1);
        g.clear_back_flags();
        assert_eq!(g.back_edge_count(), 0);
    }

    #[test]
    fn dispatch_dynamic_classification() {
        assert!(Dispatch::Indirect.is_dynamic());
        assert!(Dispatch::Plt.is_dynamic());
        assert!(!Dispatch::Direct.is_dynamic());
        assert!(!Dispatch::Spawn.is_dynamic());
    }
}
