//! `numCC` computation and edge-encoding assignment.
//!
//! This is the Ball–Larus numbering adapted to call graphs that both PCCE and
//! DACCE use (§2.1 of the paper): in topological order, the number of calling
//! contexts of a node is the sum of its callers' context counts over the
//! *encoded* (non-back) incoming edges; each incoming edge `e = <p, n, l>` is
//! assigned the prefix sum `En(e)` of the preceding callers' `numCC` values,
//! so that every acyclic root-to-node path receives a unique id in
//! `[0, numCC(n))`.
//!
//! Two DACCE-specific twists:
//!
//! * **frequency ordering** (§4): incoming edges are sorted hottest-first
//!   before prefix sums are taken, so the most frequently invoked edge gets
//!   `En(e) = 0` and needs no instrumentation at all;
//! * **sub-path heads**: a node whose only incoming edges are back edges or
//!   that has no incoming edges at all still gets `numCC = 1`, because it can
//!   head an acyclic sub-path after an unencoded or recursive call.
//!
//! `numCC` is computed in `u128` so that the astronomically large context
//! counts of the PCCE baseline (Table 1 reports `overflow` for
//! `400.perlbench` and `403.gcc`) can be detected rather than silently wrap.

use std::collections::HashMap;

use crate::analysis::topological_order;
use crate::graph::CallGraph;
use crate::ids::{EdgeId, FunctionId};

/// The encoding budget: `2*maxID + 1` must fit the 64-bit context identifier
/// used by the runtime (§6.3: "we use a 64bit context identifier").
pub const MAX_ENCODABLE_ID: u128 = (u64::MAX as u128 - 1) / 2;

/// Options controlling [`encode_graph`].
#[derive(Clone, Debug, Default)]
pub struct EncodeOptions {
    /// Observed invocation heat per edge. Incoming edges of every node are
    /// ordered by descending heat (ties broken by insertion order) before
    /// encodings are assigned; the hottest edge is encoded `0`.
    ///
    /// An empty map reproduces the static, frequency-oblivious encoding of
    /// the background §2.1 example.
    pub heat: HashMap<EdgeId, u64>,
}

impl EncodeOptions {
    /// Options that order edges by the given heat map.
    pub fn with_heat(heat: HashMap<EdgeId, u64>) -> Self {
        Self { heat }
    }
}

/// The result of encoding a call graph.
#[derive(Clone, Debug, Default)]
pub struct Encoding {
    /// Maximum context id over all nodes: `max_n numCC(n) - 1`, saturated to
    /// [`MAX_ENCODABLE_ID`] when the graph overflows.
    pub max_id: u64,
    /// True when some node's context count exceeds the 64-bit budget. An
    /// overflowed encoding cannot drive a runtime; PCCE responds by pruning
    /// never-invoked edges (§6.3), DACCE graphs never get close.
    pub overflow: bool,
    /// Exact context counts per node (unsaturated, 128-bit).
    pub num_cc: HashMap<FunctionId, u128>,
    /// Edge encodings `En(e)` for every non-back edge.
    pub edge_encoding: HashMap<EdgeId, u128>,
}

impl Encoding {
    /// The exact maximum context count over all nodes.
    pub fn max_num_cc(&self) -> u128 {
        self.num_cc.values().copied().max().unwrap_or(1)
    }

    /// `En(e)` for a non-back edge, if assigned and within the 64-bit budget.
    pub fn encoding_u64(&self, e: EdgeId) -> Option<u64> {
        self.edge_encoding
            .get(&e)
            .and_then(|&v| u64::try_from(v).ok())
    }
}

/// Encodes the non-back subgraph of `graph`.
///
/// `roots` are the program entry functions (`main` plus thread entries); they
/// only matter for determinism of the topological layout — every node present
/// in the graph is encoded.
///
/// Back edges must already be classified (see
/// [`crate::analysis::classify_back_edges`]); they receive no encoding.
///
/// # Panics
///
/// Panics if the non-back subgraph contains a cycle.
pub fn encode_graph(graph: &CallGraph, _roots: &[FunctionId], opts: &EncodeOptions) -> Encoding {
    let order = topological_order(graph);
    let mut enc = Encoding::default();

    for &node in &order {
        // Collect incoming non-back edges, hottest first.
        let mut inc: Vec<EdgeId> = graph
            .incoming(node)
            .iter()
            .copied()
            .filter(|&e| !graph.edge(e).back)
            .collect();
        inc.sort_by_key(|e| {
            let heat = opts.heat.get(e).copied().unwrap_or(0);
            (std::cmp::Reverse(heat), e.index())
        });

        let mut total: u128 = 0;
        for &eid in &inc {
            let caller = graph.edge(eid).caller;
            let caller_cc = enc.num_cc.get(&caller).copied().unwrap_or(1);
            enc.edge_encoding.insert(eid, total);
            total = total.saturating_add(caller_cc);
        }
        let num_cc = if total == 0 { 1 } else { total };
        enc.num_cc.insert(node, num_cc);
    }

    let max_cc = enc.max_num_cc();
    enc.overflow = max_cc - 1 > MAX_ENCODABLE_ID;
    enc.max_id = u64::try_from((max_cc - 1).min(MAX_ENCODABLE_ID)).expect("clamped to budget");
    enc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::classify_back_edges;
    use crate::graph::Dispatch;
    use crate::ids::CallSiteId;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    /// Builds a graph from `(caller, callee)` pairs with sequential sites.
    fn build(pairs: &[(u32, u32)]) -> (CallGraph, Vec<EdgeId>) {
        let mut g = CallGraph::new();
        let mut ids = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let (id, _) = g.add_edge(f(a), f(b), CallSiteId::new(i as u32), Dispatch::Direct);
            ids.push(id);
        }
        (g, ids)
    }

    /// The Figure 1 example: A calls B and C; B and C call D; D calls E and F.
    /// Only edge CD (or BD, depending on order) needs instrumentation, and the
    /// maximum context id is 1.
    #[test]
    fn fig1_example_only_one_edge_instrumented() {
        let (mut g, e) = build(&[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert_eq!(enc.num_cc[&f(0)], 1);
        assert_eq!(enc.num_cc[&f(1)], 1);
        assert_eq!(enc.num_cc[&f(2)], 1);
        assert_eq!(enc.num_cc[&f(3)], 2);
        assert_eq!(enc.num_cc[&f(4)], 2);
        assert_eq!(enc.num_cc[&f(5)], 2);
        assert_eq!(enc.max_id, 1);
        assert!(!enc.overflow);
        // BD (insertion order first) gets 0; CD gets +1. DE/DF are sole
        // incoming edges of E/F, so they are encoded 0 too.
        assert_eq!(enc.edge_encoding[&e[2]], 0);
        assert_eq!(enc.edge_encoding[&e[3]], 1);
        assert_eq!(enc.edge_encoding[&e[4]], 0);
        assert_eq!(enc.edge_encoding[&e[5]], 0);
        let instrumented = enc.edge_encoding.values().filter(|&&v| v != 0).count();
        assert_eq!(instrumented, 1, "exactly one edge needs instrumentation");
    }

    /// Heat ordering flips which of the two D-incoming edges is free.
    #[test]
    fn heat_ordering_gives_hottest_edge_encoding_zero() {
        let (mut g, e) = build(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        classify_back_edges(&mut g, &[f(0)]);
        let mut heat = HashMap::new();
        heat.insert(e[3], 1_000u64); // CD is hot
        heat.insert(e[2], 10u64); // BD is cold
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::with_heat(heat));
        assert_eq!(enc.edge_encoding[&e[3]], 0, "hot edge free");
        assert_eq!(enc.edge_encoding[&e[2]], 1, "cold edge instrumented");
    }

    #[test]
    fn back_edges_receive_no_encoding() {
        let (mut g, e) = build(&[(0, 1), (1, 2), (2, 1)]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert!(!enc.edge_encoding.contains_key(&e[2]));
        // Node 1 keeps numCC from its single encoded incoming edge.
        assert_eq!(enc.num_cc[&f(1)], 1);
        assert_eq!(enc.num_cc[&f(2)], 1);
        assert_eq!(enc.max_id, 0);
    }

    #[test]
    fn orphan_sub_path_head_gets_one_context() {
        // Node 5 is only reachable through a back edge (cycle with 4), so all
        // its incoming edges are back edges after classification from root 0.
        let (mut g, _) = build(&[(0, 1), (4, 5), (5, 4)]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert_eq!(enc.num_cc[&f(4)], 1);
        assert_eq!(enc.num_cc[&f(5)], 1);
    }

    #[test]
    fn diamond_of_diamonds_multiplies_contexts() {
        // Two diamonds in sequence: contexts multiply (2 * 2 = 4).
        let (mut g, _) = build(&[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert_eq!(enc.num_cc[&f(3)], 2);
        assert_eq!(enc.num_cc[&f(6)], 4);
        assert_eq!(enc.max_id, 3);
    }

    #[test]
    fn unique_path_ids_on_acyclic_graph() {
        // Enumerate all root-to-node paths of a small DAG and check that the
        // accumulated encodings are unique per node — the core Ball-Larus
        // invariant.
        let (mut g, _) = build(&[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (1, 4),
            (3, 4),
            (2, 4),
            (4, 5),
            (3, 5),
        ]);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());

        // DFS path enumeration accumulating encodings.
        let mut seen: HashMap<FunctionId, Vec<u128>> = HashMap::new();
        fn walk(
            g: &CallGraph,
            enc: &Encoding,
            node: FunctionId,
            id: u128,
            seen: &mut HashMap<FunctionId, Vec<u128>>,
        ) {
            let ids = seen.entry(node).or_default();
            assert!(!ids.contains(&id), "duplicate id {id} for node {node:?}");
            ids.push(id);
            for &eid in g.outgoing(node) {
                let e = g.edge(eid);
                if e.back {
                    continue;
                }
                walk(g, enc, e.callee, id + enc.edge_encoding[&eid], seen);
            }
        }
        walk(&g, &enc, f(0), 0, &mut seen);

        // Every node's ids must also be dense in [0, numCC).
        for (node, ids) in &seen {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            let expect: Vec<u128> = (0..enc.num_cc[node]).collect();
            assert_eq!(sorted, expect, "ids of {node:?} not dense");
        }
    }

    #[test]
    fn overflow_detection_on_exponential_graph() {
        // A ladder of diamonds doubles numCC per stage; 130 stages overflow
        // any 64-bit budget.
        let mut g = CallGraph::new();
        let mut site = 0u32;
        let mut add = |g: &mut CallGraph, a: u32, b: u32| {
            g.add_edge(f(a), f(b), CallSiteId::new(site), Dispatch::Direct);
            site += 1;
        };
        for stage in 0..130u32 {
            let base = stage * 3;
            add(&mut g, base, base + 1);
            add(&mut g, base, base + 2);
            add(&mut g, base + 1, base + 3);
            add(&mut g, base + 2, base + 3);
        }
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert!(enc.overflow);
        assert_eq!(u128::from(enc.max_id), MAX_ENCODABLE_ID);
    }

    #[test]
    fn encoding_u64_rejects_oversized_values() {
        let mut enc = Encoding::default();
        enc.edge_encoding
            .insert(EdgeId::new(0), u128::from(u64::MAX) + 1);
        enc.edge_encoding.insert(EdgeId::new(1), 17);
        assert_eq!(enc.encoding_u64(EdgeId::new(0)), None);
        assert_eq!(enc.encoding_u64(EdgeId::new(1)), Some(17));
        assert_eq!(enc.encoding_u64(EdgeId::new(2)), None);
    }

    #[test]
    fn empty_graph_encodes_trivially() {
        let g = CallGraph::new();
        let enc = encode_graph(&g, &[], &EncodeOptions::default());
        assert_eq!(enc.max_id, 0);
        assert!(!enc.overflow);
        assert!(enc.num_cc.is_empty());
    }
}
