//! Property tests of the Ball–Larus numbering on random graphs: `numCC`
//! equals the acyclic path count, and accumulated edge encodings are unique
//! and dense per node — checked against the independent enumerator in
//! `dacce_callgraph::paths`.

use std::collections::HashMap;

use proptest::prelude::*;

use dacce_callgraph::analysis::classify_back_edges;
use dacce_callgraph::encode::{encode_graph, EncodeOptions};
use dacce_callgraph::paths::{count_paths, enumerate_paths, path_id};
use dacce_callgraph::{CallGraph, CallSiteId, Dispatch, FunctionId};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}

/// Random edge lists over up to 8 nodes (cycles allowed — classification
/// breaks them).
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..8, 0u32..8), 1..20)
}

fn build(pairs: &[(u32, u32)]) -> CallGraph {
    let mut g = CallGraph::new();
    g.ensure_node(f(0));
    for (i, &(a, b)) in pairs.iter().enumerate() {
        g.add_edge(f(a), f(b), CallSiteId::new(i as u32), Dispatch::Direct);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn numcc_matches_independent_path_count(
        pairs in edges_strategy(),
        heat in prop::collection::vec(0u64..1000, 20),
    ) {
        let mut g = build(&pairs);
        classify_back_edges(&mut g, &[f(0)]);
        let heat_map: HashMap<_, _> = g
            .edges()
            .map(|(eid, _)| (eid, heat[eid.index() % heat.len()]))
            .collect();
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::with_heat(heat_map));
        // Count paths from every source of the non-back subgraph: nodes
        // with no incoming non-back edges act as roots (numCC = 1 base).
        let sources: Vec<FunctionId> = g
            .nodes()
            .iter()
            .copied()
            .filter(|&n| g.incoming(n).iter().all(|&e| g.edge(e).back))
            .collect();
        let counts = count_paths(&g, &sources, 24);
        for &node in g.nodes() {
            let expect = counts.get(&node).copied().unwrap_or(0).max(1);
            prop_assert_eq!(
                enc.num_cc[&node], expect,
                "numCC mismatch at {} (graph {:?})", node, pairs
            );
        }
    }

    #[test]
    fn path_ids_unique_and_dense_from_each_source(pairs in edges_strategy()) {
        let mut g = build(&pairs);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let sources: Vec<FunctionId> = g
            .nodes()
            .iter()
            .copied()
            .filter(|&n| g.incoming(n).iter().all(|&e| g.edge(e).back))
            .collect();
        let mut ids: HashMap<FunctionId, Vec<u128>> = HashMap::new();
        for &s in &sources {
            enumerate_paths(&g, s, 24, &mut |node, path| {
                let id = path_id(&g, &enc, path).expect("encoded edges only");
                ids.entry(node).or_default().push(id);
            });
        }
        for (node, mut v) in ids {
            v.sort_unstable();
            let expect: Vec<u128> = (0..enc.num_cc[&node]).collect();
            prop_assert_eq!(v, expect, "ids of {} not dense (graph {:?})", node, pairs);
        }
    }
}
