//! Property tests for the continuous profiler's [`Sampler`]: the
//! differential profile tests in the workloads crate rely on it being a
//! pure function of `(stride, seed, budget)` and the tick sequence, with
//! bounded jittered gaps and a bounded backoff. These properties pin
//! that contract independently of any engine.

use dacce_obs::Sampler;
use proptest::prelude::*;

/// Max backoff shift the rate controller may apply (mirrors the
/// implementation constant; a sampler must never back off further).
const MAX_BACKOFF_SHIFT: u32 = 10;

/// Ticks a fresh sampler `n` times and records `(tick_index, weight)` of
/// every fire.
fn fires(stride: u64, seed: u64, budget: u64, n: u64) -> Vec<(u64, u64)> {
    let mut s = Sampler::new(stride, seed, budget);
    (0..n).filter_map(|i| s.tick().map(|w| (i, w))).collect()
}

proptest! {
    /// Same parameters, same tick count → byte-identical fire schedule.
    #[test]
    fn deterministic_in_parameters(
        stride in 1u64..2000,
        seed in 0u64..1_000_000_007,
        budget in 0u64..128,
        n in 1u64..20_000,
    ) {
        prop_assert_eq!(
            fires(stride, seed, budget, n),
            fires(stride, seed, budget, n)
        );
    }

    /// A clone mid-stream continues exactly like the original.
    #[test]
    fn clone_preserves_schedule(
        stride in 1u64..500,
        seed in 0u64..1_000_000_007,
        split in 0u64..5_000,
    ) {
        let mut a = Sampler::new(stride, seed, 0);
        for _ in 0..split {
            let _ = a.tick();
        }
        let mut b = a.clone();
        let rest_a: Vec<Option<u64>> = (0..2_000).map(|_| a.tick()).collect();
        let rest_b: Vec<Option<u64>> = (0..2_000).map(|_| b.tick()).collect();
        prop_assert_eq!(rest_a, rest_b);
    }

    /// With the controller inert (budget 0), every reported weight stays
    /// inside the jitter window around the configured stride, and the
    /// weights account for almost all ticks (all but the gap in flight).
    #[test]
    fn unbudgeted_gaps_are_bounded_and_conservative(
        stride in 1u64..2000,
        seed in 0u64..1_000_000_007,
        n in 1u64..50_000,
    ) {
        let span = (stride / 2).max(1);
        let fired = fires(stride, seed, 0, n);
        let mut total = 0u64;
        for &(_, w) in &fired {
            prop_assert!(w >= 1);
            prop_assert!(
                w >= stride.saturating_sub(span / 2).max(1) && w <= stride + span,
                "weight {w} outside jitter window of stride {stride}"
            );
            total += w;
        }
        prop_assert!(total <= n, "weights {total} overcount {n} ticks");
        prop_assert!(
            n - total <= stride + span,
            "undercount exceeds one armed gap: {n} ticks, weight {total}"
        );
    }

    /// `skip(n)` with `n < remaining()` is indistinguishable from `n`
    /// non-firing ticks — the hoisted batch path and the per-op path
    /// produce the same schedule, weights and tick accounting.
    #[test]
    fn skip_matches_nonfiring_ticks(
        stride in 2u64..2000,
        seed in 0u64..1_000_000_007,
        warm in 0u64..5_000,
    ) {
        let mut a = Sampler::new(stride, seed, 8);
        for _ in 0..warm {
            let _ = a.tick();
        }
        let mut b = a.clone();
        let n = a.remaining() - 1;
        a.skip(n);
        for _ in 0..n {
            prop_assert!(b.tick().is_none());
        }
        prop_assert_eq!(a.seen(), b.seen());
        prop_assert_eq!(a.remaining(), b.remaining());
        let rest_a: Vec<Option<u64>> = (0..5_000).map(|_| a.tick()).collect();
        let rest_b: Vec<Option<u64>> = (0..5_000).map(|_| b.tick()).collect();
        prop_assert_eq!(rest_a, rest_b);
    }

    /// Stride 0 disables the sampler outright.
    #[test]
    fn stride_zero_never_fires(seed in 0u64..1_000_000_007, n in 0u64..10_000) {
        let mut s = Sampler::new(0, seed, 16);
        prop_assert!(!s.is_enabled());
        for _ in 0..n {
            prop_assert!(s.tick().is_none());
        }
        prop_assert_eq!(s.taken(), 0);
    }

    /// The budget controller may stretch the effective stride but never
    /// below the base stride nor past the hard backoff cap, and weights
    /// still never overcount ticks.
    #[test]
    fn budgeted_backoff_stays_bounded(
        stride in 1u64..200,
        seed in 0u64..1_000_000_007,
        budget in 1u64..8,
        n in 1u64..50_000,
    ) {
        let mut s = Sampler::new(stride, seed, budget);
        let mut total = 0u64;
        for _ in 0..n {
            if let Some(w) = s.tick() {
                total += w;
            }
            prop_assert!(s.effective_stride() >= stride);
            prop_assert!(s.effective_stride() <= stride << MAX_BACKOFF_SHIFT);
        }
        prop_assert!(total <= n);
        prop_assert_eq!(s.seen(), n);
    }
}
