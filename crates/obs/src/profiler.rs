//! Continuous-profiling primitives: the deterministic sampler, the
//! re-encode span timeline, and collapsed-stack flame graphs.
//!
//! The paper's point is that encoded contexts make context capture cheap
//! enough for *always-on* sampled profiling. This module holds the parts
//! of that story that are pure data — no engine types, no clocks:
//!
//! - [`Sampler`]: a per-thread, event-count-driven sampler. A configured
//!   stride is jittered with a seeded xorshift so samples do not phase-lock
//!   with loop bodies, and a budget-bounded controller backs the effective
//!   stride off when a window produces more samples than its budget.
//!   Everything is deterministic in `(stride, seed, budget)` and the tick
//!   sequence — no wall clock, no global state — which is what makes the
//!   differential profile tests possible.
//! - [`SpanTimeline`]: stitches `ReencodeBegin`/`ReencodeEnd` journal
//!   events into spans with phase attribution and a pause histogram — the
//!   metric the concurrent incremental re-encoding item is gated on.
//! - [`FlameGraph`]: weighted collapsed stacks in the common
//!   `a;b;c weight` text format plus a JSON rendering, with merge keyed
//!   by content-addressed lineage hash so shared-lineage tenants
//!   aggregate under one key.

use std::collections::BTreeMap;

use crate::event::{EventKind, EventRecord};
use crate::metrics::{Histogram, HistogramSnapshot};

/// Number of base strides per adaptation window of the rate controller.
const WINDOW_STRIDES: u64 = 16;

/// Hard cap on how far the controller may back off: the effective stride
/// never exceeds `base_stride << MAX_BACKOFF_SHIFT`.
const MAX_BACKOFF_SHIFT: u32 = 10;

/// A deterministic, budget-bounded event-count sampler.
///
/// One instance lives per thread. Every encoding event (a call, in this
/// runtime) ticks the sampler; when the jittered countdown reaches zero
/// the tick fires and returns the number of events the sample stands for
/// (its weight). A stride of 0 disables the sampler entirely: ticks cost
/// one branch and never fire.
///
/// # Example
///
/// ```
/// use dacce_obs::profiler::Sampler;
///
/// let mut s = Sampler::new(50, 7, 64);
/// let fired: u32 = (0..1000).filter(|_| s.tick().is_some()).count() as u32;
/// assert!(fired >= 10 && fired <= 30, "~1000/50 samples, got {fired}");
/// assert!(Sampler::new(0, 7, 64).tick().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Sampler {
    /// Configured base stride; 0 disables the sampler.
    stride: u64,
    /// Current backed-off stride (≥ `stride`).
    effective: u64,
    /// xorshift64 state; never zero.
    rng: u64,
    /// Events until the next fire.
    countdown: u64,
    /// Gap length the running countdown was drawn with (the weight the
    /// next fire reports).
    gap: u64,
    /// Events ticked in the current adaptation window.
    window_events: u64,
    /// Samples fired in the current adaptation window.
    window_samples: u64,
    /// Max samples per window before the controller backs off; 0 means
    /// unbounded (the controller is inert).
    budget: u64,
    /// Total samples fired.
    taken: u64,
    /// Events ticked up to the last fire; the in-flight remainder is
    /// `gap - countdown` (see [`Sampler::seen`]). Keeping this fire-side
    /// leaves the per-tick hot path a single decrement and branch.
    seen: u64,
}

impl Sampler {
    /// Creates a sampler with the given base `stride` (0 = disabled),
    /// jitter `seed`, and per-window sample `budget` (0 = unbounded).
    #[must_use]
    pub fn new(stride: u64, seed: u64, budget: u64) -> Sampler {
        let mut s = Sampler {
            stride,
            effective: stride.max(1),
            rng: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            countdown: 0,
            gap: 0,
            window_events: 0,
            window_samples: 0,
            budget,
            taken: 0,
            seen: 0,
        };
        if stride > 0 {
            s.rearm();
        }
        s
    }

    /// Whether the sampler can ever fire.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.stride > 0
    }

    /// The configured base stride.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The current backed-off stride (equals the base stride until the
    /// budget controller intervenes).
    #[must_use]
    pub fn effective_stride(&self) -> u64 {
        self.effective
    }

    /// Total samples fired so far.
    #[must_use]
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Total events ticked so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen + (self.gap - self.countdown)
    }

    /// Events left until the next fire (0 when disabled).
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.countdown
    }

    /// Advances the sampler past `n` events at once without firing —
    /// batch drivers hoist the per-event tick when a whole batch fits
    /// inside the current gap. Callers must ensure `n < remaining()`;
    /// larger skips are clamped to stop one event short of the fire (a
    /// `debug_assert` catches the misuse), which would desynchronise the
    /// schedule from an equivalent tick sequence.
    pub fn skip(&mut self, n: u64) {
        if self.stride == 0 || n == 0 {
            return;
        }
        debug_assert!(n < self.countdown, "skip({n}) reaches a fire");
        self.countdown -= n.min(self.countdown.saturating_sub(1));
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Draws the next jittered gap and arms the countdown with it.
    fn rearm(&mut self) {
        let span = (self.effective / 2).max(1);
        let offset = self.next_rng() % span;
        self.gap = (self.effective - span / 2 + offset).max(1);
        self.countdown = self.gap;
    }

    /// Rolls the adaptation window if due: over budget doubles the
    /// effective stride (bounded), under half budget halves it back
    /// toward the configured stride.
    fn maybe_adapt(&mut self) {
        if self.window_events < WINDOW_STRIDES * self.stride {
            return;
        }
        if self.budget > 0 {
            if self.window_samples > self.budget {
                let cap = self.stride << MAX_BACKOFF_SHIFT;
                self.effective = (self.effective * 2).min(cap.max(self.stride));
            } else if self.window_samples * 2 <= self.budget && self.effective > self.stride {
                self.effective = (self.effective / 2).max(self.stride);
            }
        }
        self.window_events = 0;
        self.window_samples = 0;
    }

    /// Advances the sampler by one event. Returns the sample weight (the
    /// gap this fire closes, in events) when the sample fires.
    ///
    /// The non-firing path — all but ~1/stride of calls — is one branch,
    /// one decrement and one branch; all bookkeeping lives on the fire
    /// path, reconstructed from the consumed gap.
    #[inline]
    pub fn tick(&mut self) -> Option<u64> {
        if self.stride == 0 {
            return None;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return None;
        }
        Some(self.fire())
    }

    /// The sample just fired: settle the gap's worth of tick bookkeeping,
    /// adapt if a window closed, and re-arm.
    #[cold]
    fn fire(&mut self) -> u64 {
        let weight = self.gap;
        self.seen += weight;
        self.window_events += weight;
        self.taken += 1;
        self.window_samples += 1;
        self.maybe_adapt();
        self.rearm();
        weight
    }
}

/// FNV-1a over a stream of `u64` values, folded to 32 bits — the ccStack
/// fingerprint stamped on `Sample` events. Stable across runs and
/// platforms; collisions only cost correlation precision, never
/// correctness.
#[must_use]
pub fn fingerprint64(values: impl IntoIterator<Item = u64>) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    #[allow(clippy::cast_possible_truncation)]
    {
        (h ^ (h >> 32)) as u32
    }
}

/// One stitched re-encode span: a `ReencodeBegin` matched with the next
/// `ReencodeEnd` on the same thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReencodeSpan {
    /// Thread that ran the re-encode.
    pub tid: u32,
    /// Generation being superseded (from the begin event).
    pub from_generation: u32,
    /// Generation in force after the attempt (from the end event).
    pub to_generation: u32,
    /// Whether the new encoding was published.
    pub applied: bool,
    /// Abstract cost charged for the attempt.
    pub cost: u64,
    /// Sequence numbers bounding the span.
    pub begin_seq: u64,
    /// End-event sequence number.
    pub end_seq: u64,
    /// Journal-epoch nanoseconds at begin.
    pub begin_nanos: u64,
    /// Journal-epoch nanoseconds at end.
    pub end_nanos: u64,
}

impl ReencodeSpan {
    /// Wall-clock pause the span represents (what threads blocked on the
    /// shared state during the re-encode experience).
    #[must_use]
    pub fn pause_ns(&self) -> u64 {
        self.end_nanos.saturating_sub(self.begin_nanos)
    }

    /// Phase attribution: what the attempt amounted to.
    #[must_use]
    pub fn phase(&self) -> &'static str {
        if self.applied {
            "applied"
        } else {
            "aborted"
        }
    }
}

/// Re-encode spans stitched out of a journal stream, plus the begin/end
/// events that could not be paired (lost halves from ring overwrites).
#[derive(Clone, Debug, Default)]
pub struct SpanTimeline {
    /// Stitched spans, ascending by begin sequence number.
    pub spans: Vec<ReencodeSpan>,
    /// `ReencodeBegin` events whose end was never seen.
    pub unmatched_begins: u64,
    /// `ReencodeEnd` events whose begin was never seen.
    pub unmatched_ends: u64,
}

impl SpanTimeline {
    /// Stitches begin/end events from a seq-ordered stream into spans.
    /// Pairing is per-thread: a begin matches the next end on the same
    /// tid. Re-encodes never nest in this runtime, so an unmatched begin
    /// followed by another begin on the same thread means the first end
    /// was dropped — the stale begin is discarded and counted.
    #[must_use]
    pub fn stitch(events: &[EventRecord]) -> SpanTimeline {
        let mut open: BTreeMap<u32, (u32, u64, u64)> = BTreeMap::new();
        let mut timeline = SpanTimeline::default();
        for ev in events {
            match ev.kind {
                EventKind::ReencodeBegin { generation }
                    if open
                        .insert(ev.tid, (generation, ev.seq, ev.nanos))
                        .is_some() =>
                {
                    timeline.unmatched_begins += 1;
                }
                EventKind::ReencodeEnd {
                    generation,
                    applied,
                    cost,
                    ..
                } => match open.remove(&ev.tid) {
                    Some((from_generation, begin_seq, begin_nanos)) => {
                        timeline.spans.push(ReencodeSpan {
                            tid: ev.tid,
                            from_generation,
                            to_generation: generation,
                            applied,
                            cost,
                            begin_seq,
                            end_seq: ev.seq,
                            begin_nanos,
                            end_nanos: ev.nanos,
                        });
                    }
                    None => timeline.unmatched_ends += 1,
                },
                _ => {}
            }
        }
        timeline.unmatched_begins += open.len() as u64;
        timeline.spans.sort_unstable_by_key(|s| s.begin_seq);
        timeline
    }

    /// Log₂ histogram of span pauses in nanoseconds.
    #[must_use]
    pub fn pause_histogram(&self) -> HistogramSnapshot {
        let h = Histogram::default();
        for span in &self.spans {
            h.observe(span.pause_ns());
        }
        h.snapshot()
    }

    /// `(applied, aborted)` span counts.
    #[must_use]
    pub fn phase_counts(&self) -> (u64, u64) {
        let applied = self.spans.iter().filter(|s| s.applied).count() as u64;
        (applied, self.spans.len() as u64 - applied)
    }

    /// The last `n` spans (most recent by begin seq), oldest first.
    #[must_use]
    pub fn last(&self, n: usize) -> &[ReencodeSpan] {
        let start = self.spans.len().saturating_sub(n);
        &self.spans[start..]
    }
}

/// Collapsed-stack flame graph: weighted stacks keyed `root;…;leaf`,
/// tagged with the content-addressed lineage hash of the encoding that
/// produced them so fleet-wide merges aggregate shared-lineage tenants
/// under one key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlameGraph {
    /// Content hash of the encoding lineage the samples decode under
    /// (0 when unknown / not lineage-tracked).
    pub lineage: u64,
    folds: BTreeMap<String, u64>,
}

/// Header prefix of the collapsed-stack text format.
const FLAME_HEADER: &str = "# dacce-flame v1 lineage=";

impl FlameGraph {
    /// An empty graph tagged with `lineage`.
    #[must_use]
    pub fn new(lineage: u64) -> FlameGraph {
        FlameGraph {
            lineage,
            folds: BTreeMap::new(),
        }
    }

    /// Adds one stack (root first) with the given weight. Frame names are
    /// sanitised: `;`, whitespace and control characters become `_` so
    /// the collapsed text format stays parseable.
    pub fn add<S: AsRef<str>>(&mut self, frames: &[S], weight: u64) {
        if frames.is_empty() || weight == 0 {
            return;
        }
        let key = frames
            .iter()
            .map(|f| sanitise_frame(f.as_ref()))
            .collect::<Vec<_>>()
            .join(";");
        *self.folds.entry(key).or_insert(0) += weight;
    }

    /// Total weight across all stacks.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.folds.values().sum()
    }

    /// Number of distinct stacks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// True when no stack has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// The folded `(stack, weight)` rows, ascending by stack key.
    pub fn folds(&self) -> impl Iterator<Item = (&str, u64)> {
        self.folds.iter().map(|(k, &w)| (k.as_str(), w))
    }

    /// Merges another graph's stacks into this one. The lineage tag is
    /// kept when equal and zeroed when the graphs disagree (a mixed
    /// merge no longer content-addresses one encoding history).
    pub fn merge(&mut self, other: &FlameGraph) {
        if self.lineage != other.lineage {
            self.lineage = 0;
        }
        for (k, &w) in &other.folds {
            *self.folds.entry(k.clone()).or_insert(0) += w;
        }
    }

    /// Renders the graph in the collapsed-stack text format understood
    /// by standard flamegraph tooling, preceded by a lineage header:
    ///
    /// ```text
    /// # dacce-flame v1 lineage=00000000deadbeef
    /// main;parse 12
    /// main;run;step 40
    /// ```
    #[must_use]
    pub fn to_collapsed(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{FLAME_HEADER}{:016x}\n", self.lineage);
        for (stack, weight) in &self.folds {
            let _ = writeln!(out, "{stack} {weight}");
        }
        out
    }

    /// Renders the graph as a JSON object:
    /// `{"lineage":"…","total":N,"stacks":[{"stack":"a;b","weight":N}…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"lineage\":\"{:016x}\",\"total\":{},\"stacks\":[",
            self.lineage,
            self.total()
        );
        for (i, (stack, weight)) in self.folds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{{\"stack\":\"{stack}\",\"weight\":{weight}}}");
        }
        out.push_str("\n]}");
        out
    }

    /// Parses the collapsed-stack text produced by
    /// [`FlameGraph::to_collapsed`].
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<FlameGraph, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty flame file")?;
        let lineage_hex = header
            .strip_prefix(FLAME_HEADER)
            .ok_or_else(|| format!("missing `{FLAME_HEADER}` header, got: {header}"))?;
        let lineage = u64::from_str_radix(lineage_hex.trim(), 16)
            .map_err(|_| format!("bad lineage hex `{lineage_hex}`"))?;
        let mut graph = FlameGraph::new(lineage);
        for line in lines {
            if line.starts_with('#') {
                continue;
            }
            let (stack, weight) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed flame line: {line}"))?;
            let weight: u64 = weight
                .trim()
                .parse()
                .map_err(|_| format!("bad weight in flame line: {line}"))?;
            if stack.is_empty() {
                return Err(format!("empty stack in flame line: {line}"));
            }
            *graph.folds.entry(stack.to_string()).or_insert(0) += weight;
        }
        Ok(graph)
    }
}

fn sanitise_frame(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Fleet-wide merge: groups graphs by lineage hash and merges each
/// group, returning one graph per distinct lineage, ascending by hash.
/// Shared-lineage tenants therefore aggregate under one key.
#[must_use]
pub fn merge_by_lineage(graphs: impl IntoIterator<Item = FlameGraph>) -> Vec<FlameGraph> {
    let mut by_lineage: BTreeMap<u64, FlameGraph> = BTreeMap::new();
    for g in graphs {
        match by_lineage.get_mut(&g.lineage) {
            Some(acc) => acc.merge(&g),
            None => {
                by_lineage.insert(g.lineage, g);
            }
        }
    }
    by_lineage.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_in_its_parameters() {
        let mut a = Sampler::new(97, 42, 8);
        let mut b = Sampler::new(97, 42, 8);
        let fires_a: Vec<(u64, Option<u64>)> = (0..5000).map(|i| (i, a.tick())).collect();
        let fires_b: Vec<(u64, Option<u64>)> = (0..5000).map(|i| (i, b.tick())).collect();
        assert_eq!(fires_a, fires_b);
        assert!(a.taken() > 0);
        let mut c = Sampler::new(97, 43, 8);
        let fires_c: Vec<(u64, Option<u64>)> = (0..5000).map(|i| (i, c.tick())).collect();
        assert_ne!(fires_a, fires_c, "different seed, different jitter");
    }

    #[test]
    fn sampler_stride_zero_never_fires() {
        let mut s = Sampler::new(0, 123, 8);
        assert!(!s.is_enabled());
        for _ in 0..10_000 {
            assert!(s.tick().is_none());
        }
        assert_eq!(s.taken(), 0);
        assert_eq!(s.seen(), 0);
    }

    #[test]
    fn sampler_weights_cover_the_event_stream() {
        let mut s = Sampler::new(50, 9, 0);
        let mut weight_sum = 0;
        for _ in 0..10_000 {
            if let Some(w) = s.tick() {
                // Jitter stays within half a stride of the effective rate.
                assert!((25..=75).contains(&w), "gap {w} out of jitter bounds");
                weight_sum += w;
            }
        }
        // Total weight equals the events consumed by completed gaps.
        assert!(weight_sum <= s.seen());
        assert!(weight_sum + 75 >= s.seen());
    }

    #[test]
    fn sampler_budget_backs_off_and_recovers() {
        // Budget 1 sample per 16-stride window forces immediate backoff.
        let mut s = Sampler::new(10, 5, 1);
        for _ in 0..100_000 {
            s.tick();
        }
        assert!(
            s.effective_stride() > 10,
            "controller never backed off: {}",
            s.effective_stride()
        );
        assert!(s.effective_stride() <= 10 << MAX_BACKOFF_SHIFT);
        // An unbounded budget never adapts.
        let mut free = Sampler::new(10, 5, 0);
        for _ in 0..100_000 {
            free.tick();
        }
        assert_eq!(free.effective_stride(), 10);
    }

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        assert_eq!(fingerprint64([1, 2, 3]), fingerprint64([1, 2, 3]));
        assert_ne!(fingerprint64([1, 2, 3]), fingerprint64([3, 2, 1]));
        assert_ne!(fingerprint64([]), fingerprint64([0]));
    }

    fn ev(seq: u64, tid: u32, kind: EventKind) -> EventRecord {
        EventRecord {
            seq,
            nanos: seq * 100,
            tid,
            kind,
        }
    }

    #[test]
    fn timeline_stitches_interleaved_threads() {
        let events = vec![
            ev(1, 0, EventKind::ReencodeBegin { generation: 1 }),
            ev(2, 1, EventKind::ReencodeBegin { generation: 1 }),
            ev(
                3,
                1,
                EventKind::ReencodeEnd {
                    generation: 2,
                    applied: true,
                    cost: 10,
                    nodes: 4,
                    edges: 3,
                    max_id: 9,
                },
            ),
            ev(
                4,
                0,
                EventKind::ReencodeEnd {
                    generation: 1,
                    applied: false,
                    cost: 3,
                    nodes: 0,
                    edges: 0,
                    max_id: 0,
                },
            ),
        ];
        let tl = SpanTimeline::stitch(&events);
        assert_eq!(tl.spans.len(), 2);
        assert_eq!(tl.unmatched_begins, 0);
        assert_eq!(tl.unmatched_ends, 0);
        assert_eq!(tl.spans[0].tid, 0);
        assert_eq!(tl.spans[0].pause_ns(), 300);
        assert_eq!(tl.spans[0].phase(), "aborted");
        assert_eq!(tl.spans[1].tid, 1);
        assert_eq!(tl.spans[1].phase(), "applied");
        assert_eq!(tl.phase_counts(), (1, 1));
        assert_eq!(tl.pause_histogram().count, 2);
        assert_eq!(tl.last(1)[0].tid, 1);
    }

    #[test]
    fn timeline_counts_lost_halves() {
        let events = vec![
            ev(1, 0, EventKind::ReencodeBegin { generation: 1 }),
            ev(2, 0, EventKind::ReencodeBegin { generation: 2 }),
            ev(
                3,
                7,
                EventKind::ReencodeEnd {
                    generation: 9,
                    applied: true,
                    cost: 1,
                    nodes: 1,
                    edges: 1,
                    max_id: 1,
                },
            ),
        ];
        let tl = SpanTimeline::stitch(&events);
        assert!(tl.spans.is_empty());
        // First begin evicted by the second, second never closed.
        assert_eq!(tl.unmatched_begins, 2);
        assert_eq!(tl.unmatched_ends, 1);
    }

    #[test]
    fn flame_roundtrips_collapsed_text() {
        let mut g = FlameGraph::new(0xdead_beef);
        g.add(&["main", "run", "step"], 40);
        g.add(&["main", "parse"], 12);
        g.add(&["main", "parse"], 3);
        g.add(&["weird name", "semi;colon"], 1);
        let text = g.to_collapsed();
        let back = FlameGraph::parse(&text).expect("parse");
        assert_eq!(back, g);
        assert_eq!(back.total(), 56);
        assert_eq!(back.len(), 3);
        assert!(text.contains("weird_name;semi_colon 1"));
        assert!(g.to_json().contains("\"total\":56"));
        assert!(FlameGraph::parse("").is_err());
        assert!(FlameGraph::parse("no header\nmain 1").is_err());
    }

    #[test]
    fn lineage_merge_groups_shared_lineages() {
        let mut a = FlameGraph::new(1);
        a.add(&["m", "x"], 5);
        let mut b = FlameGraph::new(1);
        b.add(&["m", "x"], 7);
        b.add(&["m", "y"], 2);
        let mut c = FlameGraph::new(2);
        c.add(&["m"], 1);
        let merged = merge_by_lineage([a, b, c]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].lineage, 1);
        assert_eq!(merged[0].total(), 14);
        assert_eq!(
            merged[0].folds().find(|&(k, _)| k == "m;x").map(|f| f.1),
            Some(12)
        );
        assert_eq!(merged[1].lineage, 2);
        // Cross-lineage merge drops the content address.
        let mut mixed = merged[0].clone();
        mixed.merge(&merged[1]);
        assert_eq!(mixed.lineage, 0);
        assert_eq!(mixed.total(), 15);
    }
}
