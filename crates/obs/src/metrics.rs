//! Metrics registry: sharded counters, log₂-bucketed histograms, and the
//! per-generation dictionary table.
//!
//! Counters are striped across cache-line-padded shards (the same idea as
//! the engine's per-thread `StatsShard` drain, but wait-free and global);
//! each thread hashes to a shard via a thread-local index, so concurrent
//! increments rarely contend. Histograms bucket by `floor(log2(v)) + 1`,
//! which covers the full `u64` range in 65 buckets — good enough for
//! latencies, costs and depths that span orders of magnitude.

use dacce_sync::{AtomicU64, AtomicUsize, Mutex, Ordering};

const COUNTER_SHARDS: usize = 8;
/// Bucket `i` counts values whose `floor(log2(v)) + 1 == i`; bucket 0 is
/// exactly zero. Upper bound of bucket `i > 0` is `2^i - 1`.
const HISTOGRAM_BUCKETS: usize = 65;

#[repr(align(64))]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_INDEX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// A monotonically increasing counter striped across padded shards.
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Default for Counter {
    fn default() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    /// Adds `n` on this thread's shard.
    pub fn add(&self, n: u64) {
        let idx = SHARD_INDEX.with(|i| *i);
        self.shards[idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sums all shards.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A lock-free histogram with 65 log₂ buckets plus count/sum/max.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(n={})", self.count.load(Ordering::Relaxed))
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket counts, index as in [`HistogramSnapshot::bucket_upper_bound`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `i` (0, 1, 3, 7, 15, …).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Mean observed value, or 0 with no observations.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (0.0..=1.0) from bucket upper bounds.
    #[must_use]
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty `(upper_bound, count)` pairs, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
            .collect()
    }

    /// Folds another snapshot in: counts, sums and per-bucket tallies
    /// add; `max` takes the larger. Merging is exact because every
    /// snapshot uses the same log₂ bucket layout.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// An ASCII sketch of the distribution (one char per populated
    /// bucket, height scaled to the fullest bucket).
    #[must_use]
    pub fn sketch(&self) -> String {
        const LEVELS: &[u8] = b" .:-=+*#%@";
        let peak = self.buckets.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            return String::from("(empty)");
        }
        let lo = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let hi = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .unwrap_or(self.buckets.len() - 1);
        self.buckets[lo..=hi]
            .iter()
            .map(|&n| {
                #[allow(clippy::cast_possible_truncation)]
                let level = ((n * (LEVELS.len() as u64 - 1)).div_ceil(peak)) as usize;
                LEVELS[level] as char
            })
            .collect()
    }
}

/// One row of the per-generation dictionary table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenerationInfo {
    /// `gTimeStamp` of the encoding generation.
    pub generation: u32,
    /// Nodes in the encoded call graph.
    pub nodes: u32,
    /// Edges in the encoded call graph.
    pub edges: u32,
    /// Maximum context id of the generation's encoding.
    pub max_id: u64,
    /// Abstract cost charged to produce the generation (0 for the initial
    /// attach and warm-start generations).
    pub cost: u64,
}

/// How the runtime consumed the `u64` id space: the largest id the
/// current encoding can produce vs. the type's headroom.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdHeadroom {
    /// `maxID` of the current encoding generation.
    pub max_id: u64,
    /// Bits needed to represent `max_id`.
    pub bits_used: u32,
    /// Bits to spare before a `u64` context id would overflow.
    pub bits_spare: u32,
}

impl IdHeadroom {
    fn for_max_id(max_id: u64) -> IdHeadroom {
        let bits_used = 64 - max_id.leading_zeros();
        IdHeadroom {
            max_id,
            bits_used,
            bits_spare: 64 - bits_used,
        }
    }
}

/// The registry of runtime health metrics, shared via `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Cold-start traps handled.
    pub traps: Counter,
    /// New call edges added to the dynamic graph.
    pub edges_discovered: Counter,
    /// Call sites (re)patched.
    pub sites_patched: Counter,
    /// Re-encode attempts (applied or aborted).
    pub reencodes: Counter,
    /// Re-encode attempts aborted on overflow.
    pub reencode_aborts: Counter,
    /// Threads lazily migrated across generations.
    pub migrations: Counter,
    /// New ccStack high-water marks at or above the watermark.
    pub cc_overflows: Counter,
    /// Context samples taken.
    pub samples: Counter,
    /// Continuous-profiler samples captured.
    pub profiler_samples: Counter,
    /// Total weight of continuous-profiler samples (events represented).
    pub profiler_sample_weight: Counter,
    /// Warm-start edges seeded.
    pub warm_seeded_edges: Counter,
    /// Warm-start edges pruned for id budget.
    pub warm_pruned_edges: Counter,
    /// Per-thread indirect-call inline-cache hits.
    pub icache_hits: Counter,
    /// Per-thread indirect-call inline-cache misses.
    pub icache_misses: Counter,
    /// Superop windows executed as memoized net effects.
    pub superop_hits: Counter,
    /// Superop probes that fell back to the per-event loop.
    pub superop_misses: Counter,
    /// Compiled superops dropped on republish (epoch invalidation).
    pub superop_invalidations: Counter,
    /// Snapshot publications — every one is a superop epoch boundary, so
    /// `superop_invalidations / superop_republishes` is the table churn.
    pub superop_republishes: Counter,
    /// Traps taken on degraded (trap-everything) nodes after the engine
    /// gave up re-encoding.
    pub degraded_traps: Counter,
    /// Re-encode attempts re-armed after an abort (rollback + backoff).
    pub reencode_retries: Counter,
    /// ccStack watermark-shedding (spill) events.
    pub cc_spills: Counter,
    /// Slow-path lock acquisitions that recovered from poisoning.
    pub lock_poisonings: Counter,
    /// Dispatch-slot allocations refused by an injected cap.
    pub slot_failures: Counter,
    /// Shared-lineage generations adopted instead of re-encoding locally.
    pub lineage_adoptions: Counter,
    /// Locally applied re-encodings published into a shared lineage.
    pub lineage_publishes: Counter,
    /// Tenants diverged (copy-on-write) off their shared lineage.
    pub lineage_divergences: Counter,
    /// Trap-handling latency in nanoseconds.
    pub trap_ns: Histogram,
    /// Abstract cost per re-encode attempt.
    pub reencode_cost: Histogram,
    /// ccStack depth at sample points.
    pub cc_depth: Histogram,
    /// Context ids observed at sample points (id-space consumption).
    pub sampled_ids: Histogram,
    max_id: AtomicU64,
    dispatch_slots: AtomicU64,
    dispatch_span: AtomicU64,
    superop_compiled: AtomicU64,
    superop_candidates: AtomicU64,
    generations: Mutex<Vec<GenerationInfo>>,
}

impl MetricsRegistry {
    /// Records the compiled dispatch table's shape: `occupied` allocated
    /// slots over a `span`-wide site-id index range (gauges, last wins).
    pub fn record_dispatch(&self, occupied: u64, span: u64) {
        self.dispatch_slots.store(occupied, Ordering::Relaxed);
        self.dispatch_span.store(span, Ordering::Relaxed);
    }

    /// Records the superop table's shape: `compiled` superops published
    /// with the latest snapshot out of `candidates` installed candidate
    /// windows (gauges, last wins).
    pub fn record_superops(&self, compiled: u64, candidates: u64) {
        self.superop_compiled.store(compiled, Ordering::Relaxed);
        self.superop_candidates.store(candidates, Ordering::Relaxed);
    }

    /// Records (or replaces) the dictionary table row for a generation
    /// and updates the current `maxID` gauge.
    pub fn record_generation(&self, info: GenerationInfo) {
        let mut table = self.generations.lock();
        if let Some(row) = table.iter_mut().find(|g| g.generation == info.generation) {
            *row = info;
        } else {
            table.push(info);
            table.sort_unstable_by_key(|g| g.generation);
        }
        // The gauge tracks the newest generation, not the latest update.
        if let Some(last) = table.last() {
            self.max_id.store(last.max_id, Ordering::Relaxed);
        }
    }

    /// Takes a point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            traps: self.traps.get(),
            edges_discovered: self.edges_discovered.get(),
            sites_patched: self.sites_patched.get(),
            reencodes: self.reencodes.get(),
            reencode_aborts: self.reencode_aborts.get(),
            migrations: self.migrations.get(),
            cc_overflows: self.cc_overflows.get(),
            samples: self.samples.get(),
            profiler_samples: self.profiler_samples.get(),
            profiler_sample_weight: self.profiler_sample_weight.get(),
            warm_seeded_edges: self.warm_seeded_edges.get(),
            warm_pruned_edges: self.warm_pruned_edges.get(),
            icache_hits: self.icache_hits.get(),
            icache_misses: self.icache_misses.get(),
            superop_hits: self.superop_hits.get(),
            superop_misses: self.superop_misses.get(),
            superop_invalidations: self.superop_invalidations.get(),
            superop_republishes: self.superop_republishes.get(),
            superop_compiled: self.superop_compiled.load(Ordering::Relaxed),
            superop_candidates: self.superop_candidates.load(Ordering::Relaxed),
            degraded_traps: self.degraded_traps.get(),
            reencode_retries: self.reencode_retries.get(),
            cc_spills: self.cc_spills.get(),
            lock_poisonings: self.lock_poisonings.get(),
            slot_failures: self.slot_failures.get(),
            lineage_adoptions: self.lineage_adoptions.get(),
            lineage_publishes: self.lineage_publishes.get(),
            lineage_divergences: self.lineage_divergences.get(),
            dispatch_slots: self.dispatch_slots.load(Ordering::Relaxed),
            dispatch_span: self.dispatch_span.load(Ordering::Relaxed),
            trap_ns: self.trap_ns.snapshot(),
            reencode_cost: self.reencode_cost.snapshot(),
            cc_depth: self.cc_depth.snapshot(),
            sampled_ids: self.sampled_ids.snapshot(),
            id_headroom: IdHeadroom::for_max_id(self.max_id.load(Ordering::Relaxed)),
            generations: self.generations.lock().clone(),
            journal_dropped: 0,
        }
    }
}

/// A plain-data copy of the whole registry, ready for export.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Cold-start traps handled.
    pub traps: u64,
    /// New call edges added to the dynamic graph.
    pub edges_discovered: u64,
    /// Call sites (re)patched.
    pub sites_patched: u64,
    /// Re-encode attempts (applied or aborted).
    pub reencodes: u64,
    /// Re-encode attempts aborted on overflow.
    pub reencode_aborts: u64,
    /// Threads lazily migrated across generations.
    pub migrations: u64,
    /// New ccStack high-water marks at or above the watermark.
    pub cc_overflows: u64,
    /// Context samples taken.
    pub samples: u64,
    /// Continuous-profiler samples captured.
    pub profiler_samples: u64,
    /// Total weight of continuous-profiler samples (events represented).
    pub profiler_sample_weight: u64,
    /// Warm-start edges seeded.
    pub warm_seeded_edges: u64,
    /// Warm-start edges pruned for id budget.
    pub warm_pruned_edges: u64,
    /// Per-thread indirect-call inline-cache hits.
    pub icache_hits: u64,
    /// Per-thread indirect-call inline-cache misses.
    pub icache_misses: u64,
    /// Superop windows executed as memoized net effects.
    pub superop_hits: u64,
    /// Superop probes that fell back to the per-event loop.
    pub superop_misses: u64,
    /// Compiled superops dropped on republish (epoch invalidation).
    pub superop_invalidations: u64,
    /// Snapshot publications (superop epoch boundaries).
    pub superop_republishes: u64,
    /// Superops published with the latest snapshot (gauge).
    pub superop_compiled: u64,
    /// Candidate windows installed for compilation (gauge).
    pub superop_candidates: u64,
    /// Traps taken on degraded (trap-everything) nodes.
    pub degraded_traps: u64,
    /// Re-encode attempts re-armed after an abort.
    pub reencode_retries: u64,
    /// ccStack watermark-shedding (spill) events.
    pub cc_spills: u64,
    /// Slow-path lock acquisitions that recovered from poisoning.
    pub lock_poisonings: u64,
    /// Dispatch-slot allocations refused by an injected cap.
    pub slot_failures: u64,
    /// Shared-lineage generations adopted instead of re-encoding locally.
    pub lineage_adoptions: u64,
    /// Locally applied re-encodings published into a shared lineage.
    pub lineage_publishes: u64,
    /// Tenants diverged (copy-on-write) off their shared lineage.
    pub lineage_divergences: u64,
    /// Allocated dispatch-table slots (compiled sites).
    pub dispatch_slots: u64,
    /// Site-id index range the slot vector spans.
    pub dispatch_span: u64,
    /// Trap-handling latency in nanoseconds.
    pub trap_ns: HistogramSnapshot,
    /// Abstract cost per re-encode attempt.
    pub reencode_cost: HistogramSnapshot,
    /// ccStack depth at sample points.
    pub cc_depth: HistogramSnapshot,
    /// Context ids observed at sample points.
    pub sampled_ids: HistogramSnapshot,
    /// Id-space consumption of the current generation.
    pub id_headroom: IdHeadroom,
    /// Per-generation dictionary table.
    pub generations: Vec<GenerationInfo>,
    /// Journal records lost to ring overwrites (filled in by the glue
    /// layer, which owns the journal).
    pub journal_dropped: u64,
}

impl MetricsSnapshot {
    /// Folds another runtime instance's snapshot into this one: counters
    /// and histograms add, gauges take the maximum, and the generation
    /// table is dropped (per-instance dictionary histories do not merge —
    /// a fleet aggregate reports them per tenant instead).
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.traps += other.traps;
        self.edges_discovered += other.edges_discovered;
        self.sites_patched += other.sites_patched;
        self.reencodes += other.reencodes;
        self.reencode_aborts += other.reencode_aborts;
        self.migrations += other.migrations;
        self.cc_overflows += other.cc_overflows;
        self.samples += other.samples;
        self.profiler_samples += other.profiler_samples;
        self.profiler_sample_weight += other.profiler_sample_weight;
        self.warm_seeded_edges += other.warm_seeded_edges;
        self.warm_pruned_edges += other.warm_pruned_edges;
        self.icache_hits += other.icache_hits;
        self.icache_misses += other.icache_misses;
        self.superop_hits += other.superop_hits;
        self.superop_misses += other.superop_misses;
        self.superop_invalidations += other.superop_invalidations;
        self.superop_republishes += other.superop_republishes;
        self.superop_compiled = self.superop_compiled.max(other.superop_compiled);
        self.superop_candidates = self.superop_candidates.max(other.superop_candidates);
        self.degraded_traps += other.degraded_traps;
        self.reencode_retries += other.reencode_retries;
        self.cc_spills += other.cc_spills;
        self.lock_poisonings += other.lock_poisonings;
        self.slot_failures += other.slot_failures;
        self.lineage_adoptions += other.lineage_adoptions;
        self.lineage_publishes += other.lineage_publishes;
        self.lineage_divergences += other.lineage_divergences;
        self.dispatch_slots = self.dispatch_slots.max(other.dispatch_slots);
        self.dispatch_span = self.dispatch_span.max(other.dispatch_span);
        self.trap_ns.absorb(&other.trap_ns);
        self.reencode_cost.absorb(&other.reencode_cost);
        self.cc_depth.absorb(&other.cc_depth);
        self.sampled_ids.absorb(&other.sampled_ids);
        if other.id_headroom.max_id > self.id_headroom.max_id {
            self.id_headroom = other.id_headroom;
        }
        self.generations.clear();
        self.journal_dropped += other.journal_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Arc::new(Counter::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), 40_000);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[10], 1); // 1000 in (511, 1023]
    }

    #[test]
    fn quantile_and_mean_sane() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert!((snap.mean() - 50.5).abs() < 0.01);
        assert!(snap.quantile(0.5) >= 32);
        assert_eq!(snap.quantile(1.0), 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn generation_table_replaces_by_generation() {
        let reg = MetricsRegistry::default();
        reg.record_generation(GenerationInfo {
            generation: 1,
            nodes: 5,
            edges: 4,
            max_id: 10,
            cost: 0,
        });
        reg.record_generation(GenerationInfo {
            generation: 2,
            nodes: 9,
            edges: 12,
            max_id: 60,
            cost: 30,
        });
        reg.record_generation(GenerationInfo {
            generation: 1,
            nodes: 6,
            edges: 5,
            max_id: 12,
            cost: 0,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.generations.len(), 2);
        assert_eq!(snap.generations[0].nodes, 6);
        assert_eq!(snap.id_headroom.max_id, 60);
        assert_eq!(snap.id_headroom.bits_used, 6);
        assert_eq!(snap.id_headroom.bits_spare, 58);
    }

    #[test]
    fn sketch_renders_nonempty() {
        let h = Histogram::default();
        for v in [1u64, 1, 2, 4, 4, 4, 4, 64] {
            h.observe(v);
        }
        let sketch = h.snapshot().sketch();
        assert!(!sketch.is_empty());
        assert!(sketch.contains('@'));
        assert_eq!(HistogramSnapshot::default().sketch(), "(empty)");
    }
}
