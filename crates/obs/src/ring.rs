//! Fixed-capacity lock-free event ring: single producer, overwrite-oldest.
//!
//! Each slot is a seqlock: an atomic stamp plus the record's `u64` words
//! stored in plain atomics. The producer marks the slot busy (odd stamp),
//! writes the words, then publishes the even stamp and advances `head`
//! with a release store. A drainer validates the stamp on both sides of
//! the word reads, so a slot overwritten mid-read is simply skipped (it
//! will be counted as dropped). No `unsafe` is needed anywhere.
//!
//! The ring never blocks the producer: when full it overwrites the oldest
//! slot, and the drain accounts for the overwritten records as drops.

use dacce_sync::{fence, protocol, AtomicU64, Ordering};

use crate::event::{EventRecord, WORDS};

struct Slot {
    /// `2*i + 1` while record `i` is being written, `2*i + 2` once it is
    /// published. Monotonic, so a stale read can never alias a newer one.
    stamp: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A single-producer, overwrite-oldest event ring.
///
/// `push` must only ever be called from one thread at a time (the journal
/// hands each registered writer its own ring); `drain_into` may race with
/// the producer freely.
pub struct EventRing {
    mask: u64,
    /// Count of records ever pushed; slot index is `head & mask`.
    head: AtomicU64,
    /// Count of records already consumed by the drainer.
    drained: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// Creates a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 8).
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two();
        EventRing {
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// Number of slots.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Appends a record, overwriting the oldest if the ring is full.
    /// Single-producer: must not be called concurrently with itself.
    #[allow(clippy::cast_possible_truncation)]
    pub fn push(&self, record: &EventRecord) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        // Mark busy so a concurrent drainer rejects the slot.
        slot.stamp.store(2 * h + 1, protocol::RING_STAMP_BUSY);
        let words = record.to_words();
        for (cell, word) in slot.words.iter().zip(words) {
            cell.store(word, protocol::RING_WORD_ACCESS);
        }
        // Publish: even stamp first, then head, both release so a drainer
        // that observes the new head sees the published words.
        slot.stamp.store(2 * h + 2, protocol::RING_STAMP_PUBLISH);
        self.head.store(h + 1, protocol::RING_HEAD_PUBLISH);
    }

    /// Drains all records published since the previous drain into `out`,
    /// oldest first, and returns how many were lost to overwriting (or to
    /// a racing writer). Single-consumer: callers serialise externally.
    pub fn drain_into(&self, out: &mut Vec<EventRecord>) -> u64 {
        self.collect_into(out, true)
    }

    /// Reads the records a drain would return without consuming them:
    /// the drain cursor stays put, so a subsequent [`EventRing::drain_into`]
    /// still sees everything. Used by the flight recorder, which must not
    /// steal events from whoever owns the live drain.
    pub fn peek_into(&self, out: &mut Vec<EventRecord>) -> u64 {
        self.collect_into(out, false)
    }

    #[allow(clippy::cast_possible_truncation)]
    fn collect_into(&self, out: &mut Vec<EventRecord>, consume: bool) -> u64 {
        let head = self.head.load(protocol::RING_HEAD_READ);
        let already = self.drained.load(Ordering::Relaxed);
        let cap = self.mask + 1;
        // Oldest record still guaranteed resident.
        let lo = already.max(head.saturating_sub(cap));
        let mut dropped = lo - already;
        for i in lo..head {
            let slot = &self.slots[(i & self.mask) as usize];
            let expect = 2 * i + 2;
            if slot.stamp.load(protocol::RING_STAMP_VALIDATE) != expect {
                dropped += 1;
                continue;
            }
            let mut words = [0u64; WORDS];
            for (word, cell) in words.iter_mut().zip(&slot.words) {
                *word = cell.load(protocol::RING_WORD_ACCESS);
            }
            // Order the word loads before the validating stamp re-read.
            fence(protocol::RING_VALIDATE_FENCE);
            if slot.stamp.load(protocol::RING_STAMP_RECHECK) != expect {
                dropped += 1;
                continue;
            }
            match EventRecord::from_words(words) {
                Some(rec) => out.push(rec),
                None => dropped += 1,
            }
        }
        if consume {
            self.drained.store(head, Ordering::Relaxed);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn rec(seq: u64) -> EventRecord {
        EventRecord {
            seq,
            nanos: seq * 10,
            tid: 0,
            kind: EventKind::CcPush {
                depth: u32::try_from(seq % 100).unwrap(),
            },
        }
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(EventRing::new(0).capacity(), 8);
        assert_eq!(EventRing::new(8).capacity(), 8);
        assert_eq!(EventRing::new(9).capacity(), 16);
        assert_eq!(EventRing::new(1000).capacity(), 1024);
    }

    #[test]
    fn drain_returns_pushed_records_in_order() {
        let ring = EventRing::new(16);
        for i in 0..10 {
            ring.push(&rec(i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        assert_eq!(dropped, 0);
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
        // A second drain yields nothing new.
        let mut again = Vec::new();
        assert_eq!(ring.drain_into(&mut again), 0);
        assert!(again.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let ring = EventRing::new(16);
        for i in 0..5 {
            ring.push(&rec(i));
        }
        let mut peeked = Vec::new();
        assert_eq!(ring.peek_into(&mut peeked), 0);
        assert_eq!(peeked.len(), 5);
        // The drain still sees everything the peek saw.
        let mut drained = Vec::new();
        assert_eq!(ring.drain_into(&mut drained), 0);
        assert_eq!(drained, peeked);
    }

    #[test]
    fn overwrite_counts_drops() {
        let ring = EventRing::new(8);
        for i in 0..20 {
            ring.push(&rec(i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(dropped, 12);
        assert_eq!(out.first().unwrap().seq, 12);
        assert_eq!(out.last().unwrap().seq, 19);
    }

    #[test]
    fn incremental_drains_lose_nothing_when_keeping_up() {
        let ring = EventRing::new(32);
        let mut seen = Vec::new();
        let mut dropped = 0;
        for i in 0..200 {
            ring.push(&rec(i));
            if i % 7 == 0 {
                dropped += ring.drain_into(&mut seen);
            }
        }
        dropped += ring.drain_into(&mut seen);
        assert_eq!(dropped, 0);
        assert_eq!(seen.len(), 200);
        assert!(seen.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    /// Concurrent producer/drainer stress: every record is either drained
    /// exactly once or accounted as dropped — none duplicated, none lost.
    #[test]
    fn concurrent_drain_accounts_for_every_record() {
        const TOTAL: u64 = 50_000;
        let ring = Arc::new(EventRing::new(256));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..TOTAL {
                    ring.push(&rec(i));
                }
            })
        };
        let mut seen = Vec::new();
        let mut dropped = 0;
        loop {
            dropped += ring.drain_into(&mut seen);
            if producer.is_finished() {
                dropped += ring.drain_into(&mut seen);
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(seen.len() as u64 + dropped, TOTAL);
        // Drained records are strictly increasing (no duplicates).
        assert!(seen.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
