//! The event journal: per-writer rings, global sequencing, merged drains.
//!
//! A [`Journal`] owns one [`EventRing`] per registered writer and a global
//! sequence counter that gives every record a strict total order across
//! threads. Emission is gated by a runtime flag read with a relaxed load;
//! when the flag is off, [`JournalWriter::emit`] returns before
//! constructing anything. Draining collects each ring's published records
//! and merges them by sequence number into one ordered stream.

use std::sync::Arc;
use std::time::Instant;

use dacce_sync::{AtomicBool, AtomicU64, Mutex, Ordering};

use crate::event::{EventKind, EventRecord};
use crate::ring::EventRing;

/// Journal construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct JournalConfig {
    /// Slots per writer ring (rounded up to a power of two, min 8).
    pub ring_capacity: usize,
    /// ccStack depth at which new high-water marks emit `CcOverflow`.
    pub overflow_watermark: u32,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            ring_capacity: 4096,
            overflow_watermark: 48,
        }
    }
}

/// A merged drain result: records ordered by global sequence number plus
/// the number of records lost to ring overwrites since the last drain.
#[derive(Clone, Debug, Default)]
pub struct JournalBatch {
    /// Drained records, ascending by `seq`.
    pub events: Vec<EventRecord>,
    /// Records overwritten before this drain could read them.
    pub dropped: u64,
    /// The same drops attributed to the writer thread whose ring lost
    /// them, `(tid, dropped)` ascending by tid, zero-loss threads
    /// omitted. Overwrites happen inside one producer's private ring, so
    /// unlike the merged total the attribution is exact even when the
    /// drain races the producers.
    pub dropped_by_thread: Vec<(u32, u64)>,
}

/// Lock-free event journal shared by the runtime and its threads.
pub struct Journal {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    config: JournalConfig,
    rings: Mutex<Vec<(u32, Arc<EventRing>)>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("enabled", &self.enabled())
            .field("config", &self.config)
            .field("writers", &self.rings.lock().len())
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates a disabled journal; call [`Journal::set_enabled`] to start
    /// recording.
    #[must_use]
    pub fn new(config: JournalConfig) -> Journal {
        Journal {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            config,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Whether emission is currently on (relaxed load — the fast-path
    /// gate).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns emission on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The configuration the journal was built with.
    #[must_use]
    pub fn config(&self) -> JournalConfig {
        self.config
    }

    /// Total records lost to ring overwrites across all drains so far.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Registers a new single-producer writer with its own ring.
    #[must_use]
    pub fn writer(self: &Arc<Self>, tid: u32) -> JournalWriter {
        let ring = Arc::new(EventRing::new(self.config.ring_capacity));
        self.rings.lock().push((tid, Arc::clone(&ring)));
        JournalWriter {
            journal: Arc::clone(self),
            ring,
            tid,
        }
    }

    /// Drains every ring and merges the records into one stream ordered
    /// by global sequence number. Ring-overwrite losses are reported both
    /// as a merged total and attributed to the writer thread that owned
    /// the overwritten ring.
    #[must_use]
    pub fn drain(&self) -> JournalBatch {
        let rings: Vec<(u32, Arc<EventRing>)> = self.rings.lock().clone();
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut dropped_by_thread: Vec<(u32, u64)> = Vec::new();
        for (tid, ring) in rings {
            let lost = ring.drain_into(&mut events);
            if lost > 0 {
                dropped += lost;
                // A tid can own several rings (writer re-registration);
                // fold its losses into one entry.
                match dropped_by_thread.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, d)) => *d += lost,
                    None => dropped_by_thread.push((tid, lost)),
                }
            }
        }
        dropped_by_thread.sort_unstable_by_key(|&(tid, _)| tid);
        events.sort_unstable_by_key(|e| e.seq);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        JournalBatch {
            events,
            dropped,
            dropped_by_thread,
        }
    }

    /// Reads what a drain would return without consuming it: cursors and
    /// the drop accounting are untouched, so the owner of the live drain
    /// still sees every record. This is the flight recorder's view.
    #[must_use]
    pub fn peek(&self) -> JournalBatch {
        let rings: Vec<(u32, Arc<EventRing>)> = self.rings.lock().clone();
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut dropped_by_thread: Vec<(u32, u64)> = Vec::new();
        for (tid, ring) in rings {
            let lost = ring.peek_into(&mut events);
            if lost > 0 {
                dropped += lost;
                match dropped_by_thread.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, d)) => *d += lost,
                    None => dropped_by_thread.push((tid, lost)),
                }
            }
        }
        dropped_by_thread.sort_unstable_by_key(|&(tid, _)| tid);
        events.sort_unstable_by_key(|e| e.seq);
        JournalBatch {
            events,
            dropped,
            dropped_by_thread,
        }
    }
}

/// A handle for one producer thread; owns a private ring inside the
/// journal. Emission is a relaxed-load check plus a handful of atomic
/// stores when enabled, and a single relaxed load when disabled.
pub struct JournalWriter {
    journal: Arc<Journal>,
    ring: Arc<EventRing>,
    tid: u32,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("tid", &self.tid)
            .finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Whether the journal is currently recording (relaxed load).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.journal.enabled()
    }

    /// The ccStack depth at which new high-water marks should emit
    /// `CcOverflow`.
    #[must_use]
    pub fn overflow_watermark(&self) -> u32 {
        self.journal.config.overflow_watermark
    }

    /// The thread id stamped on this writer's records.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Records an event for this writer's thread, if recording is on.
    pub fn emit(&self, kind: EventKind) {
        if !self.enabled() {
            return;
        }
        self.emit_always(self.tid, kind);
    }

    /// Records an event attributed to an explicit thread (used by the
    /// shared slow path, which acts on behalf of the trapping thread).
    pub fn emit_for(&self, tid: u32, kind: EventKind) {
        if !self.enabled() {
            return;
        }
        self.emit_always(tid, kind);
    }

    fn emit_always(&self, tid: u32, kind: EventKind) {
        let seq = self.journal.seq.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(self.journal.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.ring.push(&EventRecord {
            seq,
            nanos,
            tid,
            kind,
        });
    }
}

/// Aggregate counters reconstructed by replaying a journal stream.
///
/// Field names match their `DacceStats` counterparts where one exists, so
/// a journal captured with large-enough rings can be checked against the
/// engine's own accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalAggregates {
    /// `Trap` events (== `DacceStats::traps` when nothing was dropped).
    pub traps: u64,
    /// `EdgeDiscovered` events.
    pub edges_discovered: u64,
    /// `SitePatched` events.
    pub sites_patched: u64,
    /// `ReencodeEnd` events, applied or not (== `DacceStats::reencodes`).
    pub reencodes: u64,
    /// Sum of `ReencodeEnd` costs (== `DacceStats::reencode_cost`).
    pub reencode_cost: u64,
    /// `ReencodeEnd` events with `applied == false`
    /// (== `DacceStats::overflow_aborts`).
    pub overflow_aborts: u64,
    /// `CcPush` events.
    pub cc_pushes: u64,
    /// `CcPop` events.
    pub cc_pops: u64,
    /// `CcOverflow` events.
    pub cc_overflows: u64,
    /// `Migration` events.
    pub migrations: u64,
    /// Edges seeded by `WarmSeed` events.
    pub warm_seeded: u64,
    /// Edges pruned by `WarmSeed` events.
    pub warm_pruned: u64,
    /// Highest ccStack depth seen in any ccStack event.
    pub max_cc_depth: u32,
    /// `Sample` events (profiler captures that reached the journal).
    pub samples: u64,
    /// Sum of `Sample` weights — the events of execution the samples
    /// stand in for.
    pub sample_weight: u64,
    /// Ring-overwrite losses attributed to the thread whose ring lost
    /// them, `(tid, dropped)` ascending by tid. Empty when replaying a
    /// bare event stream; populated by [`JournalAggregates::replay_batch`].
    pub dropped_by_thread: Vec<(u32, u64)>,
}

impl JournalAggregates {
    /// Replays a drained batch: aggregates the events and carries over
    /// the batch's per-thread drop attribution.
    #[must_use]
    pub fn replay_batch(batch: &JournalBatch) -> JournalAggregates {
        let mut agg = JournalAggregates::replay(&batch.events);
        agg.dropped_by_thread.clone_from(&batch.dropped_by_thread);
        agg
    }

    /// Replays a stream of records into aggregate counters.
    #[must_use]
    pub fn replay(events: &[EventRecord]) -> JournalAggregates {
        let mut agg = JournalAggregates::default();
        for ev in events {
            match ev.kind {
                EventKind::Trap { .. } => agg.traps += 1,
                EventKind::EdgeDiscovered { .. } => agg.edges_discovered += 1,
                EventKind::SitePatched { .. } => agg.sites_patched += 1,
                EventKind::ReencodeBegin { .. } => {}
                EventKind::ReencodeEnd { applied, cost, .. } => {
                    agg.reencodes += 1;
                    agg.reencode_cost += cost;
                    if !applied {
                        agg.overflow_aborts += 1;
                    }
                }
                EventKind::CcPush { depth } => {
                    agg.cc_pushes += 1;
                    agg.max_cc_depth = agg.max_cc_depth.max(depth);
                }
                EventKind::CcPop { depth } => {
                    agg.cc_pops += 1;
                    agg.max_cc_depth = agg.max_cc_depth.max(depth);
                }
                EventKind::CcOverflow { depth } => {
                    agg.cc_overflows += 1;
                    agg.max_cc_depth = agg.max_cc_depth.max(depth);
                }
                EventKind::Migration { .. } => agg.migrations += 1,
                EventKind::WarmSeed { seeded, pruned, .. } => {
                    agg.warm_seeded += u64::from(seeded);
                    agg.warm_pruned += u64::from(pruned);
                }
                EventKind::Sample { weight, depth, .. } => {
                    agg.samples += 1;
                    agg.sample_weight += u64::from(weight);
                    agg.max_cc_depth = agg.max_cc_depth.max(depth);
                }
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_emits_nothing() {
        let journal = Arc::new(Journal::new(JournalConfig::default()));
        let writer = journal.writer(0);
        assert!(!writer.enabled());
        writer.emit(EventKind::CcPush { depth: 1 });
        let batch = journal.drain();
        assert!(batch.events.is_empty());
        assert_eq!(batch.dropped, 0);
    }

    #[test]
    fn multi_writer_drain_is_seq_ordered() {
        let journal = Arc::new(Journal::new(JournalConfig::default()));
        journal.set_enabled(true);
        let w0 = journal.writer(0);
        let w1 = journal.writer(1);
        for i in 0..50u32 {
            if i % 2 == 0 {
                w0.emit(EventKind::CcPush { depth: i });
            } else {
                w1.emit(EventKind::CcPop { depth: i });
            }
        }
        let batch = journal.drain();
        assert_eq!(batch.events.len(), 50);
        assert_eq!(batch.dropped, 0);
        assert!(batch.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(batch.events.iter().any(|e| e.tid == 0));
        assert!(batch.events.iter().any(|e| e.tid == 1));
    }

    #[test]
    fn toggling_enabled_gates_emission() {
        let journal = Arc::new(Journal::new(JournalConfig::default()));
        let writer = journal.writer(3);
        writer.emit(EventKind::Trap {
            site: 1,
            caller: 0,
            callee: 2,
        });
        journal.set_enabled(true);
        writer.emit(EventKind::Trap {
            site: 1,
            caller: 0,
            callee: 2,
        });
        journal.set_enabled(false);
        writer.emit(EventKind::Trap {
            site: 1,
            caller: 0,
            callee: 2,
        });
        assert_eq!(journal.drain().events.len(), 1);
    }

    #[test]
    fn drops_are_attributed_to_the_overflowing_thread() {
        let journal = Arc::new(Journal::new(JournalConfig {
            ring_capacity: 8,
            ..JournalConfig::default()
        }));
        journal.set_enabled(true);
        let quiet = journal.writer(1);
        let noisy = journal.writer(2);
        for i in 0..4u32 {
            quiet.emit(EventKind::CcPush { depth: i });
        }
        for i in 0..40u32 {
            noisy.emit(EventKind::CcPop { depth: i });
        }
        let batch = journal.drain();
        assert_eq!(batch.dropped, 32);
        assert_eq!(batch.dropped_by_thread, vec![(2, 32)]);
        let agg = JournalAggregates::replay_batch(&batch);
        assert_eq!(agg.dropped_by_thread, vec![(2, 32)]);
        assert_eq!(agg.cc_pushes, 4);
        assert_eq!(agg.cc_pops, 8);
        // A clean follow-up drain attributes nothing.
        assert!(journal.drain().dropped_by_thread.is_empty());
    }

    #[test]
    fn sample_events_aggregate_count_and_weight() {
        let journal = Arc::new(Journal::new(JournalConfig::default()));
        journal.set_enabled(true);
        let writer = journal.writer(0);
        for i in 0..5u64 {
            writer.emit(EventKind::Sample {
                generation: 1,
                id: i,
                site: 2,
                leaf: 3,
                root: 0,
                fingerprint: 7,
                weight: 100,
                depth: u32::try_from(i).unwrap(),
            });
        }
        let agg = JournalAggregates::replay(&journal.drain().events);
        assert_eq!(agg.samples, 5);
        assert_eq!(agg.sample_weight, 500);
        assert_eq!(agg.max_cc_depth, 4);
    }

    #[test]
    fn replay_matches_emitted_counts() {
        let journal = Arc::new(Journal::new(JournalConfig {
            ring_capacity: 1 << 14,
            ..JournalConfig::default()
        }));
        journal.set_enabled(true);
        let writer = journal.writer(0);
        for i in 0..10u32 {
            writer.emit(EventKind::Trap {
                site: i,
                caller: 0,
                callee: i + 1,
            });
            writer.emit(EventKind::EdgeDiscovered {
                site: i,
                caller: 0,
                callee: i + 1,
            });
        }
        writer.emit(EventKind::ReencodeBegin { generation: 1 });
        writer.emit(EventKind::ReencodeEnd {
            generation: 2,
            applied: true,
            cost: 77,
            nodes: 11,
            edges: 10,
            max_id: 40,
        });
        writer.emit(EventKind::ReencodeEnd {
            generation: 2,
            applied: false,
            cost: 5,
            nodes: 0,
            edges: 0,
            max_id: 0,
        });
        let batch = journal.drain();
        let agg = JournalAggregates::replay(&batch.events);
        assert_eq!(agg.traps, 10);
        assert_eq!(agg.edges_discovered, 10);
        assert_eq!(agg.reencodes, 2);
        assert_eq!(agg.reencode_cost, 82);
        assert_eq!(agg.overflow_aborts, 1);
    }
}
