//! Typed lifecycle events and their fixed-width / JSON codecs.
//!
//! Every event the runtime can emit is a variant of [`EventKind`]; a
//! [`EventRecord`] wraps the kind with a global sequence number, a
//! monotonic timestamp (nanoseconds since the journal epoch) and the
//! emitting thread. Records serialise two ways:
//!
//! - a fixed array of `u64` words (`WORDS` per record) so the lock-free
//!   ring buffer can store them in plain atomics, and
//! - one flat JSON object per event for export / replay.

/// Number of `u64` words a serialised [`EventRecord`] occupies in a ring
/// slot: tag+tid packed, seq, nanos, and four payload words.
pub(crate) const WORDS: usize = 7;

/// A typed runtime lifecycle event.
///
/// Variants mirror the DACCE state machine: cold-start traps, call-site
/// patching, edge discovery, adaptive re-encoding under `gTimeStamp`,
/// ccStack traffic, lazy cross-generation migration, and warm-start
/// seeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A call site trapped into the runtime handler (first execution of
    /// an edge, or an unpatched indirect target).
    Trap {
        /// Call-site identifier.
        site: u32,
        /// Caller function id.
        caller: u32,
        /// Callee function id.
        callee: u32,
    },
    /// A call site was (re)patched; `targets` is the number of callee
    /// targets the site dispatches to after patching.
    SitePatched {
        /// Call-site identifier.
        site: u32,
        /// Number of distinct targets the patched site now covers.
        targets: u32,
    },
    /// A never-before-seen call edge was added to the dynamic call graph.
    EdgeDiscovered {
        /// Call-site identifier through which the edge was observed.
        site: u32,
        /// Caller function id.
        caller: u32,
        /// Callee function id.
        callee: u32,
    },
    /// An adaptive re-encode started; `generation` is the `gTimeStamp`
    /// in force while the new encoding is computed.
    ReencodeBegin {
        /// Generation (timestamp) being superseded.
        generation: u32,
    },
    /// A re-encode finished. `applied` is false when the attempt was
    /// aborted (e.g. encoding overflow) and the old generation stays
    /// live.
    ReencodeEnd {
        /// Generation in force after the attempt (new one when applied,
        /// the old one when aborted).
        generation: u32,
        /// Whether the new encoding was published.
        applied: bool,
        /// Abstract cost charged for the attempt.
        cost: u64,
        /// Nodes in the encoded graph.
        nodes: u32,
        /// Edges in the encoded graph.
        edges: u32,
        /// Maximum context id of the new encoding (0 when aborted).
        max_id: u64,
    },
    /// A value was pushed on a thread's ccStack; `depth` is the stack
    /// depth after the push.
    CcPush {
        /// ccStack depth after the push.
        depth: u32,
    },
    /// A value was popped from a thread's ccStack; `depth` is the stack
    /// depth after the pop.
    CcPop {
        /// ccStack depth after the pop.
        depth: u32,
    },
    /// A thread's ccStack reached a new high-water depth at or above the
    /// configured watermark.
    CcOverflow {
        /// The record depth that crossed the watermark.
        depth: u32,
    },
    /// A thread lazily migrated its context from one encoding generation
    /// to a newer one.
    Migration {
        /// Generation the thread was encoded under.
        from: u32,
        /// Generation the thread re-encoded into.
        to: u32,
    },
    /// A warm-start seed was applied before execution began.
    WarmSeed {
        /// Edges seeded into the call graph.
        seeded: u32,
        /// Seed edges pruned to stay within the id budget.
        pruned: u32,
        /// Maximum context id after seeding.
        max_id: u64,
    },
    /// The continuous profiler captured one encoded-context sample.
    ///
    /// Carries everything an *offline* decode needs when the ccStack was
    /// empty at capture time (`depth == 0`): the generation selects the
    /// dictionary, and `leaf`/`root` bound Algorithm 1's walk. Deeper
    /// captures still journal the fingerprint for correlation, but only
    /// the in-process profile (which holds the full ccStack) decodes
    /// them exactly.
    Sample {
        /// Encoding generation (`gTimeStamp`) at capture time.
        generation: u32,
        /// The encoded context identifier.
        id: u64,
        /// Call-site identifier of the sampled call (the sample trigger).
        site: u32,
        /// Function executing at capture time.
        leaf: u32,
        /// The thread's root function.
        root: u32,
        /// FNV-style fingerprint of the ccStack content.
        fingerprint: u32,
        /// Cost units the sample represents (events skipped since the
        /// previous sample, i.e. the effective stride). Saturates at
        /// `u16::MAX` in the wire encoding.
        weight: u32,
        /// ccStack depth at capture time. Saturates at `u16::MAX`.
        depth: u32,
    },
}

const TAG_TRAP: u64 = 1;
const TAG_SITE_PATCHED: u64 = 2;
const TAG_EDGE_DISCOVERED: u64 = 3;
const TAG_REENCODE_BEGIN: u64 = 4;
const TAG_REENCODE_END: u64 = 5;
const TAG_CC_PUSH: u64 = 6;
const TAG_CC_POP: u64 = 7;
const TAG_CC_OVERFLOW: u64 = 8;
const TAG_MIGRATION: u64 = 9;
const TAG_WARM_SEED: u64 = 10;
const TAG_SAMPLE: u64 = 11;

impl EventKind {
    /// Stable lowercase name used in JSON exports and rate tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Trap { .. } => "trap",
            EventKind::SitePatched { .. } => "site_patched",
            EventKind::EdgeDiscovered { .. } => "edge_discovered",
            EventKind::ReencodeBegin { .. } => "reencode_begin",
            EventKind::ReencodeEnd { .. } => "reencode_end",
            EventKind::CcPush { .. } => "cc_push",
            EventKind::CcPop { .. } => "cc_pop",
            EventKind::CcOverflow { .. } => "cc_overflow",
            EventKind::Migration { .. } => "migration",
            EventKind::WarmSeed { .. } => "warm_seed",
            EventKind::Sample { .. } => "sample",
        }
    }

    /// All event names, in tag order; used for by-kind tables.
    #[must_use]
    pub fn all_names() -> &'static [&'static str] {
        &[
            "trap",
            "site_patched",
            "edge_discovered",
            "reencode_begin",
            "reencode_end",
            "cc_push",
            "cc_pop",
            "cc_overflow",
            "migration",
            "warm_seed",
            "sample",
        ]
    }

    fn tag(&self) -> u64 {
        match self {
            EventKind::Trap { .. } => TAG_TRAP,
            EventKind::SitePatched { .. } => TAG_SITE_PATCHED,
            EventKind::EdgeDiscovered { .. } => TAG_EDGE_DISCOVERED,
            EventKind::ReencodeBegin { .. } => TAG_REENCODE_BEGIN,
            EventKind::ReencodeEnd { .. } => TAG_REENCODE_END,
            EventKind::CcPush { .. } => TAG_CC_PUSH,
            EventKind::CcPop { .. } => TAG_CC_POP,
            EventKind::CcOverflow { .. } => TAG_CC_OVERFLOW,
            EventKind::Migration { .. } => TAG_MIGRATION,
            EventKind::WarmSeed { .. } => TAG_WARM_SEED,
            EventKind::Sample { .. } => TAG_SAMPLE,
        }
    }

    fn payload(&self) -> [u64; 4] {
        match *self {
            EventKind::Trap {
                site,
                caller,
                callee,
            }
            | EventKind::EdgeDiscovered {
                site,
                caller,
                callee,
            } => [u64::from(site), u64::from(caller), u64::from(callee), 0],
            EventKind::SitePatched { site, targets } => [u64::from(site), u64::from(targets), 0, 0],
            EventKind::ReencodeBegin { generation } => [u64::from(generation), 0, 0, 0],
            EventKind::ReencodeEnd {
                generation,
                applied,
                cost,
                nodes,
                edges,
                max_id,
            } => [
                u64::from(generation) | (u64::from(applied) << 32),
                cost,
                u64::from(nodes) | (u64::from(edges) << 32),
                max_id,
            ],
            EventKind::CcPush { depth }
            | EventKind::CcPop { depth }
            | EventKind::CcOverflow { depth } => [u64::from(depth), 0, 0, 0],
            EventKind::Migration { from, to } => [u64::from(from), u64::from(to), 0, 0],
            EventKind::WarmSeed {
                seeded,
                pruned,
                max_id,
            } => [u64::from(seeded), u64::from(pruned), max_id, 0],
            EventKind::Sample {
                generation,
                id,
                site,
                leaf,
                root,
                fingerprint,
                weight,
                depth,
            } => [
                id,
                u64::from(generation) | (u64::from(site) << 32),
                u64::from(leaf) | (u64::from(root) << 32),
                u64::from(fingerprint)
                    | (u64::from(weight.min(0xffff)) << 32)
                    | (u64::from(depth.min(0xffff)) << 48),
            ],
        }
    }

    #[allow(clippy::cast_possible_truncation)]
    fn from_parts(tag: u64, p: [u64; 4]) -> Option<EventKind> {
        let lo = |w: u64| w as u32;
        let hi = |w: u64| (w >> 32) as u32;
        Some(match tag {
            TAG_TRAP => EventKind::Trap {
                site: lo(p[0]),
                caller: lo(p[1]),
                callee: lo(p[2]),
            },
            TAG_SITE_PATCHED => EventKind::SitePatched {
                site: lo(p[0]),
                targets: lo(p[1]),
            },
            TAG_EDGE_DISCOVERED => EventKind::EdgeDiscovered {
                site: lo(p[0]),
                caller: lo(p[1]),
                callee: lo(p[2]),
            },
            TAG_REENCODE_BEGIN => EventKind::ReencodeBegin {
                generation: lo(p[0]),
            },
            TAG_REENCODE_END => EventKind::ReencodeEnd {
                generation: lo(p[0]),
                applied: hi(p[0]) != 0,
                cost: p[1],
                nodes: lo(p[2]),
                edges: hi(p[2]),
                max_id: p[3],
            },
            TAG_CC_PUSH => EventKind::CcPush { depth: lo(p[0]) },
            TAG_CC_POP => EventKind::CcPop { depth: lo(p[0]) },
            TAG_CC_OVERFLOW => EventKind::CcOverflow { depth: lo(p[0]) },
            TAG_MIGRATION => EventKind::Migration {
                from: lo(p[0]),
                to: lo(p[1]),
            },
            TAG_WARM_SEED => EventKind::WarmSeed {
                seeded: lo(p[0]),
                pruned: lo(p[1]),
                max_id: p[2],
            },
            TAG_SAMPLE => EventKind::Sample {
                generation: lo(p[1]),
                id: p[0],
                site: hi(p[1]),
                leaf: lo(p[2]),
                root: hi(p[2]),
                fingerprint: lo(p[3]),
                weight: (p[3] >> 32) as u32 & 0xffff,
                depth: (p[3] >> 48) as u32,
            },
            _ => return None,
        })
    }
}

/// One journal entry: an [`EventKind`] plus ordering metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Global sequence number; a strict total order across all threads.
    pub seq: u64,
    /// Nanoseconds since the journal epoch (monotonic clock).
    pub nanos: u64,
    /// Emitting thread id (`ThreadId::raw`).
    pub tid: u32,
    /// The event itself.
    pub kind: EventKind,
}

impl EventRecord {
    pub(crate) fn to_words(self) -> [u64; WORDS] {
        let p = self.kind.payload();
        [
            self.kind.tag() | (u64::from(self.tid) << 32),
            self.seq,
            self.nanos,
            p[0],
            p[1],
            p[2],
            p[3],
        ]
    }

    #[allow(clippy::cast_possible_truncation)]
    pub(crate) fn from_words(w: [u64; WORDS]) -> Option<EventRecord> {
        let kind = EventKind::from_parts(w[0] & 0xffff_ffff, [w[3], w[4], w[5], w[6]])?;
        Some(EventRecord {
            seq: w[1],
            nanos: w[2],
            tid: (w[0] >> 32) as u32,
            kind,
        })
    }

    /// Renders this record as one flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"seq\":{},\"nanos\":{},\"tid\":{},\"event\":\"{}\"",
            self.seq,
            self.nanos,
            self.tid,
            self.kind.name()
        );
        for (key, value) in self.kind.fields() {
            let _ = write!(s, ",\"{key}\":{value}");
        }
        s.push('}');
        s
    }

    /// Parses a record from the flat JSON object produced by
    /// [`EventRecord::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first malformed construct.
    pub fn from_json(line: &str) -> Result<EventRecord, String> {
        let pairs = parse_flat_object(line)?;
        let num = |key: &str| -> Result<u64, String> {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .ok_or_else(|| format!("missing field `{key}` in event: {line}"))?
                .1
                .parse::<u64>()
                .map_err(|_| format!("field `{key}` is not an integer in event: {line}"))
        };
        let num32 = |key: &str| -> Result<u32, String> {
            u32::try_from(num(key)?).map_err(|_| format!("field `{key}` overflows u32"))
        };
        let name = pairs
            .iter()
            .find(|(k, _)| k == "event")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("missing field `event` in: {line}"))?;
        let kind = match name.as_str() {
            "trap" => EventKind::Trap {
                site: num32("site")?,
                caller: num32("caller")?,
                callee: num32("callee")?,
            },
            "site_patched" => EventKind::SitePatched {
                site: num32("site")?,
                targets: num32("targets")?,
            },
            "edge_discovered" => EventKind::EdgeDiscovered {
                site: num32("site")?,
                caller: num32("caller")?,
                callee: num32("callee")?,
            },
            "reencode_begin" => EventKind::ReencodeBegin {
                generation: num32("generation")?,
            },
            "reencode_end" => EventKind::ReencodeEnd {
                generation: num32("generation")?,
                applied: num("applied")? != 0,
                cost: num("cost")?,
                nodes: num32("nodes")?,
                edges: num32("edges")?,
                max_id: num("max_id")?,
            },
            "cc_push" => EventKind::CcPush {
                depth: num32("depth")?,
            },
            "cc_pop" => EventKind::CcPop {
                depth: num32("depth")?,
            },
            "cc_overflow" => EventKind::CcOverflow {
                depth: num32("depth")?,
            },
            "migration" => EventKind::Migration {
                from: num32("from")?,
                to: num32("to")?,
            },
            "warm_seed" => EventKind::WarmSeed {
                seeded: num32("seeded")?,
                pruned: num32("pruned")?,
                max_id: num("max_id")?,
            },
            "sample" => EventKind::Sample {
                generation: num32("generation")?,
                id: num("id")?,
                site: num32("site")?,
                leaf: num32("leaf")?,
                root: num32("root")?,
                fingerprint: num32("fingerprint")?,
                weight: num32("weight")?,
                depth: num32("depth")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(EventRecord {
            seq: num("seq")?,
            nanos: num("nanos")?,
            tid: num32("tid")?,
            kind,
        })
    }
}

impl EventKind {
    /// Payload fields as `(name, value)` pairs for JSON rendering.
    fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::Trap {
                site,
                caller,
                callee,
            }
            | EventKind::EdgeDiscovered {
                site,
                caller,
                callee,
            } => vec![
                ("site", u64::from(site)),
                ("caller", u64::from(caller)),
                ("callee", u64::from(callee)),
            ],
            EventKind::SitePatched { site, targets } => {
                vec![("site", u64::from(site)), ("targets", u64::from(targets))]
            }
            EventKind::ReencodeBegin { generation } => {
                vec![("generation", u64::from(generation))]
            }
            EventKind::ReencodeEnd {
                generation,
                applied,
                cost,
                nodes,
                edges,
                max_id,
            } => vec![
                ("generation", u64::from(generation)),
                ("applied", u64::from(applied)),
                ("cost", cost),
                ("nodes", u64::from(nodes)),
                ("edges", u64::from(edges)),
                ("max_id", max_id),
            ],
            EventKind::CcPush { depth }
            | EventKind::CcPop { depth }
            | EventKind::CcOverflow { depth } => vec![("depth", u64::from(depth))],
            EventKind::Migration { from, to } => {
                vec![("from", u64::from(from)), ("to", u64::from(to))]
            }
            EventKind::WarmSeed {
                seeded,
                pruned,
                max_id,
            } => vec![
                ("seeded", u64::from(seeded)),
                ("pruned", u64::from(pruned)),
                ("max_id", max_id),
            ],
            EventKind::Sample {
                generation,
                id,
                site,
                leaf,
                root,
                fingerprint,
                weight,
                depth,
            } => vec![
                ("generation", u64::from(generation)),
                ("id", id),
                ("site", u64::from(site)),
                ("leaf", u64::from(leaf)),
                ("root", u64::from(root)),
                ("fingerprint", u64::from(fingerprint)),
                ("weight", u64::from(weight)),
                ("depth", u64::from(depth)),
            ],
        }
    }
}

/// Renders a slice of records as a JSON array, one object per line.
#[must_use]
pub fn events_to_json(events: &[EventRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&ev.to_json());
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Parses the JSON array produced by [`events_to_json`].
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn events_from_json(text: &str) -> Result<Vec<EventRecord>, String> {
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        out.push(EventRecord::from_json(line)?);
    }
    Ok(out)
}

/// Splits a one-line flat JSON object into `(key, value)` string pairs.
/// Values keep their literal text except string values, which are
/// unquoted. Nested objects/arrays are rejected.
fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    let mut pairs = Vec::new();
    for part in split_top_level(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed pair `{part}`"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if value.starts_with('{') || value.starts_with('[') {
            return Err(format!("nested value for `{key}` not supported"));
        }
        let value = match value {
            "true" => "1".to_string(),
            "false" => "0".to_string(),
            other => other.trim_matches('"').to_string(),
        };
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Splits on commas that are not inside a quoted string.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for ch in body.chars() {
        match ch {
            '"' => {
                in_string = !in_string;
                current.push(ch);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    parts.push(current);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kinds() -> Vec<EventKind> {
        vec![
            EventKind::Trap {
                site: 7,
                caller: 1,
                callee: 2,
            },
            EventKind::SitePatched {
                site: 7,
                targets: 3,
            },
            EventKind::EdgeDiscovered {
                site: 7,
                caller: 1,
                callee: 2,
            },
            EventKind::ReencodeBegin { generation: 4 },
            EventKind::ReencodeEnd {
                generation: 5,
                applied: true,
                cost: 1234,
                nodes: 10,
                edges: 22,
                max_id: 99,
            },
            EventKind::ReencodeEnd {
                generation: 5,
                applied: false,
                cost: 50,
                nodes: 0,
                edges: 0,
                max_id: 0,
            },
            EventKind::CcPush { depth: 3 },
            EventKind::CcPop { depth: 2 },
            EventKind::CcOverflow { depth: 64 },
            EventKind::Migration { from: 2, to: 5 },
            EventKind::WarmSeed {
                seeded: 40,
                pruned: 2,
                max_id: 500,
            },
            EventKind::Sample {
                generation: 3,
                id: 0xdead_beef_cafe,
                site: 12,
                leaf: 4,
                root: 0,
                fingerprint: 0x9e37_79b9,
                weight: 509,
                depth: 17,
            },
        ]
    }

    #[test]
    fn words_roundtrip_every_kind() {
        for (i, kind) in sample_kinds().into_iter().enumerate() {
            let rec = EventRecord {
                seq: i as u64 * 3 + 1,
                nanos: 1_000_000 + i as u64,
                tid: u32::try_from(i).unwrap(),
                kind,
            };
            let back = EventRecord::from_words(rec.to_words()).expect("decodable");
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn json_roundtrip_every_kind() {
        let records: Vec<EventRecord> = sample_kinds()
            .into_iter()
            .enumerate()
            .map(|(i, kind)| EventRecord {
                seq: i as u64,
                nanos: 42 + i as u64,
                tid: 1,
                kind,
            })
            .collect();
        let text = events_to_json(&records);
        let back = events_from_json(&text).expect("parse");
        assert_eq!(records, back);
    }

    #[test]
    fn sample_wire_encoding_saturates_weight_and_depth() {
        let rec = EventRecord {
            seq: 1,
            nanos: 2,
            tid: 3,
            kind: EventKind::Sample {
                generation: 9,
                id: u64::MAX,
                site: 1,
                leaf: 2,
                root: 0,
                fingerprint: u32::MAX,
                weight: 1 << 20,
                depth: 1 << 20,
            },
        };
        let back = EventRecord::from_words(rec.to_words()).expect("decodable");
        match back.kind {
            EventKind::Sample {
                id, weight, depth, ..
            } => {
                assert_eq!(id, u64::MAX);
                assert_eq!(weight, 0xffff);
                assert_eq!(depth, 0xffff);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn bad_words_rejected() {
        assert!(EventRecord::from_words([999, 0, 0, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn bad_json_rejected() {
        assert!(EventRecord::from_json("{\"seq\":1}").is_err());
        assert!(EventRecord::from_json("not json").is_err());
        assert!(
            EventRecord::from_json("{\"seq\":1,\"nanos\":2,\"tid\":0,\"event\":\"mystery\"}")
                .is_err()
        );
    }
}
