//! Fleet drain pump: one labeled observability surface for many runtimes.
//!
//! A multi-tenant fleet runs one `MetricsRegistry` + journal per tenant.
//! [`FleetPump`] merges their drained state into a single surface: each
//! member keeps its latest [`MetricsSnapshot`] and journal totals under a
//! stable tenant label, [`FleetPump::aggregate`] folds every member into
//! one fleet-wide snapshot (via [`MetricsSnapshot::absorb`]), and the
//! exporters emit a self-contained Prometheus/JSON document — per-tenant
//! series carry a `tenant="…"` label and fleet totals use a
//! `dacce_fleet_` prefix, so a fleet scrape never collides with the
//! per-instance `dacce_*` series of a standalone exporter.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// One tenant's drained observability state.
#[derive(Clone, Debug, Default)]
pub struct FleetMember {
    /// Latest metrics snapshot recorded for this tenant.
    pub snapshot: MetricsSnapshot,
    /// Journal events drained from this tenant so far.
    pub events: u64,
}

/// Merges per-tenant metrics snapshots and journal drains into one
/// labeled, aggregable surface. Labels are stable tenant identifiers
/// (registration labels or `tenant-<id>` strings); members render in
/// label order.
#[derive(Clone, Debug, Default)]
pub struct FleetPump {
    members: BTreeMap<String, FleetMember>,
}

/// The per-tenant counter series the Prometheus export emits; a curated
/// health set, not the full registry (the aggregate carries the rest).
const TENANT_SERIES: [&str; 8] = [
    "traps",
    "reencodes",
    "migrations",
    "samples",
    "lineage_adoptions",
    "lineage_publishes",
    "lineage_divergences",
    "journal_events",
];

fn tenant_value(member: &FleetMember, series: &str) -> u64 {
    let s = &member.snapshot;
    match series {
        "traps" => s.traps,
        "reencodes" => s.reencodes,
        "migrations" => s.migrations,
        "samples" => s.samples,
        "lineage_adoptions" => s.lineage_adoptions,
        "lineage_publishes" => s.lineage_publishes,
        "lineage_divergences" => s.lineage_divergences,
        "journal_events" => member.events,
        _ => unreachable!("unknown tenant series {series}"),
    }
}

impl FleetPump {
    /// An empty pump.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (replaces) a tenant's latest metrics snapshot.
    pub fn record(&mut self, label: &str, snapshot: MetricsSnapshot) {
        self.members.entry(label.to_string()).or_default().snapshot = snapshot;
    }

    /// Adds `drained` journal events to a tenant's running total.
    pub fn note_events(&mut self, label: &str, drained: u64) {
        self.members.entry(label.to_string()).or_default().events += drained;
    }

    /// Drops a tenant (after eviction). Returns whether it existed.
    pub fn remove(&mut self, label: &str) -> bool {
        self.members.remove(label).is_some()
    }

    /// Number of tenants recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no tenant has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in label order.
    pub fn members(&self) -> impl Iterator<Item = (&str, &FleetMember)> {
        self.members.iter().map(|(l, m)| (l.as_str(), m))
    }

    /// Folds every member into one fleet-wide snapshot: counters and
    /// histograms add, gauges take the maximum, per-tenant generation
    /// tables are dropped (they do not merge).
    #[must_use]
    pub fn aggregate(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for member in self.members.values() {
            out.absorb(&member.snapshot);
        }
        out
    }

    /// Total journal events drained across the fleet.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.members.values().map(|m| m.events).sum()
    }

    /// Prometheus-style text: per-tenant labeled series plus
    /// `dacce_fleet_` aggregates. Self-contained — no name collides with
    /// the per-instance `dacce_*` export.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for series in TENANT_SERIES {
            let _ = writeln!(out, "# TYPE dacce_tenant_{series}_total counter");
            for (label, member) in &self.members {
                let _ = writeln!(
                    out,
                    "dacce_tenant_{series}_total{{tenant=\"{label}\"}} {}",
                    tenant_value(member, series)
                );
            }
        }
        let agg = self.aggregate();
        let _ = writeln!(out, "# TYPE dacce_fleet_tenants gauge");
        let _ = writeln!(out, "dacce_fleet_tenants {}", self.members.len());
        for (name, value) in [
            ("traps", agg.traps),
            ("edges_discovered", agg.edges_discovered),
            ("reencodes", agg.reencodes),
            ("reencode_aborts", agg.reencode_aborts),
            ("migrations", agg.migrations),
            ("samples", agg.samples),
            ("lineage_adoptions", agg.lineage_adoptions),
            ("lineage_publishes", agg.lineage_publishes),
            ("lineage_divergences", agg.lineage_divergences),
            ("journal_events", self.total_events()),
            ("journal_dropped", agg.journal_dropped),
        ] {
            let _ = writeln!(out, "# TYPE dacce_fleet_{name}_total counter");
            let _ = writeln!(out, "dacce_fleet_{name}_total {value}");
        }
        out
    }

    /// One JSON document: every tenant's full metrics snapshot plus the
    /// fleet aggregate.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"tenants\":[");
        for (i, (label, member)) in self.members.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tenant\":\"{label}\",\"journal_events\":{},\"metrics\":{}}}",
                member.events,
                member.snapshot.to_json()
            );
        }
        let _ = write!(
            out,
            "],\"aggregate\":{},\"tenant_count\":{}}}",
            self.aggregate().to_json(),
            self.members.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(traps: u64, adoptions: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            traps,
            lineage_adoptions: adoptions,
            samples: 10,
            ..MetricsSnapshot::default()
        }
    }

    #[test]
    fn aggregate_sums_members() {
        let mut pump = FleetPump::new();
        pump.record("a", snap(3, 1));
        pump.record("b", snap(4, 2));
        pump.note_events("a", 100);
        pump.note_events("b", 50);
        let agg = pump.aggregate();
        assert_eq!(agg.traps, 7);
        assert_eq!(agg.lineage_adoptions, 3);
        assert_eq!(agg.samples, 20);
        assert_eq!(pump.total_events(), 150);
        // Re-recording replaces, not accumulates.
        pump.record("a", snap(5, 1));
        assert_eq!(pump.aggregate().traps, 9);
    }

    #[test]
    fn prometheus_is_labeled_and_collision_free() {
        let mut pump = FleetPump::new();
        pump.record("svc-0", snap(2, 0));
        pump.record("svc-1", snap(0, 4));
        let prom = pump.to_prometheus();
        assert!(prom.contains("dacce_tenant_traps_total{tenant=\"svc-0\"} 2"));
        assert!(prom.contains("dacce_tenant_lineage_adoptions_total{tenant=\"svc-1\"} 4"));
        assert!(prom.contains("dacce_fleet_tenants 2"));
        assert!(prom.contains("dacce_fleet_traps_total 2"));
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.starts_with("dacce_tenant_") || name.starts_with("dacce_fleet_"),
                "fleet series {name} must not collide with per-instance dacce_* names"
            );
        }
    }

    #[test]
    fn json_parses_and_carries_every_tenant() {
        let mut pump = FleetPump::new();
        pump.record("x", snap(1, 0));
        pump.record("y", snap(2, 3));
        let json = pump.to_json();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "balanced braces in {json}");
        assert!(json.contains("\"tenant\":\"x\""));
        assert!(json.contains("\"tenant\":\"y\""));
        assert!(json.contains("\"tenant_count\":2"));
    }

    #[test]
    fn remove_drops_a_member() {
        let mut pump = FleetPump::new();
        pump.record("gone", snap(9, 9));
        assert!(pump.remove("gone"));
        assert!(!pump.remove("gone"));
        assert!(pump.is_empty());
        assert_eq!(pump.aggregate().traps, 0);
    }
}
