//! Runtime observability for the DACCE reproduction.
//!
//! Three pieces, designed so the encoded fast path pays at most one
//! relaxed atomic load when observability is compiled in but idle:
//!
//! - **Event journal** ([`Journal`]): typed lifecycle events
//!   ([`EventKind`]) recorded into per-writer, fixed-capacity, lock-free
//!   ring buffers ([`ring::EventRing`]) with overwrite-oldest semantics,
//!   drained on demand into one stream ordered by a global sequence
//!   number. Streams round-trip through JSON ([`events_to_json`] /
//!   [`events_from_json`]) and replay into aggregate counters
//!   ([`JournalAggregates`]) comparable with the engine's `DacceStats`.
//! - **Metrics registry** ([`MetricsRegistry`]): sharded counters and
//!   log₂-bucketed histograms plus the per-generation dictionary table,
//!   snapshotted into plain data ([`MetricsSnapshot`]) and exported as
//!   JSON or Prometheus-style text.
//! - **Fleet pump** ([`FleetPump`]): merges many runtimes' drained
//!   metrics and journals into one labeled surface — per-tenant
//!   `tenant="…"` Prometheus series plus `dacce_fleet_` aggregates.
//! - **Continuous profiler** ([`profiler`]): the deterministic
//!   budget-bounded [`Sampler`] behind `Sample` events, the re-encode
//!   [`SpanTimeline`] with its pause histogram, and collapsed-stack
//!   [`FlameGraph`] export with lineage-keyed fleet merge.
//! - The `dacce` core crate wires both into the engine behind its `obs`
//!   feature; the `dacce-top` binary renders them live (`--fleet` for the
//!   multi-tenant view).
//!
//! This crate is dependency-free and contains no `unsafe`.

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod fleet;
pub mod journal;
pub mod metrics;
pub mod profiler;
pub mod ring;

pub use event::{events_from_json, events_to_json, EventKind, EventRecord};
pub use fleet::{FleetMember, FleetPump};
pub use journal::{Journal, JournalAggregates, JournalBatch, JournalConfig, JournalWriter};
pub use metrics::{
    Counter, GenerationInfo, Histogram, HistogramSnapshot, IdHeadroom, MetricsRegistry,
    MetricsSnapshot,
};
pub use profiler::{merge_by_lineage, FlameGraph, ReencodeSpan, Sampler, SpanTimeline};
