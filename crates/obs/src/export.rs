//! Renders a [`MetricsSnapshot`] as JSON and Prometheus-style text.
//!
//! Both writers are hand-rolled (no serde in the dependency closure). The
//! JSON form nests histograms and the generation table; the Prometheus
//! form flattens everything into `dacce_*` series with `HELP`/`TYPE`
//! headers, cumulative `_bucket{le=...}` histogram series, and a
//! `generation` label on the dictionary table gauges.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"traps\": {},", self.traps);
        let _ = writeln!(s, "  \"edges_discovered\": {},", self.edges_discovered);
        let _ = writeln!(s, "  \"sites_patched\": {},", self.sites_patched);
        let _ = writeln!(s, "  \"reencodes\": {},", self.reencodes);
        let _ = writeln!(s, "  \"reencode_aborts\": {},", self.reencode_aborts);
        let _ = writeln!(s, "  \"migrations\": {},", self.migrations);
        let _ = writeln!(s, "  \"cc_overflows\": {},", self.cc_overflows);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(s, "  \"profiler_samples\": {},", self.profiler_samples);
        let _ = writeln!(
            s,
            "  \"profiler_sample_weight\": {},",
            self.profiler_sample_weight
        );
        let _ = writeln!(s, "  \"warm_seeded_edges\": {},", self.warm_seeded_edges);
        let _ = writeln!(s, "  \"warm_pruned_edges\": {},", self.warm_pruned_edges);
        let _ = writeln!(s, "  \"icache_hits\": {},", self.icache_hits);
        let _ = writeln!(s, "  \"icache_misses\": {},", self.icache_misses);
        let _ = writeln!(s, "  \"superop_hits\": {},", self.superop_hits);
        let _ = writeln!(s, "  \"superop_misses\": {},", self.superop_misses);
        let _ = writeln!(
            s,
            "  \"superop_invalidations\": {},",
            self.superop_invalidations
        );
        let _ = writeln!(
            s,
            "  \"superop_republishes\": {},",
            self.superop_republishes
        );
        let _ = writeln!(s, "  \"superop_compiled\": {},", self.superop_compiled);
        let _ = writeln!(s, "  \"superop_candidates\": {},", self.superop_candidates);
        let _ = writeln!(s, "  \"degraded_traps\": {},", self.degraded_traps);
        let _ = writeln!(s, "  \"reencode_retries\": {},", self.reencode_retries);
        let _ = writeln!(s, "  \"cc_spills\": {},", self.cc_spills);
        let _ = writeln!(s, "  \"lock_poisonings\": {},", self.lock_poisonings);
        let _ = writeln!(s, "  \"slot_failures\": {},", self.slot_failures);
        let _ = writeln!(s, "  \"lineage_adoptions\": {},", self.lineage_adoptions);
        let _ = writeln!(s, "  \"lineage_publishes\": {},", self.lineage_publishes);
        let _ = writeln!(
            s,
            "  \"lineage_divergences\": {},",
            self.lineage_divergences
        );
        let _ = writeln!(s, "  \"dispatch_slots\": {},", self.dispatch_slots);
        let _ = writeln!(s, "  \"dispatch_span\": {},", self.dispatch_span);
        let _ = writeln!(s, "  \"journal_dropped\": {},", self.journal_dropped);
        let _ = writeln!(
            s,
            "  \"id_headroom\": {{\"max_id\": {}, \"bits_used\": {}, \"bits_spare\": {}}},",
            self.id_headroom.max_id, self.id_headroom.bits_used, self.id_headroom.bits_spare
        );
        s.push_str("  \"generations\": [");
        for (i, g) in self.generations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"generation\": {}, \"nodes\": {}, \"edges\": {}, \"max_id\": {}, \"cost\": {}}}",
                g.generation, g.nodes, g.edges, g.max_id, g.cost
            );
        }
        if self.generations.is_empty() {
            s.push_str("],\n");
        } else {
            s.push_str("\n  ],\n");
        }
        json_histogram(&mut s, "trap_ns", &self.trap_ns, true);
        json_histogram(&mut s, "reencode_cost", &self.reencode_cost, true);
        json_histogram(&mut s, "cc_depth", &self.cc_depth, true);
        json_histogram(&mut s, "sampled_ids", &self.sampled_ids, false);
        s.push_str("}\n");
        s
    }

    /// Renders the snapshot as Prometheus-style exposition text.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let counters: [(&str, &str, u64); 27] = [
            ("dacce_traps_total", "Cold-start traps handled", self.traps),
            (
                "dacce_edges_discovered_total",
                "New call edges added to the dynamic graph",
                self.edges_discovered,
            ),
            (
                "dacce_sites_patched_total",
                "Call sites (re)patched",
                self.sites_patched,
            ),
            (
                "dacce_reencodes_total",
                "Re-encode attempts, applied or aborted",
                self.reencodes,
            ),
            (
                "dacce_reencode_aborts_total",
                "Re-encode attempts aborted on overflow",
                self.reencode_aborts,
            ),
            (
                "dacce_migrations_total",
                "Threads lazily migrated across generations",
                self.migrations,
            ),
            (
                "dacce_cc_overflows_total",
                "New ccStack high-water marks at or above the watermark",
                self.cc_overflows,
            ),
            ("dacce_samples_total", "Context samples taken", self.samples),
            (
                "dacce_profiler_samples_total",
                "Continuous-profiler samples captured",
                self.profiler_samples,
            ),
            (
                "dacce_profiler_sample_weight_total",
                "Events represented by profiler samples",
                self.profiler_sample_weight,
            ),
            (
                "dacce_warm_seeded_edges_total",
                "Warm-start edges seeded",
                self.warm_seeded_edges,
            ),
            (
                "dacce_warm_pruned_edges_total",
                "Warm-start edges pruned for id budget",
                self.warm_pruned_edges,
            ),
            (
                "dacce_icache_hits_total",
                "Indirect-call inline-cache hits",
                self.icache_hits,
            ),
            (
                "dacce_icache_misses_total",
                "Indirect-call inline-cache misses",
                self.icache_misses,
            ),
            (
                "dacce_superop_hits_total",
                "Superop windows executed as memoized net effects",
                self.superop_hits,
            ),
            (
                "dacce_superop_misses_total",
                "Superop probes that fell back to the per-event loop",
                self.superop_misses,
            ),
            (
                "dacce_superop_invalidations_total",
                "Compiled superops dropped on republish",
                self.superop_invalidations,
            ),
            (
                "dacce_superop_republishes_total",
                "Snapshot publications (superop epoch boundaries)",
                self.superop_republishes,
            ),
            (
                "dacce_degraded_traps_total",
                "Traps taken on degraded trap-everything nodes",
                self.degraded_traps,
            ),
            (
                "dacce_reencode_retries_total",
                "Re-encode attempts re-armed after an abort",
                self.reencode_retries,
            ),
            (
                "dacce_cc_spills_total",
                "ccStack watermark-shedding spill events",
                self.cc_spills,
            ),
            (
                "dacce_lock_poisonings_total",
                "Slow-path lock acquisitions recovered from poisoning",
                self.lock_poisonings,
            ),
            (
                "dacce_slot_failures_total",
                "Dispatch-slot allocations refused by an injected cap",
                self.slot_failures,
            ),
            (
                "dacce_lineage_adoptions_total",
                "Shared-lineage generations adopted instead of re-encoding",
                self.lineage_adoptions,
            ),
            (
                "dacce_lineage_publishes_total",
                "Applied re-encodings published into a shared lineage",
                self.lineage_publishes,
            ),
            (
                "dacce_lineage_divergences_total",
                "Tenants diverged copy-on-write off their shared lineage",
                self.lineage_divergences,
            ),
            (
                "dacce_journal_dropped_total",
                "Journal records lost to ring overwrites",
                self.journal_dropped,
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(s, "# HELP {name} {help}");
            let _ = writeln!(s, "# TYPE {name} counter");
            let _ = writeln!(s, "{name} {value}");
        }
        let gauges: [(&str, &str, u64); 8] = [
            (
                "dacce_dictionaries",
                "Encoding generations with a live decode dictionary",
                self.generations.len() as u64,
            ),
            (
                "dacce_max_id",
                "maxID of the current encoding generation",
                self.id_headroom.max_id,
            ),
            (
                "dacce_id_bits_used",
                "Bits needed to represent the current maxID",
                u64::from(self.id_headroom.bits_used),
            ),
            (
                "dacce_id_bits_spare",
                "Bits of u64 headroom before context ids overflow",
                u64::from(self.id_headroom.bits_spare),
            ),
            (
                "dacce_dispatch_slots",
                "Allocated dispatch-table slots (compiled sites)",
                self.dispatch_slots,
            ),
            (
                "dacce_dispatch_span",
                "Site-id index range the dispatch slot vector spans",
                self.dispatch_span,
            ),
            (
                "dacce_superop_table_size",
                "Superops compiled into the latest published snapshot",
                self.superop_compiled,
            ),
            (
                "dacce_superop_candidates",
                "Candidate windows installed for superop compilation",
                self.superop_candidates,
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(s, "# HELP {name} {help}");
            let _ = writeln!(s, "# TYPE {name} gauge");
            let _ = writeln!(s, "{name} {value}");
        }
        for (name, help) in [
            ("dacce_dict_nodes", "Nodes per encoding generation"),
            ("dacce_dict_edges", "Edges per encoding generation"),
            ("dacce_dict_max_id", "maxID per encoding generation"),
        ] {
            let _ = writeln!(s, "# HELP {name} {help}");
            let _ = writeln!(s, "# TYPE {name} gauge");
            for g in &self.generations {
                let value = match name {
                    "dacce_dict_nodes" => u64::from(g.nodes),
                    "dacce_dict_edges" => u64::from(g.edges),
                    _ => g.max_id,
                };
                let _ = writeln!(s, "{name}{{generation=\"{}\"}} {value}", g.generation);
            }
        }
        prom_histogram(
            &mut s,
            "dacce_trap_ns",
            "Trap-handling latency in nanoseconds",
            &self.trap_ns,
        );
        prom_histogram(
            &mut s,
            "dacce_reencode_cost",
            "Abstract cost per re-encode attempt",
            &self.reencode_cost,
        );
        prom_histogram(
            &mut s,
            "dacce_cc_depth",
            "ccStack depth at sample points",
            &self.cc_depth,
        );
        prom_histogram(
            &mut s,
            "dacce_sampled_ids",
            "Context ids observed at sample points",
            &self.sampled_ids,
        );
        s
    }
}

fn json_histogram(s: &mut String, name: &str, h: &HistogramSnapshot, trailing_comma: bool) {
    let _ = write!(
        s,
        "  \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
        h.count,
        h.sum,
        h.max,
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99)
    );
    for (i, (le, n)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{{\"le\": {le}, \"count\": {n}}}");
    }
    s.push_str("]}");
    if trailing_comma {
        s.push(',');
    }
    s.push('\n');
}

fn prom_histogram(s: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    let _ = writeln!(s, "# HELP {name} {help}");
    let _ = writeln!(s, "# TYPE {name} histogram");
    let mut cumulative = 0;
    for (le, n) in h.nonzero_buckets() {
        cumulative += n;
        if le == u64::MAX {
            let _ = writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        } else {
            let _ = writeln!(s, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
    }
    if cumulative < h.count {
        cumulative = h.count;
    }
    let _ = writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(s, "{name}_sum {}", h.sum);
    let _ = writeln!(s, "{name}_count {}", h.count);
    let _ = writeln!(s, "{name}_max {}", h.max);
    // Percentile summaries from the log2 buckets (upper-bound estimates),
    // so dashboards need not reimplement the quantile walk.
    let _ = writeln!(s, "{name}_p50 {}", h.quantile(0.50));
    let _ = writeln!(s, "{name}_p95 {}", h.quantile(0.95));
    let _ = writeln!(s, "{name}_p99 {}", h.quantile(0.99));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{GenerationInfo, MetricsRegistry};

    fn populated() -> MetricsSnapshot {
        let reg = MetricsRegistry::default();
        reg.traps.add(12);
        reg.edges_discovered.add(10);
        reg.reencodes.add(2);
        reg.trap_ns.observe(1500);
        reg.trap_ns.observe(900);
        reg.cc_depth.observe(4);
        reg.superop_hits.add(3);
        reg.superop_misses.add(1);
        reg.superop_republishes.add(2);
        reg.record_superops(5, 9);
        reg.record_generation(GenerationInfo {
            generation: 1,
            nodes: 8,
            edges: 10,
            max_id: 40,
            cost: 0,
        });
        reg.record_generation(GenerationInfo {
            generation: 2,
            nodes: 9,
            edges: 14,
            max_id: 70,
            cost: 33,
        });
        reg.snapshot()
    }

    #[test]
    fn json_is_balanced_and_contains_fields() {
        let json = populated().to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"traps\": 12"));
        assert!(json.contains("\"generation\": 2"));
        assert!(json.contains("\"trap_ns\""));
        // Both trap_ns observations land in log2 buckets bounded by 1023
        // and 2047; the quantile reports the bucket upper bound.
        assert!(json.contains("\"p50\": 1023"));
        assert!(json.contains("\"p99\": 1500"));
    }

    #[test]
    fn empty_snapshot_json_is_balanced() {
        let json = MetricsSnapshot::default().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn prometheus_contains_series_and_labels() {
        let text = populated().to_prometheus();
        assert!(text.contains("dacce_traps_total 12"));
        assert!(text.contains("dacce_dictionaries 2"));
        assert!(text.contains("dacce_superop_hits_total 3"));
        assert!(text.contains("dacce_superop_misses_total 1"));
        assert!(text.contains("dacce_superop_invalidations_total 0"));
        assert!(text.contains("dacce_superop_republishes_total 2"));
        assert!(text.contains("dacce_superop_table_size 5"));
        assert!(text.contains("dacce_superop_candidates 9"));
        assert!(text.contains("dacce_dict_edges{generation=\"2\"} 14"));
        assert!(text.contains("dacce_trap_ns_count 2"));
        assert!(text.contains("dacce_trap_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dacce_trap_ns_p50 "));
        assert!(text.contains("dacce_trap_ns_p95 "));
        assert!(text.contains("dacce_trap_ns_p99 1500"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
            assert!(parts.next().is_some());
        }
    }
}
