//! Whole-program static call-graph construction.
//!
//! PCCE needs the complete call graph before encoding (§2.2, Issue 1 of the
//! DACCE paper). The construction itself — conservative points-to handling
//! of indirect sites, PLT resolution, spawn targets as extra roots — now
//! lives in the reusable `dacce-analyze` crate ([`dacce_analyze::graph`]),
//! where it also feeds SCC condensation, tail reachability and warm-start
//! seeding; PCCE re-exports it unchanged.

pub use dacce_analyze::graph::{build_static_graph, StaticGraph};

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::model::TargetChoice;

    #[test]
    fn static_graph_includes_cold_code_and_false_positives() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let hot = b.function("hot");
        let cold = b.function("cold_error_handler");
        let fp = b.function("never_a_target");
        let table = b.table_with_extra(vec![hot], vec![fp]);
        b.body(main)
            .call(hot)
            .call_p(cold, [0.0, 0.0]) // never executes, statically present
            .indirect(table, TargetChoice::Uniform, [1.0, 1.0], 1)
            .done();
        b.body(hot).work(1).done();
        b.body(cold).work(1).done();
        b.body(fp).work(1).done();
        let p = b.build(main);

        let sg = build_static_graph(&p);
        assert_eq!(sg.graph.node_count(), 4);
        // Edges: main->hot (direct), main->cold, main->hot (indirect),
        // main->fp (false positive).
        assert_eq!(sg.graph.edge_count(), 4);
        assert_eq!(sg.false_positive_edges, 1);
        assert_eq!(sg.roots, vec![main]);
        let targets = &sg.indirect_targets[&p.call_ops().nth(2).unwrap().1.site];
        assert_eq!(targets, &vec![hot, fp]);
    }

    #[test]
    fn spawn_targets_become_roots() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let worker = b.function("worker");
        b.body(main).spawn(worker, [1.0, 1.0]).done();
        b.body(worker).work(1).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.roots, vec![main, worker]);
        assert!(sg.graph.contains_node(worker));
    }

    #[test]
    fn site_owner_is_recorded_for_every_call_op() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        b.body(main).call(a).done();
        b.body(a).call_p(a, [0.5, 0.5]).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.site_owner.len(), 2);
        let (owner0, op0) = p.call_ops().next().unwrap();
        assert_eq!(sg.site_owner[&op0.site], owner0);
    }
}
