//! Whole-program static call-graph construction.
//!
//! PCCE needs the complete call graph before encoding (§2.2, Issue 1 of the
//! DACCE paper). For direct calls the target is syntactic; for indirect
//! calls a conservative points-to analysis over-approximates the target set
//! — modelled here by each table's real targets plus its `pointsto_extra`
//! false positives; PLT calls are resolved post-link to their library
//! function. Spawn targets become additional graph roots.

use std::collections::HashMap;

use dacce_callgraph::{CallGraph, CallSiteId, Dispatch, FunctionId};
use dacce_program::{CalleeSpec, Program};

/// The static graph together with the side tables the encoder and runtime
/// need.
#[derive(Clone, Debug, Default)]
pub struct StaticGraph {
    /// The complete call graph (cold code and false positives included).
    pub graph: CallGraph,
    /// Function containing each call site.
    pub site_owner: HashMap<CallSiteId, FunctionId>,
    /// Entry functions: `main` plus every spawn target.
    pub roots: Vec<FunctionId>,
    /// Conservative target list per indirect site, real targets first.
    pub indirect_targets: HashMap<CallSiteId, Vec<FunctionId>>,
    /// Number of points-to false-positive edges added.
    pub false_positive_edges: usize,
}

/// Builds the whole-program static call graph of `program`.
pub fn build_static_graph(program: &Program) -> StaticGraph {
    let mut out = StaticGraph::default();
    out.graph.ensure_node(program.main);
    out.roots.push(program.main);

    for (owner, op) in program.call_ops() {
        out.site_owner.insert(op.site, owner);
        match &op.callee {
            CalleeSpec::Direct(t) => {
                out.graph.add_edge(owner, *t, op.site, Dispatch::Direct);
            }
            CalleeSpec::Plt(t) => {
                out.graph.add_edge(owner, *t, op.site, Dispatch::Plt);
            }
            CalleeSpec::Spawn(t) => {
                out.graph.ensure_node(*t);
                if !out.roots.contains(t) {
                    out.roots.push(*t);
                }
            }
            CalleeSpec::Indirect { table, .. } => {
                let tbl = &program.tables[*table as usize];
                let mut targets = Vec::new();
                for &t in &tbl.targets {
                    out.graph.add_edge(owner, t, op.site, Dispatch::Indirect);
                    targets.push(t);
                }
                for &t in &tbl.pointsto_extra {
                    let (_, new) = out.graph.add_edge(owner, t, op.site, Dispatch::Indirect);
                    if new {
                        out.false_positive_edges += 1;
                    }
                    targets.push(t);
                }
                out.indirect_targets.insert(op.site, targets);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::model::TargetChoice;

    #[test]
    fn static_graph_includes_cold_code_and_false_positives() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let hot = b.function("hot");
        let cold = b.function("cold_error_handler");
        let fp = b.function("never_a_target");
        let table = b.table_with_extra(vec![hot], vec![fp]);
        b.body(main)
            .call(hot)
            .call_p(cold, [0.0, 0.0]) // never executes, statically present
            .indirect(table, TargetChoice::Uniform, [1.0, 1.0], 1)
            .done();
        b.body(hot).work(1).done();
        b.body(cold).work(1).done();
        b.body(fp).work(1).done();
        let p = b.build(main);

        let sg = build_static_graph(&p);
        assert_eq!(sg.graph.node_count(), 4);
        // Edges: main->hot (direct), main->cold, main->hot (indirect),
        // main->fp (false positive).
        assert_eq!(sg.graph.edge_count(), 4);
        assert_eq!(sg.false_positive_edges, 1);
        assert_eq!(sg.roots, vec![main]);
        let targets = &sg.indirect_targets[&p.call_ops().nth(2).unwrap().1.site];
        assert_eq!(targets, &vec![hot, fp]);
    }

    #[test]
    fn spawn_targets_become_roots() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let worker = b.function("worker");
        b.body(main).spawn(worker, [1.0, 1.0]).done();
        b.body(worker).work(1).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.roots, vec![main, worker]);
        assert!(sg.graph.contains_node(worker));
    }

    #[test]
    fn site_owner_is_recorded_for_every_call_op() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        b.body(main).call(a).done();
        b.body(a).call_p(a, [0.5, 0.5]).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.site_owner.len(), 2);
        let (owner0, op0) = p.call_ops().next().unwrap();
        assert_eq!(sg.site_owner[&op0.site], owner0);
    }
}
