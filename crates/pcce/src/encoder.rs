//! The static PCCE encoder.
//!
//! Encodes the complete static graph once, offline. Back edges are
//! classified on the *full* graph — which means cold code and points-to
//! false positives can turn genuinely hot edges into back edges, one of the
//! effects behind PCCE's higher `ccStack` traffic on the `perlbench` and
//! `xalancbmk` analogs (§6.4 of the DACCE paper). When the encoding
//! overflows the 64-bit id budget, edges the profiling run never saw are
//! deleted and the (smaller) graph re-encoded, exactly as the paper
//! describes in §6.3.

use std::collections::HashMap;

use dacce::patch::EdgeAction;
use dacce_callgraph::analysis::classify_back_edges;
use dacce_callgraph::encode::{encode_graph, EncodeOptions};
use dacce_callgraph::{CallGraph, CallSiteId, DecodeDict, EdgeId, FunctionId, TimeStamp};

use crate::profile::ProfileData;
use dacce_analyze::graph::StaticGraph;

/// Result of the offline encoding.
#[derive(Clone, Debug)]
pub struct PcceEncoding {
    /// The single static decode dictionary (timestamp 0).
    pub dict: DecodeDict,
    /// The graph the runtime instrumentation is generated from (pruned when
    /// the full graph overflowed).
    pub runtime_graph: CallGraph,
    /// Node count of the full static graph (Table 1's `Nodes`).
    pub full_nodes: usize,
    /// Edge count of the full static graph (Table 1's `Edges`).
    pub full_edges: usize,
    /// Maximum context count of the full graph, before any pruning; may
    /// exceed 64 bits (Table 1's `MaxID`, printed as `overflow` then).
    pub max_num_cc_full: u128,
    /// Whether the full graph overflowed the 64-bit budget.
    pub overflowed: bool,
    /// Edges deleted by overflow pruning.
    pub pruned_edges: usize,
    /// Instrumentation action per `(site, callee)` edge of the runtime
    /// graph.
    pub actions: HashMap<(CallSiteId, FunctionId), EdgeAction>,
    /// Inline compare chain per indirect site, hottest-first, including
    /// points-to false positives (PCCE has no hash fallback).
    pub indirect_chains: HashMap<CallSiteId, Vec<FunctionId>>,
}

/// Encodes a static graph with a profile.
#[derive(Debug)]
pub struct PcceEncoder;

impl PcceEncoder {
    /// Runs the offline encoding pipeline.
    ///
    /// # Panics
    ///
    /// Panics if even the profile-pruned graph overflows 64 bits — real
    /// executions (whose dynamic graphs DACCE also encodes) never do.
    pub fn encode(sg: &StaticGraph, profile: &ProfileData) -> PcceEncoding {
        let mut graph = sg.graph.clone();
        classify_back_edges(&mut graph, &sg.roots);
        // §2.2 Issue 2 of the DACCE paper: PCCE cannot encode calls into
        // dynamically loaded libraries — the bound target and its mapping
        // address are only known at runtime. PLT edges therefore stay
        // unencoded: like recursion, they save/restore the encoding
        // context through the ccStack (modelled by flagging them as back
        // edges, which excludes them from the numbering).
        let plt_edges: Vec<_> = graph
            .edges()
            .filter(|(_, e)| e.dispatch == dacce_callgraph::Dispatch::Plt)
            .map(|(eid, _)| eid)
            .collect();
        for eid in plt_edges {
            graph.edge_mut(eid).back = true;
        }

        let heat: HashMap<EdgeId, u64> = graph
            .edges()
            .map(|(eid, e)| (eid, profile.count(e.site, e.callee)))
            .collect();

        let full_enc = encode_graph(&graph, &sg.roots, &EncodeOptions::with_heat(heat));
        let full_nodes = graph.node_count();
        let full_edges = graph.edge_count();
        let max_num_cc_full = full_enc.max_num_cc();
        let overflowed = full_enc.overflow;

        let (runtime_graph, enc, pruned_edges) = if overflowed {
            // Delete edges the profile never saw, *keeping* the back-edge
            // classification computed on the full graph (the generated
            // instrumentation was designed around the full cycle
            // structure).
            let mut pruned = CallGraph::new();
            for &root in &sg.roots {
                pruned.ensure_node(root);
            }
            let mut kept_back: Vec<(CallSiteId, FunctionId)> = Vec::new();
            let mut dropped = 0usize;
            for (_, e) in graph.edges() {
                if profile.count(e.site, e.callee) == 0 {
                    dropped += 1;
                    continue;
                }
                pruned.add_edge(e.caller, e.callee, e.site, e.dispatch);
                if e.back {
                    kept_back.push((e.site, e.callee));
                }
            }
            for (site, callee) in kept_back {
                let eid = pruned.edge_id(site, callee).expect("just inserted");
                pruned.edge_mut(eid).back = true;
            }
            let heat: HashMap<EdgeId, u64> = pruned
                .edges()
                .map(|(eid, e)| (eid, profile.count(e.site, e.callee)))
                .collect();
            let enc = encode_graph(&pruned, &sg.roots, &EncodeOptions::with_heat(heat));
            assert!(
                !enc.overflow,
                "profile-pruned PCCE graph still overflows 64 bits"
            );
            (pruned, enc, dropped)
        } else {
            (graph, full_enc, 0)
        };

        let dict = DecodeDict::from_encoding(&runtime_graph, &enc, TimeStamp::ZERO)
            .expect("overflow handled above");

        let mut actions = HashMap::new();
        for (eid, e) in runtime_graph.edges() {
            let action = if e.back {
                EdgeAction::Unencoded
            } else {
                EdgeAction::Encoded {
                    delta: enc.encoding_u64(eid).expect("within budget"),
                }
            };
            actions.insert((e.site, e.callee), action);
        }

        let mut indirect_chains = HashMap::new();
        for (&site, targets) in &sg.indirect_targets {
            let mut seen = std::collections::HashSet::new();
            let mut chain: Vec<FunctionId> = targets
                .iter()
                .copied()
                .filter(|t| seen.insert(*t))
                .collect();
            chain.sort_by_key(|&t| std::cmp::Reverse(profile.count(site, t)));
            indirect_chains.insert(site, chain);
        }

        PcceEncoding {
            dict,
            runtime_graph,
            full_nodes,
            full_edges,
            max_num_cc_full,
            overflowed,
            pruned_edges,
            actions,
            indirect_chains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_analyze::graph::build_static_graph;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::model::TargetChoice;
    use dacce_program::Program;

    fn diamond_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let l = b.function("left");
        let r = b.function("right");
        let sink = b.function("sink");
        b.body(main).call(l).call_p(r, [0.1, 0.1]).done();
        b.body(l).call(sink).done();
        b.body(r).call(sink).done();
        b.body(sink).work(1).done();
        b.build(main)
    }

    fn profile_with(counts: &[((u32, u32), u64)], p: &Program) -> ProfileData {
        let mut data = ProfileData::default();
        for &((site_idx, callee), count) in counts {
            let op = p.call_ops().nth(site_idx as usize).unwrap().1;
            data.edge_counts
                .insert((op.site, FunctionId::new(callee)), count);
            data.total_calls += count;
        }
        data
    }

    #[test]
    fn encoding_orders_by_profile_frequency() {
        let p = diamond_program();
        let sg = build_static_graph(&p);
        // Call ops in order: 0 main->left(1), 1 main->right(2),
        // 2 left->sink(3), 3 right->sink(3). The sink is reached
        // overwhelmingly through `right`.
        let prof = profile_with(
            &[((0, 1), 5), ((1, 2), 500), ((2, 3), 5), ((3, 3), 500)],
            &p,
        );
        let enc = PcceEncoder::encode(&sg, &prof);
        assert!(!enc.overflowed);
        assert_eq!(enc.full_nodes, 4);
        assert_eq!(enc.full_edges, 4);
        // The hot incoming edge of sink (from right) is encoded 0.
        let op_right_sink = p.call_ops().nth(3).unwrap().1;
        let op_left_sink = p.call_ops().nth(2).unwrap().1;
        assert_eq!(
            enc.actions[&(op_right_sink.site, FunctionId::new(3))],
            EdgeAction::Encoded { delta: 0 }
        );
        assert_eq!(
            enc.actions[&(op_left_sink.site, FunctionId::new(3))],
            EdgeAction::Encoded { delta: 1 }
        );
    }

    #[test]
    fn recursion_becomes_unencoded_back_edge() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let rec = b.function("rec");
        b.body(main).call(rec).done();
        b.body(rec).call_p(rec, [0.5, 0.5]).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        let prof = ProfileData::default();
        let enc = PcceEncoder::encode(&sg, &prof);
        let rec_op = p.call_ops().nth(1).unwrap().1;
        assert_eq!(
            enc.actions[&(rec_op.site, rec)],
            EdgeAction::Unencoded,
            "self edge must stay unencoded"
        );
    }

    #[test]
    fn overflow_prunes_unprofiled_edges() {
        // A ladder of diamonds overflows; the profile only exercised a
        // single chain through it.
        let mut b = ProgramBuilder::new();
        let stages = 130usize;
        let fns: Vec<_> = (0..=stages * 3 + 2)
            .map(|i| b.function(&format!("f{i}")))
            .collect();
        for s in 0..stages {
            let base = s * 3;
            b.body(fns[base])
                .call_p(fns[base + 1], [1.0, 1.0])
                .call_p(fns[base + 2], [0.0, 0.0])
                .done();
            b.body(fns[base + 1]).call(fns[base + 3]).done();
            b.body(fns[base + 2])
                .call_p(fns[base + 3], [0.0, 0.0])
                .done();
        }
        let p = b.build(fns[0]);
        let sg = build_static_graph(&p);

        // Profile: only the "+1 -> +3" chain was ever taken.
        let mut prof = ProfileData::default();
        for (owner, op) in p.call_ops() {
            let _ = owner;
            if op.prob[0] > 0.0 {
                if let dacce_program::CalleeSpec::Direct(t) = op.callee {
                    prof.edge_counts.insert((op.site, t), 10);
                }
            }
        }
        let enc = PcceEncoder::encode(&sg, &prof);
        assert!(enc.overflowed, "full ladder must overflow 64 bits");
        assert!(enc.pruned_edges > 0);
        assert!(enc.max_num_cc_full > u128::from(u64::MAX));
        assert!(enc.runtime_graph.edge_count() < enc.full_edges);
        assert!(enc.dict.max_id() < u64::MAX / 2);
    }

    #[test]
    fn indirect_chain_contains_false_positives_hot_first() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let hot = b.function("hot");
        let cold = b.function("cold");
        let fp = b.function("false_positive");
        let table = b.table_with_extra(vec![hot, cold], vec![fp]);
        b.body(main)
            .indirect(table, TargetChoice::Skewed { hot: 0.9 }, [1.0, 1.0], 1)
            .done();
        for t in [hot, cold, fp] {
            b.body(t).work(1).done();
        }
        let p = b.build(main);
        let sg = build_static_graph(&p);
        let site = p.call_ops().next().unwrap().1.site;
        let mut prof = ProfileData::default();
        prof.edge_counts.insert((site, hot), 900);
        prof.edge_counts.insert((site, cold), 100);
        let enc = PcceEncoder::encode(&sg, &prof);
        assert_eq!(enc.indirect_chains[&site], vec![hot, cold, fp]);
    }
}
