//! PCCE — Precise Calling Context Encoding (Sumner et al., ICSE 2010) —
//! as the *static* baseline of the DACCE evaluation.
//!
//! The DACCE paper compares against a simulated PCCE (§6.1): the complete
//! static call graph is built ahead of time (with conservative points-to
//! results for indirect calls and post-link PLT edges), a Pin profiling run
//! with the same input supplies indirect targets and edge frequencies "to
//! give PCCE a full potential of profiling", and the whole graph is encoded
//! once, offline. This crate reproduces that baseline:
//!
//! * [`dacce_analyze::graph`] builds the whole-program graph from the
//!   program model, including never-executed cold code and points-to
//!   false positives (shared with warm-start seeding and the verifier);
//! * [`profile`] is the Pin stand-in: an offline run collecting edge
//!   frequencies (it charges no cost — profiling happens before the
//!   measured run);
//! * [`encoder`] classifies back edges on the *complete* graph, encodes
//!   with profile-derived frequency ordering, detects 64-bit overflow
//!   (Table 1 reports `overflow` for the `perlbench` and `gcc` analogs)
//!   and, when it overflows, prunes never-profiled edges exactly as the
//!   paper describes;
//! * [`runtime::PcceRuntime`] executes the static instrumentation: encoded
//!   edges add/subtract `En(e)`, back edges and unexpected edges push the
//!   `ccStack`, indirect sites walk an inline compare chain over *all*
//!   identified targets (false positives included — the x264 effect), and
//!   tail-call-containing callees get static `TcStack` wrapping.
//!
//! Decoding reuses Algorithm 1 from the `dacce` crate with PCCE's single
//! static dictionary.

pub mod encoder;
pub mod profile;
pub mod runtime;

pub use encoder::{PcceEncoder, PcceEncoding};
pub use profile::{ProfileData, ProfilingRuntime};
pub use runtime::{PcceRuntime, PcceStats};
