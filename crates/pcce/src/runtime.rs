//! The PCCE measured-run runtime.
//!
//! Executes the statically generated instrumentation: encoded edges
//! add/subtract `En(e)`, back edges push the `ccStack` (PCCE has no
//! repetition compression), indirect sites walk the full conservative
//! compare chain, and callers of tail-call-containing functions get static
//! `TcStack` wrapping (a generosity: the original PCCE relies on source
//! instrumentation suppressing tail-call optimisation; our programs do
//! perform tail calls, so PCCE receives the same fix DACCE uses — without
//! it the comparison would be unfairly broken rather than just slower).

use std::collections::{HashMap, HashSet};

use dacce::context::{EncodedContext, SpawnLink};
use dacce::decode::decode_full;
use dacce::patch::EdgeAction;
use dacce::thread::{ShadowFrame, ThreadCtx};
use dacce_callgraph::{CallSiteId, DictStore, FunctionId, TimeStamp};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{CostModel, OracleStack, Program, ThreadId};

use crate::encoder::{PcceEncoder, PcceEncoding};
use crate::profile::ProfileData;
use dacce_analyze::graph::{build_static_graph, StaticGraph};

/// Statistics of one PCCE run (the PCCE half of Table 1).
#[derive(Clone, Debug, Default)]
pub struct PcceStats {
    /// Nodes of the full static graph.
    pub nodes: usize,
    /// Edges of the full static graph.
    pub edges: usize,
    /// Maximum context count of the full graph (may exceed 64 bits).
    pub max_num_cc: u128,
    /// Whether the static encoding overflowed 64 bits (`overflow` in
    /// Table 1).
    pub overflowed: bool,
    /// Edges deleted by overflow pruning.
    pub pruned_edges: usize,
    /// Dynamic call events processed.
    pub calls: u64,
    /// ccStack operations.
    pub ccstack_ops: u64,
    /// TcStack operations.
    pub tcstack_ops: u64,
    /// Samples recorded.
    pub samples: u64,
    /// ccStack depth at each sample (Figure 10 raw data).
    pub cc_depths: Vec<u32>,
    /// Calls through edges absent from the (pruned) static encoding.
    pub unexpected_edges: u64,
    /// Sample decodes that failed (0 expected).
    pub decode_errors: u64,
}

impl PcceStats {
    /// Mean ccStack depth over samples (Table 1's `depth`).
    pub fn mean_cc_depth(&self) -> f64 {
        if self.cc_depths.is_empty() {
            return 0.0;
        }
        self.cc_depths.iter().map(|&d| f64::from(d)).sum::<f64>() / self.cc_depths.len() as f64
    }
}

/// The PCCE baseline runtime. Construct with the profile gathered by
/// [`crate::ProfilingRuntime`] over the same workload.
#[derive(Debug)]
pub struct PcceRuntime {
    cost: CostModel,
    profile: ProfileData,
    encoding: Option<PcceEncoding>,
    site_owner: HashMap<CallSiteId, FunctionId>,
    tc_wrap_sites: HashSet<CallSiteId>,
    dicts: DictStore,
    threads: HashMap<ThreadId, ThreadCtx>,
    stats: PcceStats,
    max_id: u64,
}

impl PcceRuntime {
    /// Creates the runtime from an offline profile.
    pub fn new(profile: ProfileData, cost: CostModel) -> Self {
        PcceRuntime {
            cost,
            profile,
            encoding: None,
            site_owner: HashMap::new(),
            tc_wrap_sites: HashSet::new(),
            dicts: DictStore::new(),
            threads: HashMap::new(),
            stats: PcceStats::default(),
            max_id: 0,
        }
    }

    /// The run statistics.
    pub fn stats(&self) -> PcceStats {
        let mut s = self.stats.clone();
        for ctx in self.threads.values() {
            s.ccstack_ops += ctx.cc.ops();
            s.tcstack_ops += ctx.tc_ops;
        }
        s
    }

    /// The offline encoding (available after `attach`).
    pub fn encoding(&self) -> Option<&PcceEncoding> {
        self.encoding.as_ref()
    }

    fn enc(&self) -> &PcceEncoding {
        self.encoding.as_ref().expect("attach() ran")
    }

    /// Action plus dispatch cost for one dynamic call.
    fn lookup(&self, site: CallSiteId, callee: FunctionId) -> (Option<EdgeAction>, u64) {
        let enc = self.enc();
        let dispatch_cost = match enc.indirect_chains.get(&site) {
            Some(chain) => {
                let pos = chain.iter().position(|&t| t == callee);
                match pos {
                    Some(i) => (i as u64 + 1) * self.cost.compare,
                    None => chain.len() as u64 * self.cost.compare,
                }
            }
            None => 0,
        };
        (enc.actions.get(&(site, callee)).copied(), dispatch_cost)
    }

    fn snapshot(&self, tid: ThreadId) -> EncodedContext {
        let ctx = self.threads.get(&tid).expect("thread registered");
        EncodedContext {
            ts: TimeStamp::ZERO,
            id: ctx.id,
            leaf: ctx.current,
            root: ctx.root,
            cc: ctx.cc.entries().to_vec(),
            spawn: ctx.spawn.clone(),
        }
    }
}

impl ContextRuntime for PcceRuntime {
    fn name(&self) -> &'static str {
        "pcce"
    }

    fn attach(&mut self, program: &Program) {
        let sg: StaticGraph = build_static_graph(program);
        self.site_owner.clone_from(&sg.site_owner);
        let enc = PcceEncoder::encode(&sg, &self.profile);

        self.stats.nodes = enc.full_nodes;
        self.stats.edges = enc.full_edges;
        self.stats.max_num_cc = enc.max_num_cc_full;
        self.stats.overflowed = enc.overflowed;
        self.stats.pruned_edges = enc.pruned_edges;
        self.max_id = enc.dict.max_id();

        // Static tail-call analysis: wrap every site whose possible callees
        // include a tail-call-containing function.
        let tail_fns: HashSet<FunctionId> =
            program.functions_with_tail_calls().into_iter().collect();
        for (_, e) in enc.runtime_graph.edges() {
            if tail_fns.contains(&e.callee) {
                self.tc_wrap_sites.insert(e.site);
            }
        }
        // Conservative chains may also reach tail functions.
        for (&site, chain) in &enc.indirect_chains {
            if chain.iter().any(|t| tail_fns.contains(t)) {
                self.tc_wrap_sites.insert(site);
            }
        }

        self.dicts = DictStore::new();
        self.dicts.push(enc.dict.clone());
        self.encoding = Some(enc);
    }

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        let spawn = parent.map(|(ptid, site)| SpawnLink {
            site,
            parent: Box::new(self.snapshot(ptid)),
        });
        self.threads.insert(tid, ThreadCtx::new(root, spawn));
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        self.stats.calls += 1;
        let (action, mut cost) = self.lookup(ev.site, ev.callee);
        let action = match action {
            Some(a) => a,
            None => {
                self.stats.unexpected_edges += 1;
                EdgeAction::Unencoded
            }
        };
        let wrapped = !ev.tail && self.tc_wrap_sites.contains(&ev.site);
        let max_id = self.max_id;
        let ccstack_cost = self.cost.ccstack_op;
        let id_cost = self.cost.id_arith;
        let tc_cost = self.cost.tcstack_op;

        let ctx = self.threads.get_mut(&ev.tid).expect("thread registered");
        let saved_id = ctx.id;
        let saved_cc_len = ctx.cc.depth();
        let saved_top_count = ctx.cc.top().map_or(0, |e| e.count);
        if wrapped {
            ctx.tc_ops += 1;
            cost += tc_cost;
        }
        match action {
            EdgeAction::Encoded { delta } => {
                if delta != 0 {
                    ctx.id = ctx.id.wrapping_add(delta);
                    cost += id_cost;
                }
            }
            EdgeAction::Unencoded | EdgeAction::UnencodedCompressed => {
                ctx.cc.push(ctx.id, ev.site, ev.callee);
                ctx.id = max_id + 1;
                cost += ccstack_cost + id_cost;
            }
        }
        if !ev.tail {
            ctx.shadow.push(ShadowFrame {
                site: ev.site,
                callee: ev.callee,
                saved_id,
                saved_cc_len,
                saved_top_count,
                wrapped,
            });
        }
        ctx.current = ev.callee;
        cost
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        let (action, _) = self.lookup(ev.site, ev.callee);
        let action = action.unwrap_or(EdgeAction::Unencoded);
        let ccstack_cost = self.cost.ccstack_op;
        let id_cost = self.cost.id_arith;
        let tc_cost = self.cost.tcstack_op;

        let ctx = self.threads.get_mut(&ev.tid).expect("thread registered");
        let frame = ctx.shadow.pop().expect("balanced events");
        let mut cost = 0;
        if frame.wrapped {
            ctx.id = frame.saved_id;
            ctx.cc.truncate(frame.saved_cc_len);
            ctx.cc.restore_top_count(frame.saved_top_count);
            ctx.tc_ops += 1;
            cost += tc_cost;
        } else {
            match action {
                EdgeAction::Encoded { delta } => {
                    if delta != 0 {
                        ctx.id = ctx.id.wrapping_sub(delta);
                        cost += id_cost;
                    }
                }
                EdgeAction::Unencoded | EdgeAction::UnencodedCompressed => {
                    ctx.id = ctx.cc.pop();
                    cost += ccstack_cost;
                }
            }
        }
        ctx.current = ev.caller;
        cost
    }

    fn on_thread_exit(&mut self, tid: ThreadId) {
        if let Some(ctx) = self.threads.remove(&tid) {
            self.stats.ccstack_ops += ctx.cc.ops();
            self.stats.tcstack_ops += ctx.tc_ops;
        }
    }

    fn on_root_reset(&mut self, tid: ThreadId) {
        if let Some(ctx) = self.threads.get_mut(&tid) {
            ctx.reset();
        }
    }

    fn sample(&mut self, tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        let snap = self.snapshot(tid);
        self.stats.samples += 1;
        self.stats.cc_depths.push(snap.cc_depth() as u32);
        let cost = self.cost.sample_record;
        match decode_full(&snap, &self.dicts, &self.site_owner) {
            Ok(path) => (SampleResult::Path(path), cost),
            Err(_) => {
                self.stats.decode_errors += 1;
                (SampleResult::Unsupported, cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfilingRuntime;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};
    use dacce_program::model::TargetChoice;
    use dacce_program::Program;

    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let bb = b.function("b");
        let rec = b.function("rec");
        let t1 = b.function("t1");
        let t2 = b.function("t2");
        let fp = b.function("fp_target");
        let tailee = b.function("tailee");
        let table = b.table_with_extra(vec![t1, t2], vec![fp]);
        b.body(main)
            .work(5)
            .call(a)
            .call_p(bb, [0.6, 0.4])
            .indirect(table, TargetChoice::Skewed { hot: 0.7 }, [0.8, 0.8], 2)
            .done();
        b.body(a).work(2).call_p(rec, [0.7, 0.7]).done();
        b.body(bb).work(2).tail(tailee, [0.5, 0.5]).done();
        b.body(rec).work(1).call_p(rec, [0.55, 0.55]).done();
        b.body(t1).work(1).done();
        b.body(t2).work(1).done();
        b.body(fp).work(1).done();
        b.body(tailee).work(1).done();
        b.build(main)
    }

    fn profile_of(p: &Program, cfg: &InterpConfig) -> ProfileData {
        let mut prof = ProfilingRuntime::new();
        let _ = Interpreter::new(p, cfg.clone()).run(&mut prof);
        prof.into_data()
    }

    #[test]
    fn pcce_validates_every_sample() {
        let p = mixed_program();
        let cfg = InterpConfig {
            budget_calls: 40_000,
            sample_every: 89,
            max_depth: 48,
            ..InterpConfig::default()
        };
        let profile = profile_of(&p, &cfg);
        let mut rt = PcceRuntime::new(profile, CostModel::default());
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        assert_eq!(report.unsupported, 0);
        let stats = rt.stats();
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.unexpected_edges, 0, "profile covers the measured run");
        assert!(stats.nodes >= 8);
    }

    #[test]
    fn pcce_static_graph_larger_than_runtime_needs() {
        let p = mixed_program();
        let cfg = InterpConfig {
            budget_calls: 10_000,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let profile = profile_of(&p, &cfg);
        let invoked = profile.invoked_edges();
        let mut rt = PcceRuntime::new(profile, CostModel::default());
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        let stats = rt.stats();
        assert!(
            stats.edges > invoked,
            "static edges {} must exceed invoked {}",
            stats.edges,
            invoked
        );
    }

    #[test]
    fn indirect_dispatch_pays_for_false_positives() {
        // One indirect site whose conservative chain has 1 real + 3 fake
        // targets; with a cold profile the real target can sit anywhere,
        // with a hot profile it sits first.
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let real = b.function("real");
        let fps: Vec<_> = (0..3).map(|i| b.function(&format!("fp{i}"))).collect();
        let table = b.table_with_extra(vec![real], fps.clone());
        b.body(main)
            .indirect(table, TargetChoice::Uniform, [1.0, 1.0], 1)
            .done();
        b.body(real).work(1).done();
        for f in &fps {
            b.body(*f).work(1).done();
        }
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 1_000,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let profile = profile_of(&p, &cfg);
        let mut rt = PcceRuntime::new(profile, CostModel::default());
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        // Chain cost: real target is hottest -> 1 comparison per call; the
        // encoded action is free (single profiled incoming edge).
        assert!(report.instr_cost >= 1_000 * CostModel::default().compare);
        assert_eq!(rt.stats().unexpected_edges, 0);
    }

    #[test]
    fn multithreaded_pcce_validates() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let worker = b.function("worker");
        let job = b.function("job");
        b.body(main)
            .spawn(worker, [0.4, 0.4])
            .work(3)
            .call(job)
            .done();
        b.body(worker).work(2).call_rep(job, [1.0, 1.0], 4).done();
        b.body(job).work(1).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 20_000,
            sample_every: 71,
            max_threads: 5,
            ..InterpConfig::default()
        };
        let profile = profile_of(&p, &cfg);
        let mut rt = PcceRuntime::new(profile, CostModel::default());
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(report.threads_spawned > 1);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        assert_eq!(report.unsupported, 0);
    }
}
