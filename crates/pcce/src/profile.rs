//! The offline profiling run (the paper's Pin stand-in, §6.1).
//!
//! PCCE is granted "a full potential of profiling": a complete run with the
//! same input as the measured run, recording the invocation frequency of
//! every call edge. The profiling runtime charges no cost — profiling
//! happens offline, before the measured execution.

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{OracleStack, Program, ThreadId};

/// Edge frequencies collected by a profiling run.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Dynamic invocation count per `(site, callee)` edge.
    pub edge_counts: HashMap<(CallSiteId, FunctionId), u64>,
    /// Total dynamic calls observed.
    pub total_calls: u64,
}

impl ProfileData {
    /// Frequency of one edge (0 if never invoked).
    pub fn count(&self, site: CallSiteId, callee: FunctionId) -> u64 {
        self.edge_counts.get(&(site, callee)).copied().unwrap_or(0)
    }

    /// Number of distinct edges that were actually invoked.
    pub fn invoked_edges(&self) -> usize {
        self.edge_counts.len()
    }
}

/// A [`ContextRuntime`] that only counts edges; run it once with the same
/// interpreter configuration as the measured run to obtain the profile.
#[derive(Debug, Default)]
pub struct ProfilingRuntime {
    data: ProfileData,
}

impl ProfilingRuntime {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the collected profile.
    pub fn into_data(self) -> ProfileData {
        self.data
    }
}

impl ContextRuntime for ProfilingRuntime {
    fn name(&self) -> &'static str {
        "pin-profile"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        _tid: ThreadId,
        _root: FunctionId,
        _parent: Option<(ThreadId, CallSiteId)>,
    ) {
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        *self
            .data
            .edge_counts
            .entry((ev.site, ev.callee))
            .or_insert(0) += 1;
        self.data.total_calls += 1;
        0
    }

    fn on_return(&mut self, _ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        0
    }

    fn sample(&mut self, _tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        (SampleResult::Unsupported, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};

    #[test]
    fn profile_counts_match_interpreter_counts() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        b.body(main).call(a).done();
        b.body(a).work(1).done();
        let p = b.build(main);

        let mut prof = ProfilingRuntime::new();
        let cfg = InterpConfig {
            budget_calls: 500,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut prof);
        let data = prof.into_data();
        assert_eq!(data.total_calls, report.calls);
        assert_eq!(data.invoked_edges(), 1);
        let (_, op) = p.call_ops().next().unwrap();
        assert_eq!(data.count(op.site, a), report.calls);
        assert_eq!(data.count(op.site, main), 0);
    }

    #[test]
    fn profiling_charges_no_cost() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        b.body(main).work(10).call(a).done();
        b.body(a).work(1).done();
        let p = b.build(main);
        let mut prof = ProfilingRuntime::new();
        let report = Interpreter::new(&p, InterpConfig::default()).run(&mut prof);
        assert_eq!(report.instr_cost, 0);
    }
}
