//! Named `Ordering` constants for every release/acquire pair in the
//! runtime's lock-free protocols.
//!
//! Production call sites use these constants instead of `Ordering`
//! literals, and the `dacce-mc` bounded protocol models are parameterised
//! over the same constants — so what the checker explores is what the
//! runtime runs. Each constant documents the *pair* it belongs to and the
//! proof obligation it discharges; `DESIGN.md` ("Memory model & proof
//! obligations") maps every pair to the `dacce-mc` model that checks it.

use super::Ordering;

// ---------------------------------------------------------------------
// Protocol 1 — snapshot publish vs. fast-path read (core/tracker.rs).
// ---------------------------------------------------------------------

/// `TrackerInner::republish`'s store of the publication epoch, sequenced
/// after the new `EncodingSnapshot` is written into `published`. Pairs
/// with [`EPOCH_CHECK`]: Release so a reader that observes the new epoch
/// also observes the snapshot contents it advertises.
pub const EPOCH_PUBLISH: Ordering = Ordering::Release;

/// The fast path's per-event revalidation load of the publication epoch
/// (`ThreadHandle::refresh`). Pairs with [`EPOCH_PUBLISH`]: Acquire so
/// everything the publisher wrote before bumping the epoch — dispatch
/// table, dictionaries, `maxID` — is visible once the bump is observed.
pub const EPOCH_CHECK: Ordering = Ordering::Acquire;

// ---------------------------------------------------------------------
// Protocol 2 — lazy migration vs. re-encode (core/tracker.rs,
// core/fastpath.rs). A re-encode publishes a new dictionary generation
// *inside* the snapshot, so the migration handshake rides on the same
// [`EPOCH_PUBLISH`]/[`EPOCH_CHECK`] pair: the Acquire that reveals the
// epoch bump also reveals the new `DictStore` the migrating thread
// decodes against. No additional atomic exists by design — the dacce-mc
// `migration-vs-reencode` model checks exactly this shared dependence.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Protocol 3 — inline-cache invalidation vs. republish (core/thread.rs).
// The per-thread inline cache stamps entries with the snapshot epoch and
// piggybacks on the same pair: a hit is valid only while the cached epoch
// equals the Acquire-loaded current epoch.
// ---------------------------------------------------------------------

/// The epoch load that validates an inline-cache hit (identical site to
/// [`EPOCH_CHECK`]; named separately because the obligation it discharges
/// — "no stale cached target crosses a republish" — is its own model).
pub const ICACHE_EPOCH_CHECK: Ordering = Ordering::Acquire;

// ---------------------------------------------------------------------
// Protocol 4 — ring write vs. drain (obs/ring.rs seqlock).
// ---------------------------------------------------------------------

/// Writer marks a slot busy (odd stamp) before touching its words. Pairs
/// with [`RING_STAMP_VALIDATE`]: Release so a drainer that reads the odd
/// stamp rejects the slot rather than consuming half-written words.
pub const RING_STAMP_BUSY: Ordering = Ordering::Release;

/// Writer publishes a slot (even stamp) after writing its words. Pairs
/// with [`RING_STAMP_VALIDATE`]: Release so the words are visible to any
/// drainer that observes the published stamp.
pub const RING_STAMP_PUBLISH: Ordering = Ordering::Release;

/// Writer advances `head` after publishing the slot. Pairs with
/// [`RING_HEAD_READ`]: Release so a drainer that observes the new head
/// sees the published stamp and words behind it.
pub const RING_HEAD_PUBLISH: Ordering = Ordering::Release;

/// Drainer's load of `head` at the start of a drain. Pairs with
/// [`RING_HEAD_PUBLISH`].
pub const RING_HEAD_READ: Ordering = Ordering::Acquire;

/// Drainer's first stamp read, opening the seqlock read section. Pairs
/// with [`RING_STAMP_BUSY`] / [`RING_STAMP_PUBLISH`].
pub const RING_STAMP_VALIDATE: Ordering = Ordering::Acquire;

/// The slot word loads/stores inside the seqlock section. Relaxed by
/// design: torn values are *discarded* by the validating re-read, never
/// consumed, so the words themselves carry no ordering.
pub const RING_WORD_ACCESS: Ordering = Ordering::Relaxed;

/// The fence between the drainer's word reads and its validating stamp
/// re-read. Acquire so the re-read cannot be satisfied before the word
/// reads it validates.
pub const RING_VALIDATE_FENCE: Ordering = Ordering::Acquire;

/// The validating stamp re-read closing the read section. Relaxed — the
/// preceding [`RING_VALIDATE_FENCE`] supplies the ordering.
pub const RING_STAMP_RECHECK: Ordering = Ordering::Relaxed;

// ---------------------------------------------------------------------
// Protocol 5 — lineage adopt vs. copy-on-write split (core/lineage.rs).
// ---------------------------------------------------------------------

/// `EncodingLineage::publish_into`'s store of the lock-free generation
/// mirror, executed inside the state critical section after the new
/// `LineageState` is written. Pairs with [`LINEAGE_GEN_CHECK`]: Release
/// so the mirror never advertises a generation whose state a subsequent
/// locked read could miss.
pub const LINEAGE_GEN_PUBLISH: Ordering = Ordering::Release;

/// Tenant fast paths' staleness check of the generation mirror
/// (`EncodingLineage::generation`), taken without the state lock. Pairs
/// with [`LINEAGE_GEN_PUBLISH`].
pub const LINEAGE_GEN_CHECK: Ordering = Ordering::Acquire;

// ---------------------------------------------------------------------
// Unordered bookkeeping.
// ---------------------------------------------------------------------

/// Monotone statistics and bookkeeping counters (slow-lock counts, shard
/// counters, journal drop totals, …). Relaxed: each is read as a lone
/// figure, never as a proxy for other memory being visible.
pub const STAT_COUNTER: Ordering = Ordering::Relaxed;
