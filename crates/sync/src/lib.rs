//! # dacce-sync — the synchronisation shim
//!
//! Every atomic load/store/RMW, fence and lock acquire/release on the
//! DACCE runtime's lock-free protocols routes through this crate instead
//! of touching `std::sync::atomic` / `parking_lot` directly:
//!
//! * **`mc` feature off** (the default): the shim is a set of *direct
//!   re-exports* — `AtomicU64` literally *is* `std::sync::atomic::AtomicU64`
//!   and `Mutex` *is* `parking_lot::Mutex`. Zero cost, zero indirection;
//!   the compiled fast path is bit-identical to before the shim existed.
//! * **`mc` feature on**: the same names resolve to thin wrappers that
//!   report every operation — with its *declared* [`Ordering`] — to a
//!   registered [`SyncHook`] before performing it for real. This is the
//!   instrumentation layer the `dacce-mc` model checker and trace tools
//!   build on.
//!
//! The [`protocol`] module names the `Ordering` of every release/acquire
//! pair in the runtime's five lock-free protocols. Production code uses
//! these constants at its call sites and the `dacce-mc` bounded protocol
//! models are parameterised over the very same constants, so a model
//! checks exactly the orderings the runtime executes — and a mutation that
//! weakens one constant weakens both sides of the proof in lock step.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "mc"))]
mod passthrough {
    pub use parking_lot::{Mutex, MutexGuard};
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
}
#[cfg(not(feature = "mc"))]
pub use passthrough::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Mutex, MutexGuard};

#[cfg(feature = "mc")]
mod instrumented;
#[cfg(feature = "mc")]
pub use instrumented::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Mutex, MutexGuard};

pub mod hook;
pub mod protocol;

pub use hook::{clear_hook, set_hook, SyncEvent, SyncHook, SyncOp};
