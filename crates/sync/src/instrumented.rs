//! Hook-instrumented primitives, compiled under the `mc` feature.
//!
//! Each type mirrors the API subset of its std / `parking_lot`
//! counterpart that the workspace uses, emits one [`hook`] event per
//! operation — carrying the declared `Ordering` — and then performs the
//! real operation, so instrumented builds stay fully functional (the
//! scheduler of a checker decides *when* a thread runs, not *what* the
//! operation does).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;

use crate::hook::{self, SyncOp};

macro_rules! instrumented_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new instrumented atomic.
            #[must_use]
            pub const fn new(value: $prim) -> Self {
                Self { inner: <$std>::new(value) }
            }

            fn loc(&self) -> usize {
                std::ptr::from_ref(self) as usize
            }

            /// Instrumented load.
            pub fn load(&self, order: Ordering) -> $prim {
                hook::emit(SyncOp::Load, self.loc(), order);
                self.inner.load(order)
            }

            /// Instrumented store.
            pub fn store(&self, value: $prim, order: Ordering) {
                hook::emit(SyncOp::Store, self.loc(), order);
                self.inner.store(value, order);
            }

            /// Instrumented swap.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                hook::emit(SyncOp::Rmw, self.loc(), order);
                self.inner.swap(value, order)
            }

            /// Instrumented compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                hook::emit(SyncOp::Rmw, self.loc(), success);
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Consumes the atomic, returning the inner value.
            #[must_use]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! instrumented_fetch_ops {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Instrumented fetch-add.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                hook::emit(SyncOp::Rmw, self.loc(), order);
                self.inner.fetch_add(value, order)
            }

            /// Instrumented fetch-sub.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                hook::emit(SyncOp::Rmw, self.loc(), order);
                self.inner.fetch_sub(value, order)
            }

            /// Instrumented fetch-max.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                hook::emit(SyncOp::Rmw, self.loc(), order);
                self.inner.fetch_max(value, order)
            }
        }
    };
}

instrumented_atomic!(
    /// Instrumented `AtomicBool` (see [`std::sync::atomic::AtomicBool`]).
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
instrumented_atomic!(
    /// Instrumented `AtomicU32` (see [`std::sync::atomic::AtomicU32`]).
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
instrumented_atomic!(
    /// Instrumented `AtomicU64` (see [`std::sync::atomic::AtomicU64`]).
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
instrumented_atomic!(
    /// Instrumented `AtomicUsize` (see [`std::sync::atomic::AtomicUsize`]).
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
instrumented_fetch_ops!(AtomicU32, u32);
instrumented_fetch_ops!(AtomicU64, u64);
instrumented_fetch_ops!(AtomicUsize, usize);

/// Instrumented memory fence.
pub fn fence(order: Ordering) {
    hook::emit(SyncOp::Fence, 0, order);
    std::sync::atomic::fence(order);
}

/// Instrumented mutex wrapping `parking_lot::Mutex`: acquisition and
/// release (guard drop) each report to the hook.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new instrumented mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn loc(&self) -> usize {
        std::ptr::from_ref(self).cast::<u8>() as usize
    }

    /// Instrumented blocking acquisition.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        hook::emit(SyncOp::LockAcquire, self.loc(), Ordering::Acquire);
        MutexGuard {
            loc: self.loc(),
            inner: self.inner.lock(),
        }
    }

    /// Instrumented non-blocking acquisition (reported only on success).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        hook::emit(SyncOp::LockAcquire, self.loc(), Ordering::Acquire);
        Some(MutexGuard {
            loc: self.loc(),
            inner: guard,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// Guard returned by [`Mutex::lock`]; reports the release on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    loc: usize,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        hook::emit(SyncOp::LockRelease, self.loc, Ordering::Release);
    }
}
