//! The instrumentation hook every shim operation reports to under `mc`.
//!
//! A [`SyncHook`] is registered process-globally. With the `mc` feature
//! enabled, each operation on a shim primitive emits one [`SyncEvent`]
//! *before* executing, carrying the operation kind, the address of the
//! primitive (a stable identity for the location) and the `Ordering` the
//! call site declared. With the feature disabled, registration still
//! works but nothing ever emits — the passthrough types are raw std /
//! `parking_lot` re-exports.

use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};

/// What kind of synchronisation operation an event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyncOp {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// An atomic read-modify-write (`swap`, `fetch_add`, `fetch_sub`,
    /// `fetch_max`, successful `compare_exchange`).
    Rmw,
    /// A standalone memory fence.
    Fence,
    /// A lock acquisition (mutex `lock`, or a successful `try_lock`).
    LockAcquire,
    /// A lock release (guard drop).
    LockRelease,
}

/// One reported synchronisation operation.
#[derive(Clone, Copy, Debug)]
pub struct SyncEvent {
    /// Operation kind.
    pub op: SyncOp,
    /// Stable identity of the primitive: its address. Distinguishes
    /// locations for the lifetime of the object, which is all a tracer or
    /// checker needs within one run.
    pub loc: usize,
    /// The `Ordering` the call site declared (for locks: `Acquire` on
    /// acquisition, `Release` on release).
    pub order: Ordering,
}

/// A registered observer of shim operations.
pub trait SyncHook: Send + Sync {
    /// Called before each instrumented operation executes.
    fn on_sync(&self, event: &SyncEvent);
}

fn registry() -> &'static RwLock<Option<Arc<dyn SyncHook>>> {
    static REGISTRY: RwLock<Option<Arc<dyn SyncHook>>> = RwLock::new(None);
    &REGISTRY
}

/// Installs `hook` as the process-global observer, replacing any previous
/// one. Under the `mc` feature every subsequent shim operation in any
/// thread reports to it; without the feature this is inert bookkeeping.
pub fn set_hook(hook: Arc<dyn SyncHook>) {
    *registry().write().expect("sync hook registry poisoned") = Some(hook);
}

/// Removes the process-global observer, if any.
pub fn clear_hook() {
    *registry().write().expect("sync hook registry poisoned") = None;
}

/// Emits one event to the registered hook, if any. Used by the
/// instrumented primitives; public so external wrappers can participate.
pub fn emit(op: SyncOp, loc: usize, order: Ordering) {
    let guard = registry().read().expect("sync hook registry poisoned");
    if let Some(hook) = guard.as_ref() {
        hook.on_sync(&SyncEvent { op, loc, order });
    }
}
