//! Calling-context-tree baseline.
//!
//! Maintains the program's calling context tree (Ammons/Ball/Larus-style)
//! and each thread's current position in it. Contexts are exact and O(depth)
//! to read back, but *every* dynamic call pays a child lookup — the paper
//! cites a 2–4x slowdown for CCT-based profilers, which is why encoding
//! approaches exist at all.

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{ContextPath, CostModel, OracleStack, PathStep, Program, ThreadId};

#[derive(Debug)]
struct CctNode {
    parent: Option<u32>,
    site: Option<CallSiteId>,
    func: FunctionId,
    children: HashMap<(CallSiteId, FunctionId), u32>,
    visits: u64,
}

/// Statistics of a CCT run.
#[derive(Clone, Debug, Default)]
pub struct CctStats {
    /// Total tree nodes — the number of distinct calling contexts observed
    /// (compare with DACCE's `maxID`).
    pub nodes: usize,
    /// Dynamic calls observed.
    pub calls: u64,
    /// Deepest tree position reached.
    pub max_depth: usize,
}

/// The CCT context runtime.
#[derive(Debug, Default)]
pub struct CctRuntime {
    cost: CostModel,
    nodes: Vec<CctNode>,
    /// Current node per thread.
    current: HashMap<ThreadId, u32>,
    /// Root node per thread.
    root: HashMap<ThreadId, u32>,
    stats: CctStats,
}

impl CctRuntime {
    /// Creates a CCT runtime.
    pub fn new(cost: CostModel) -> Self {
        CctRuntime {
            cost,
            ..Default::default()
        }
    }

    /// Run statistics (node count refreshed).
    pub fn stats(&self) -> CctStats {
        let mut s = self.stats.clone();
        s.nodes = self.nodes.len();
        s
    }

    /// Number of distinct calling contexts materialised.
    pub fn distinct_contexts(&self) -> usize {
        self.nodes.len()
    }

    fn add_node(&mut self, parent: Option<u32>, site: Option<CallSiteId>, func: FunctionId) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(CctNode {
            parent,
            site,
            func,
            children: HashMap::new(),
            visits: 0,
        });
        idx
    }

    fn path_of(&self, mut node: u32) -> ContextPath {
        let mut rev = Vec::new();
        loop {
            let n = &self.nodes[node as usize];
            rev.push(PathStep {
                site: n.site,
                func: n.func,
            });
            match n.parent {
                Some(p) => node = p,
                None => break,
            }
        }
        rev.reverse();
        ContextPath(rev)
    }
}

impl ContextRuntime for CctRuntime {
    fn name(&self) -> &'static str {
        "cct"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        let root_idx = match parent {
            None => self.add_node(None, None, root),
            Some((ptid, site)) => {
                let anchor = self.current[&ptid];
                let existing = self.nodes[anchor as usize]
                    .children
                    .get(&(site, root))
                    .copied();
                match existing {
                    Some(i) => i,
                    None => {
                        let i = self.add_node(Some(anchor), Some(site), root);
                        self.nodes[anchor as usize].children.insert((site, root), i);
                        i
                    }
                }
            }
        };
        self.current.insert(tid, root_idx);
        self.root.insert(tid, root_idx);
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        self.stats.calls += 1;
        let cur = self.current[&ev.tid];
        let child = match self.nodes[cur as usize].children.get(&(ev.site, ev.callee)) {
            Some(&i) => i,
            None => {
                let i = self.add_node(Some(cur), Some(ev.site), ev.callee);
                self.nodes[cur as usize]
                    .children
                    .insert((ev.site, ev.callee), i);
                i
            }
        };
        self.nodes[child as usize].visits += 1;
        self.current.insert(ev.tid, child);
        self.stats.max_depth = self.stats.max_depth.max(self.path_len(child));
        self.cost.cct_step
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        // Move up past any tail frames to the node whose child was created
        // by `ev.site`.
        let mut cur = self.current[&ev.tid];
        loop {
            let n = &self.nodes[cur as usize];
            let parent = n.parent.expect("balanced returns stay below the root");
            let from_site = n.site;
            cur = parent;
            if from_site == Some(ev.site) {
                break;
            }
        }
        self.current.insert(ev.tid, cur);
        self.cost.id_arith
    }

    fn on_root_reset(&mut self, tid: ThreadId) {
        let root = self.root[&tid];
        self.current.insert(tid, root);
    }

    fn sample(&mut self, tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        let path = self.path_of(self.current[&tid]);
        (SampleResult::Path(path), self.cost.sample_record)
    }
}

impl CctRuntime {
    fn path_len(&self, mut node: u32) -> usize {
        let mut n = 1;
        while let Some(p) = self.nodes[node as usize].parent {
            node = p;
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};
    use dacce_program::model::TargetChoice;

    fn program() -> dacce_program::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let c = b.function("c");
        let t1 = b.function("t1");
        let t2 = b.function("t2");
        let tbl = b.table(vec![t1, t2]);
        b.body(main)
            .work(3)
            .call(a)
            .indirect(tbl, TargetChoice::Uniform, [0.8, 0.8], 2)
            .done();
        b.body(a)
            .work(1)
            .call_p(c, [0.6, 0.6])
            .tail(t1, [0.3, 0.3])
            .done();
        b.body(c).work(1).call_p(a, [0.3, 0.3]).done();
        b.body(t1).work(1).done();
        b.body(t2).work(1).done();
        b.build(main)
    }

    #[test]
    fn cct_samples_match_oracle() {
        let p = program();
        let mut rt = CctRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 20_000,
            sample_every: 41,
            max_depth: 40,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        assert_eq!(report.unsupported, 0);
        assert!(rt.distinct_contexts() > 4);
    }

    #[test]
    fn every_call_pays_a_tree_step() {
        let p = program();
        let mut rt = CctRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 1_000,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(report.instr_cost >= 1_000 * CostModel::default().cct_step);
    }

    #[test]
    fn multithreaded_cct_validates() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let w = b.function("worker");
        let j = b.function("job");
        b.body(main).spawn(w, [0.4, 0.4]).work(2).call(j).done();
        b.body(w).work(1).call_rep(j, [1.0, 1.0], 5).done();
        b.body(j).work(1).done();
        let p = b.build(main);
        let mut rt = CctRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 10_000,
            sample_every: 29,
            max_threads: 4,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(report.threads_spawned > 1);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
    }

    #[test]
    fn distinct_contexts_grow_with_paths() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let l = b.function("l");
        let r = b.function("r");
        let s = b.function("sink");
        b.body(main).call(l).call(r).done();
        b.body(l).call(s).done();
        b.body(r).call(s).done();
        b.body(s).work(1).done();
        let p = b.build(main);
        let mut rt = CctRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 400,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        // main, l, r, sink-under-l, sink-under-r = 5 nodes.
        assert_eq!(rt.distinct_contexts(), 5);
    }
}
