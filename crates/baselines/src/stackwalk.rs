//! Stack-walking baseline.
//!
//! The straightforward way to capture a calling context: unwind the stack
//! frame by frame when the context is needed. There is no per-call
//! instrumentation at all; the entire cost is paid at capture time and is
//! proportional to the stack depth. Valgrind-style tools walk at *every*
//! monitored event, which the paper points out is too expensive for
//! deployment — [`StackWalkRuntime::valgrind_mode`] reproduces that regime.
//!
//! The walker sees logical frames perfectly in this model (real unwinders
//! lose tail-called frames; we keep them so that the walker can serve as
//! the paper's cross-validation oracle, §6.1).

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{ContextPath, CostModel, OracleStack, PathStep, Program, ThreadId};

#[derive(Debug, Default, Clone)]
struct WalkThread {
    /// Full path of the thread root (spawn prefix included), root-first.
    base: Vec<PathStep>,
    /// Logical frames above the root: `(site, func, is_tail)`.
    frames: Vec<(CallSiteId, FunctionId, bool)>,
}

impl WalkThread {
    fn path(&self) -> ContextPath {
        let mut steps = self.base.clone();
        steps.extend(self.frames.iter().map(|&(site, func, _)| PathStep {
            site: Some(site),
            func,
        }));
        ContextPath(steps)
    }
}

/// Statistics of a stack-walking run.
#[derive(Clone, Debug, Default)]
pub struct StackWalkStats {
    /// Stack walks performed.
    pub walks: u64,
    /// Total frames visited across all walks.
    pub frames_walked: u64,
    /// Dynamic calls observed.
    pub calls: u64,
}

/// The stack-walking context runtime.
#[derive(Debug, Default)]
pub struct StackWalkRuntime {
    cost: CostModel,
    valgrind: bool,
    threads: HashMap<ThreadId, WalkThread>,
    stats: StackWalkStats,
}

impl StackWalkRuntime {
    /// Sample-time-only walking (the HPCToolkit regime).
    pub fn new(cost: CostModel) -> Self {
        StackWalkRuntime {
            cost,
            ..Default::default()
        }
    }

    /// Walk at every call event (the Valgrind regime).
    pub fn valgrind_mode(cost: CostModel) -> Self {
        StackWalkRuntime {
            cost,
            valgrind: true,
            ..Default::default()
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> &StackWalkStats {
        &self.stats
    }

    fn walk(&mut self, tid: ThreadId) -> (ContextPath, u64) {
        let path = self.threads[&tid].path();
        let depth = path.depth() as u64;
        self.stats.walks += 1;
        self.stats.frames_walked += depth;
        (path, depth * self.cost.walk_frame)
    }
}

impl ContextRuntime for StackWalkRuntime {
    fn name(&self) -> &'static str {
        "stackwalk"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        let base = match parent {
            None => vec![PathStep {
                site: None,
                func: root,
            }],
            Some((ptid, site)) => {
                let mut base = self.threads[&ptid].path().0;
                base.push(PathStep {
                    site: Some(site),
                    func: root,
                });
                base
            }
        };
        self.threads.insert(
            tid,
            WalkThread {
                base,
                frames: Vec::new(),
            },
        );
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        self.stats.calls += 1;
        let t = self.threads.get_mut(&ev.tid).expect("thread registered");
        t.frames.push((ev.site, ev.callee, ev.tail));
        if self.valgrind {
            self.walk(ev.tid).1
        } else {
            0
        }
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        let t = self.threads.get_mut(&ev.tid).expect("thread registered");
        // Pop tail frames stacked on the returning physical frame, then the
        // frame itself (the oldest of the run is the physical one).
        while let Some(&(_, _, tail)) = t.frames.last() {
            t.frames.pop();
            if !tail {
                break;
            }
        }
        0
    }

    fn on_root_reset(&mut self, tid: ThreadId) {
        if let Some(t) = self.threads.get_mut(&tid) {
            t.frames.clear();
        }
    }

    fn sample(&mut self, tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        let (path, cost) = self.walk(tid);
        (SampleResult::Path(path), cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};

    fn program() -> dacce_program::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let t = b.function("t");
        b.body(main).work(4).call(a).tail(t, [0.5, 0.5]).done();
        b.body(a).work(2).call_p(a, [0.4, 0.4]).done();
        b.body(t).work(1).done();
        b.build(main)
    }

    #[test]
    fn samples_match_oracle() {
        let p = program();
        let mut rt = StackWalkRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 10_000,
            sample_every: 37,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        assert!(report.validated > 200);
        assert!(rt.stats().walks > 0);
    }

    #[test]
    fn sampling_mode_charges_only_at_samples() {
        let p = program();
        let mut rt = StackWalkRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 1_000,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(report.instr_cost, 0, "no samples, no cost");
    }

    #[test]
    fn valgrind_mode_charges_every_call() {
        let p = program();
        let mut rt = StackWalkRuntime::valgrind_mode(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 1_000,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(report.instr_cost >= 1_000 * CostModel::default().walk_frame);
        assert_eq!(rt.stats().walks, 1_000);
    }

    #[test]
    fn spawned_threads_get_parent_prefix() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let w = b.function("worker");
        let j = b.function("job");
        b.body(main).spawn(w, [0.5, 0.5]).work(2).call(j).done();
        b.body(w).work(1).call_rep(j, [1.0, 1.0], 3).done();
        b.body(j).work(1).done();
        let p = b.build(main);
        let mut rt = StackWalkRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 5_000,
            sample_every: 31,
            max_threads: 4,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(report.threads_spawned > 1);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
    }
}
