//! Inferred call-path profiling (Mytkowicz, Coughlin, Diwan — OOPSLA 2009),
//! as discussed in §7 of the DACCE paper.
//!
//! The idea: identify a calling context by `(current function, stack
//! depth)` — both essentially free to read at sample time (the paper:
//! "program counter and stack depth are used to identify a calling
//! context... essentially no runtime overhead"). The catch, which the DACCE
//! paper points out: many distinct contexts share an identifier, a training
//! run is needed to build the dictionary mapping identifiers to paths, and
//! *new contexts observed online cannot be correctly decoded*.
//!
//! This runtime measures exactly those properties: it keeps the true
//! context (free bookkeeping, standing in for the training run), builds the
//! `(func, depth) -> path` dictionary online, and reports both the
//! ambiguity rate (identifiers bound to several distinct contexts) and the
//! misattribution rate (samples whose identifier was first bound to a
//! different context).

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{ContextPath, CostModel, OracleStack, PathStep, Program, ThreadId};

#[derive(Debug, Default)]
struct InferredThread {
    /// True logical context (root first), maintained for the dictionary.
    truth: Vec<PathStep>,
}

/// Statistics of an inferred-call-path run.
#[derive(Clone, Debug, Default)]
pub struct InferredStats {
    /// Samples recorded.
    pub samples: u64,
    /// Distinct `(function, depth)` identifiers observed.
    pub identifiers: usize,
    /// Identifiers bound to more than one distinct true context.
    pub ambiguous_identifiers: usize,
    /// Samples whose identifier resolved to a *different* context than the
    /// one actually active (what a consumer of the dictionary would get
    /// wrong).
    pub misattributed_samples: u64,
}

/// The inferred-call-path context runtime.
#[derive(Debug, Default)]
pub struct InferredRuntime {
    cost: CostModel,
    threads: HashMap<ThreadId, InferredThread>,
    /// Dictionary: identifier -> first context bound to it, plus the count
    /// of distinct contexts seen under it.
    dictionary: HashMap<(FunctionId, usize), Vec<Vec<PathStep>>>,
    stats: InferredStats,
}

impl InferredRuntime {
    /// Creates an inferred-call-path runtime.
    pub fn new(cost: CostModel) -> Self {
        InferredRuntime {
            cost,
            ..Default::default()
        }
    }

    /// Run statistics (identifier counts refreshed).
    pub fn stats(&self) -> InferredStats {
        let mut s = self.stats.clone();
        s.identifiers = self.dictionary.len();
        s.ambiguous_identifiers = self
            .dictionary
            .values()
            .filter(|paths| paths.len() > 1)
            .count();
        s
    }
}

impl ContextRuntime for InferredRuntime {
    fn name(&self) -> &'static str {
        "inferred"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        let mut t = InferredThread::default();
        match parent {
            None => t.truth.push(PathStep {
                site: None,
                func: root,
            }),
            Some((ptid, site)) => {
                t.truth.clone_from(&self.threads[&ptid].truth);
                t.truth.push(PathStep {
                    site: Some(site),
                    func: root,
                });
            }
        }
        self.threads.insert(tid, t);
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        let t = self.threads.get_mut(&ev.tid).expect("thread registered");
        t.truth.push(PathStep {
            site: Some(ev.site),
            func: ev.callee,
        });
        0 // no instrumentation at all
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        let t = self.threads.get_mut(&ev.tid).expect("thread registered");
        while let Some(top) = t.truth.pop() {
            if top.site == Some(ev.site) {
                break;
            }
        }
        0
    }

    fn on_root_reset(&mut self, tid: ThreadId) {
        if let Some(t) = self.threads.get_mut(&tid) {
            let root = t.truth[0];
            t.truth.clear();
            t.truth.push(root);
        }
    }

    fn sample(&mut self, tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        self.stats.samples += 1;
        let t = &self.threads[&tid];
        let key = (t.truth.last().expect("root present").func, t.truth.len());
        let entry = self.dictionary.entry(key).or_default();
        if entry.is_empty() {
            entry.push(t.truth.clone());
        } else if entry[0] != t.truth {
            self.stats.misattributed_samples += 1;
            if !entry.contains(&t.truth) {
                entry.push(t.truth.clone());
            }
        }
        // The *answer* the technique would give is the dictionary binding,
        // which may be a different context than the active one; return it
        // so validation measures the technique's real accuracy.
        let answer = ContextPath(entry[0].clone());
        (SampleResult::Path(answer), self.cost.sample_record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};

    /// A diamond: two distinct contexts with identical (leaf, depth).
    fn ambiguous_program() -> dacce_program::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let l = b.function("left");
        let r = b.function("right");
        let sink = b.function("sink");
        b.body(main)
            .call_p(l, [0.5, 0.5])
            .call_p(r, [0.5, 0.5])
            .done();
        b.body(l).call(sink).done();
        b.body(r).call(sink).done();
        b.body(sink).work(1).done();
        b.build(main)
    }

    #[test]
    fn ambiguous_contexts_are_detected() {
        let p = ambiguous_program();
        let mut rt = InferredRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 8_000,
            sample_every: 3,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        let stats = rt.stats();
        assert!(stats.samples > 1_000);
        assert!(
            stats.ambiguous_identifiers >= 1,
            "the two sink contexts share (sink, 3)"
        );
        assert!(stats.misattributed_samples > 0);
        // Validation sees the dictionary answers; ambiguity shows up as
        // mismatches against the oracle — the exact weakness the DACCE
        // paper calls out.
        assert!(report.mismatches > 0);
        assert_eq!(report.instr_cost, rt.stats().samples * 20);
    }

    #[test]
    fn unambiguous_program_validates_perfectly() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let bb = b.function("b");
        b.body(main).call(a).done();
        b.body(a).call_p(bb, [0.7, 0.7]).done();
        b.body(bb).work(1).done();
        let p = b.build(main);
        let mut rt = InferredRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 4_000,
            sample_every: 5,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(report.mismatches, 0);
        assert_eq!(rt.stats().ambiguous_identifiers, 0);
    }
}
