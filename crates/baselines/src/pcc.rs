//! Probabilistic calling context (Bond & McKinley, OOPSLA 2007).
//!
//! Maintains a per-thread hash `V' = 3 * V + cs` updated at every call; the
//! caller's `V` lives in its activation record and is restored on return
//! (free on a real machine stack). The per-call cost is tiny, but the value
//! is a *probabilistic* identifier: it cannot be decoded back to a path
//! without extra machinery, and distinct contexts can collide. This runtime
//! reports both properties: samples return
//! [`SampleResult::Unsupported`], and a collision census compares hashes
//! against the true context (bookkeeping only, not charged).

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{CostModel, OracleStack, PathStep, Program, ThreadId};

#[derive(Debug, Default)]
struct PccThread {
    v: u64,
    saved: Vec<u64>,
    /// True logical context for the collision census (free bookkeeping).
    truth: Vec<PathStep>,
}

/// Statistics of a PCC run.
#[derive(Clone, Debug, Default)]
pub struct PccStats {
    /// Dynamic calls observed.
    pub calls: u64,
    /// Samples recorded.
    pub samples: u64,
    /// Distinct hash values seen at samples.
    pub distinct_hashes: usize,
    /// Samples whose hash was already bound to a *different* true context.
    pub collisions: u64,
}

/// The PCC context runtime.
#[derive(Debug, Default)]
pub struct PccRuntime {
    cost: CostModel,
    threads: HashMap<ThreadId, PccThread>,
    /// First true context observed per hash value.
    census: HashMap<u64, Vec<PathStep>>,
    stats: PccStats,
}

impl PccRuntime {
    /// Creates a PCC runtime.
    pub fn new(cost: CostModel) -> Self {
        PccRuntime {
            cost,
            ..Default::default()
        }
    }

    /// Run statistics (distinct hash count refreshed).
    pub fn stats(&self) -> PccStats {
        let mut s = self.stats.clone();
        s.distinct_hashes = self.census.len();
        s
    }

    /// The current hash of a thread (the value a client tool would log).
    pub fn current_hash(&self, tid: ThreadId) -> Option<u64> {
        self.threads.get(&tid).map(|t| t.v)
    }
}

impl ContextRuntime for PccRuntime {
    fn name(&self) -> &'static str {
        "pcc"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        let mut t = PccThread::default();
        if let Some((ptid, site)) = parent {
            let p = &self.threads[&ptid];
            t.v = p.v.wrapping_mul(3).wrapping_add(u64::from(site.raw()));
            t.truth.clone_from(&p.truth);
            t.truth.push(PathStep {
                site: Some(site),
                func: root,
            });
        } else {
            t.truth.push(PathStep {
                site: None,
                func: root,
            });
        }
        self.threads.insert(tid, t);
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        self.stats.calls += 1;
        let t = self.threads.get_mut(&ev.tid).expect("thread registered");
        if !ev.tail {
            t.saved.push(t.v);
        }
        t.v = t.v.wrapping_mul(3).wrapping_add(u64::from(ev.site.raw()));
        t.truth.push(PathStep {
            site: Some(ev.site),
            func: ev.callee,
        });
        self.cost.pcc_hash
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        let t = self.threads.get_mut(&ev.tid).expect("thread registered");
        t.v = t.saved.pop().expect("balanced events");
        while let Some(top) = t.truth.pop() {
            if top.site == Some(ev.site) {
                break;
            }
        }
        0
    }

    fn on_root_reset(&mut self, tid: ThreadId) {
        if let Some(t) = self.threads.get_mut(&tid) {
            let root = t.truth[0];
            t.v = 0;
            t.saved.clear();
            t.truth.clear();
            t.truth.push(root);
        }
    }

    fn sample(&mut self, tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        self.stats.samples += 1;
        let t = &self.threads[&tid];
        let truth = t.truth.clone();
        match self.census.get(&t.v) {
            None => {
                self.census.insert(t.v, truth);
            }
            Some(prev) => {
                if *prev != truth {
                    self.stats.collisions += 1;
                }
            }
        }
        (SampleResult::Unsupported, self.cost.sample_record)
    }
}

/// Breadcrumbs-style reconstruction (Bond, Baker, Guyer — PLDI 2010, the
/// paper's §7): recover call paths from PCC hash values using the static
/// call graph. `V' = 3*V + cs` over `u64` is exactly invertible (3 is odd,
/// hence a unit modulo 2^64), so candidate predecessors can be searched
/// backwards from the sampled `(hash, leaf function)` pair.
pub mod reconstruct {
    use std::collections::HashMap;

    use dacce_callgraph::{CallGraph, CallSiteId, FunctionId};
    use dacce_program::{ContextPath, PathStep};

    /// Multiplicative inverse of 3 modulo 2^64.
    const INV3: u64 = 0xaaaa_aaaa_aaaa_aaab;

    /// Outcome of one reconstruction attempt.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Reconstruction {
        /// Exactly one path hashes to the value — full confidence.
        Unique(ContextPath),
        /// Several paths hash to the value (up to the search cap).
        Ambiguous(Vec<ContextPath>),
        /// No path of permissible length hashes to the value.
        NotFound,
    }

    /// Reconstructs the call paths ending at `leaf` whose PCC hash equals
    /// `hash`, searching backwards over `graph` from `leaf` towards `root`.
    /// `max_depth` bounds the path length and `max_results` the number of
    /// candidates collected.
    pub fn reconstruct(
        graph: &CallGraph,
        root: FunctionId,
        leaf: FunctionId,
        hash: u64,
        max_depth: usize,
        max_results: usize,
    ) -> Reconstruction {
        // Pre-index incoming edges as (site, caller) per callee.
        let mut incoming: HashMap<FunctionId, Vec<(CallSiteId, FunctionId)>> = HashMap::new();
        for (_, e) in graph.edges() {
            incoming
                .entry(e.callee)
                .or_default()
                .push((e.site, e.caller));
        }

        let mut results: Vec<Vec<PathStep>> = Vec::new();
        // Reverse-order steps accumulated leaf-first.
        let mut acc: Vec<PathStep> = Vec::new();
        search(
            &incoming,
            root,
            leaf,
            hash,
            max_depth,
            max_results,
            &mut acc,
            &mut results,
        );
        match results.len() {
            0 => Reconstruction::NotFound,
            1 => Reconstruction::Unique(to_path(root, &results[0])),
            _ => Reconstruction::Ambiguous(results.iter().map(|r| to_path(root, r)).collect()),
        }
    }

    fn to_path(root: FunctionId, rev: &[PathStep]) -> ContextPath {
        let mut steps = vec![PathStep {
            site: None,
            func: root,
        }];
        steps.extend(rev.iter().rev().copied());
        ContextPath(steps)
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        incoming: &HashMap<FunctionId, Vec<(CallSiteId, FunctionId)>>,
        root: FunctionId,
        cur: FunctionId,
        hash: u64,
        budget: usize,
        max_results: usize,
        acc: &mut Vec<PathStep>,
        results: &mut Vec<Vec<PathStep>>,
    ) {
        if results.len() >= max_results {
            return;
        }
        if cur == root && hash == 0 {
            results.push(acc.clone());
            if results.len() >= max_results {
                return;
            }
        }
        if budget == 0 {
            return;
        }
        let Some(candidates) = incoming.get(&cur) else {
            return;
        };
        for &(site, caller) in candidates {
            // Invert V = 3*V_prev + site.
            let prev = hash.wrapping_sub(u64::from(site.raw())).wrapping_mul(INV3);
            acc.push(PathStep {
                site: Some(site),
                func: cur,
            });
            search(
                incoming,
                root,
                caller,
                prev,
                budget - 1,
                max_results,
                acc,
                results,
            );
            acc.pop();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use dacce_callgraph::Dispatch;

        fn f(i: u32) -> FunctionId {
            FunctionId::new(i)
        }
        fn s(i: u32) -> CallSiteId {
            CallSiteId::new(i)
        }

        fn hash_of(sites: &[u32]) -> u64 {
            sites
                .iter()
                .fold(0u64, |v, &cs| v.wrapping_mul(3).wrapping_add(u64::from(cs)))
        }

        #[test]
        fn unique_path_reconstructs() {
            let mut g = CallGraph::new();
            g.add_edge(f(0), f(1), s(10), Dispatch::Direct);
            g.add_edge(f(1), f(2), s(20), Dispatch::Direct);
            let h = hash_of(&[10, 20]);
            match reconstruct(&g, f(0), f(2), h, 8, 8) {
                Reconstruction::Unique(p) => {
                    let funcs: Vec<u32> = p.0.iter().map(|x| x.func.raw()).collect();
                    assert_eq!(funcs, vec![0, 1, 2]);
                }
                other => panic!("expected unique, got {other:?}"),
            }
        }

        #[test]
        fn wrong_hash_is_not_found() {
            let mut g = CallGraph::new();
            g.add_edge(f(0), f(1), s(10), Dispatch::Direct);
            assert_eq!(
                reconstruct(&g, f(0), f(1), 12345, 8, 8),
                Reconstruction::NotFound
            );
        }

        #[test]
        fn colliding_paths_are_reported_ambiguous() {
            // Two sites with ids that collide after one step: hashes are
            // 3*0 + cs, so two distinct edges into the leaf with the SAME
            // site id cannot exist; instead create an ambiguity deeper:
            // 0 -> 1 -> 3 via (9, 12) and 0 -> 2 -> 3 via (12, 3):
            // hash1 = 3*9 + 12 = 39; hash2 = 3*12 + 3 = 39.
            let mut g = CallGraph::new();
            g.add_edge(f(0), f(1), s(9), Dispatch::Direct);
            g.add_edge(f(1), f(3), s(12), Dispatch::Direct);
            g.add_edge(f(0), f(2), s(12), Dispatch::Direct);
            g.add_edge(f(2), f(3), s(3), Dispatch::Direct);
            assert_eq!(hash_of(&[9, 12]), hash_of(&[12, 3]));
            match reconstruct(&g, f(0), f(3), 39, 8, 8) {
                Reconstruction::Ambiguous(paths) => assert_eq!(paths.len(), 2),
                other => panic!("expected ambiguity, got {other:?}"),
            }
        }

        #[test]
        fn recursion_is_bounded_by_depth() {
            let mut g = CallGraph::new();
            g.add_edge(f(0), f(1), s(5), Dispatch::Direct);
            g.add_edge(f(1), f(1), s(6), Dispatch::Direct);
            let h = hash_of(&[5, 6, 6, 6]);
            match reconstruct(&g, f(0), f(1), h, 16, 8) {
                Reconstruction::Unique(p) => assert_eq!(p.depth(), 5),
                other => panic!("expected unique, got {other:?}"),
            }
            // Too-small depth budget fails.
            assert_eq!(
                reconstruct(&g, f(0), f(1), h, 2, 8),
                Reconstruction::NotFound
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};

    fn program() -> dacce_program::Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let c = b.function("c");
        b.body(main).work(2).call(a).call_p(c, [0.5, 0.5]).done();
        b.body(a).work(1).call_p(c, [0.5, 0.5]).done();
        b.body(c).work(1).done();
        b.build(main)
    }

    #[test]
    fn pcc_is_cheap_and_undecodable() {
        let p = program();
        let mut rt = PccRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 5_000,
            sample_every: 13,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(report.unsupported, report.samples);
        assert_eq!(report.mismatches, 0);
        // Per-call cost is at most the hash plus sampling.
        let max_expected = report.calls * CostModel::default().pcc_hash
            + report.samples * CostModel::default().sample_record;
        assert!(report.instr_cost <= max_expected);
    }

    #[test]
    fn distinct_contexts_get_distinct_hashes_here() {
        let p = program();
        let mut rt = PccRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 5_000,
            sample_every: 7,
            ..InterpConfig::default()
        };
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        let stats = rt.stats();
        assert!(stats.distinct_hashes >= 3);
        assert_eq!(stats.collisions, 0, "tiny program should not collide");
    }

    #[test]
    fn hash_restores_across_returns() {
        let p = program();
        let mut rt = PccRuntime::new(CostModel::default());
        let cfg = InterpConfig {
            budget_calls: 4, // two iterations of main's body
            sample_every: 0,
            restart_main: false,
            ..InterpConfig::default()
        };
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        // After the drain every saved value is consumed and v is back at 0.
        assert_eq!(rt.current_hash(ThreadId::MAIN), Some(0));
    }
}
