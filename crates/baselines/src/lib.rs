//! Related-work baselines for the DACCE reproduction (§7 of the paper).
//!
//! Three alternative calling-context identification techniques, each
//! implemented as a [`dacce_program::ContextRuntime`]:
//!
//! * [`stackwalk::StackWalkRuntime`] — walk the stack at every sample (or,
//!   in Valgrind mode, at every call): no per-call instrumentation, but
//!   per-walk cost proportional to the stack depth;
//! * [`cct::CctRuntime`] — maintain a calling context tree and the current
//!   position in it: exact contexts, but a child lookup on *every* call
//!   (the paper quotes a 2–4x slowdown for CCT profilers);
//! * [`pcc::PccRuntime`] — Bond & McKinley's probabilistic calling context:
//!   a per-call hash update (`V' = 3*V + cs`), essentially free but
//!   non-decodable and subject to collisions;
//! * [`inferred::InferredRuntime`] — Mytkowicz et al.'s inferred call
//!   paths: identify contexts by `(function, stack depth)` with no runtime
//!   instrumentation at all, at the price of ambiguous identifiers and a
//!   training-run dictionary.

pub mod cct;
pub mod inferred;
pub mod pcc;
pub mod stackwalk;

pub use cct::CctRuntime;
pub use inferred::InferredRuntime;
pub use pcc::PccRuntime;
pub use stackwalk::StackWalkRuntime;
