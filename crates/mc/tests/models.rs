//! End-to-end checks of the model checker against the five DACCE
//! protocol models: the real orderings must verify clean, every mutant in
//! the mutation suite must be caught with a concrete interleaving trace,
//! and the R1/R3 rules must demonstrably have teeth.

use dacce_mc::{
    all_models, model, mutants, ring_drain_no_recheck, Access, Checker, Model, Ordering, Outcome,
    ThreadDef, ViolationKind,
};

#[test]
fn real_orderings_verify_clean() {
    for m in all_models(&dacce_mc::Orderings::default()) {
        let report = Checker::default().run(&m);
        assert!(
            report.clean(),
            "{} must be race-free under the real orderings, got {:?}",
            report.model,
            report.violations
        );
        assert!(
            report.interleavings > 0,
            "{}: nothing explored",
            report.model
        );
        assert!(report.transitions > 0, "{}: no transitions", report.model);
    }
}

#[test]
fn every_mutant_is_caught_with_a_trace() {
    let suite = mutants();
    assert_eq!(suite.len(), 5, "one mutant per protocol");
    for mu in suite {
        let m = model(mu.model, &mu.orderings).expect("mutant names a known model");
        let report = Checker::default().run(&m);
        assert!(
            !report.clean(),
            "mutant {}/{} ({}) must be caught",
            mu.model,
            mu.name,
            mu.weakens
        );
        let v = &report.violations[0];
        assert!(
            matches!(v.kind, ViolationKind::StaleGate { .. }),
            "{}/{}: weakened publish edges surface as stale gates, got {:?}",
            mu.model,
            mu.name,
            v.kind
        );
        assert!(
            !v.trace.is_empty(),
            "{}/{}: violation must carry a concrete interleaving",
            mu.model,
            mu.name
        );
        assert!(
            v.trace.last().unwrap().ends_with(&v.op),
            "trace must end at the offending step"
        );
    }
}

#[test]
fn mutants_stay_contained_to_models_sharing_the_constant() {
    // Protocols 1–3 share the epoch publish/check constants, so a mutant
    // of that pair is visible to all of them (`Mutant::affects` records
    // the set); every model *outside* the set must stay clean.
    for mu in mutants() {
        assert!(
            mu.affects.contains(&mu.model),
            "a mutant must affect its own model"
        );
        for m in all_models(&mu.orderings) {
            let report = Checker::default().run(&m);
            if mu.affects.contains(&m.name.as_str()) {
                assert!(
                    !report.clean(),
                    "mutant {} shares a constant with model {} and must be visible there",
                    mu.name,
                    report.model
                );
            } else {
                assert!(
                    report.clean(),
                    "mutant {} leaked into unrelated model {}: {:?}",
                    mu.name,
                    report.model,
                    report.violations
                );
            }
        }
    }
}

#[test]
fn dropping_the_seqlock_recheck_is_caught_by_r3() {
    let m = ring_drain_no_recheck(&dacce_mc::Orderings::default());
    let report = Checker::default().run(&m);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::TornSeqlock { .. })),
        "a drain without the stamp recheck must be able to consume torn words, got {:?}",
        report.violations
    );
}

/// A two-thread unsynchronised write/read on plain data: R1 must fire.
#[test]
fn unsynchronised_plain_data_access_is_a_data_race() {
    let mut m = Model::new("plain-race", "two plain accesses, no synchronisation");
    let cell = m.data("cell", 0);
    let mut w = ThreadDef::new("writer");
    w.op("write", Access::DataWrite(cell), |cx| {
        cx.write(1);
        Outcome::Done
    });
    m.push_thread(w);
    let mut r = ThreadDef::new("reader");
    r.op("read", Access::DataRead(cell), |cx| {
        let _ = cx.read();
        Outcome::Done
    });
    m.push_thread(r);
    let report = Checker::default().run(&m);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::DataRace { .. })),
        "expected a data race, got {:?}",
        report.violations
    );
}

/// The same accesses ordered by a mutex: R1 must stay quiet.
#[test]
fn mutex_ordered_plain_data_access_is_race_free() {
    let mut m = Model::new("plain-locked", "two plain accesses under one mutex");
    let cell = m.data("cell", 0);
    let mx = m.mutex("guard");
    let mut w = ThreadDef::new("writer");
    w.op("lock", Access::Lock(mx), |_| Outcome::Next);
    w.op("write", Access::DataWrite(cell), |cx| {
        cx.write(1);
        Outcome::Next
    });
    w.op("unlock", Access::Unlock(mx), |_| Outcome::Done);
    m.push_thread(w);
    let mut r = ThreadDef::new("reader");
    r.op("lock", Access::Lock(mx), |_| Outcome::Next);
    r.op("read", Access::DataRead(cell), |cx| {
        let _ = cx.read();
        Outcome::Next
    });
    r.op("unlock", Access::Unlock(mx), |_| Outcome::Done);
    m.push_thread(r);
    let report = Checker::default().run(&m);
    assert!(
        report.clean(),
        "mutex orders the accesses: {:?}",
        report.violations
    );
}

/// A Release store / Acquire load pair orders downstream plain access.
#[test]
fn release_acquire_edge_orders_plain_data() {
    let mut m = Model::new("rel-acq", "message passing via Release/Acquire");
    let flag = m.publish_atomic("flag", 0);
    let cell = m.data("cell", 0);
    let mut w = ThreadDef::new("writer");
    w.op("write", Access::DataWrite(cell), |cx| {
        cx.write(42);
        Outcome::Next
    });
    w.op(
        "publish",
        Access::AtomicStore(flag, Ordering::Release),
        |cx| {
            cx.store(1);
            Outcome::Done
        },
    );
    m.push_thread(w);
    let mut r = ThreadDef::new("reader");
    r.gate("check", Access::AtomicLoad(flag, Ordering::Acquire), |cx| {
        if cx.load() == 0 {
            Outcome::Done
        } else {
            Outcome::Next
        }
    });
    r.op("read", Access::DataRead(cell), |cx| {
        let v = cx.read();
        cx.check(v == 42, "published value visible");
        Outcome::Done
    });
    m.push_thread(r);
    let report = Checker::default().run(&m);
    assert!(report.clean(), "{:?}", report.violations);
}

/// Lock-order inversion across two mutexes: the checker must report the
/// deadlock with the interleaving that produces it.
#[test]
fn lock_order_inversion_reports_deadlock() {
    let mut m = Model::new("deadlock", "AB/BA lock-order inversion");
    let a = m.mutex("a");
    let b = m.mutex("b");
    let mut t0 = ThreadDef::new("ab");
    t0.op("lock-a", Access::Lock(a), |_| Outcome::Next);
    t0.op("lock-b", Access::Lock(b), |_| Outcome::Next);
    t0.op("unlock-b", Access::Unlock(b), |_| Outcome::Next);
    t0.op("unlock-a", Access::Unlock(a), |_| Outcome::Done);
    m.push_thread(t0);
    let mut t1 = ThreadDef::new("ba");
    t1.op("lock-b", Access::Lock(b), |_| Outcome::Next);
    t1.op("lock-a", Access::Lock(a), |_| Outcome::Next);
    t1.op("unlock-a", Access::Unlock(a), |_| Outcome::Next);
    t1.op("unlock-b", Access::Unlock(b), |_| Outcome::Done);
    m.push_thread(t1);
    let report = Checker::default().run(&m);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::Deadlock)),
        "expected a deadlock, got {:?}",
        report.violations
    );
}

/// Exploration must be fast enough for CI: all five models plus the full
/// mutation suite in well under the 60-second budget.
#[test]
fn full_suite_explores_quickly() {
    let start = std::time::Instant::now();
    for m in all_models(&dacce_mc::Orderings::default()) {
        let _ = Checker::default().run(&m);
    }
    for mu in mutants() {
        let m = model(mu.model, &mu.orderings).unwrap();
        let _ = Checker::default().run(&m);
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "exploration blew the CI budget: {:?}",
        start.elapsed()
    );
}
