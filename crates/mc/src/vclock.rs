//! Vector clocks for the happens-before analysis.
//!
//! One component per model thread. A clock `a` happens-before `b` iff
//! `a ⊑ b` component-wise; two accesses race iff neither clock is ⊑ the
//! other at the time of the second access. Only *comparisons* between
//! clocks ever matter to the checker, which is what makes the per-column
//! rank canonicalisation in the memo key sound (see `checker::state_key`).

/// A fixed-width vector clock (one component per model thread).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock over `threads` components.
    #[must_use]
    pub fn new(threads: usize) -> VClock {
        VClock(vec![0; threads])
    }

    /// Number of components.
    #[must_use]
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Component `t`.
    #[must_use]
    pub fn get(&self, t: usize) -> u64 {
        self.0[t]
    }

    /// Sets component `t` to `v`.
    pub fn set(&mut self, t: usize, v: u64) {
        self.0[t] = v;
    }

    /// Advances component `t` by one (a local step of thread `t`).
    pub fn tick(&mut self, t: usize) {
        self.0[t] += 1;
    }

    /// Component-wise maximum (the join of two knowledge frontiers).
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ⊑ other` component-wise (self happens-before other
    /// when `self` is an event clock and `other` an observer's clock).
    #[must_use]
    pub fn leq(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Resets every component to zero (a Relaxed store clearing the
    /// synchronises-with payload of an atomic location).
    pub fn clear(&mut self) {
        self.0.fill(0);
    }

    /// The raw components, for canonicalisation.
    #[must_use]
    pub fn components(&self) -> &[u64] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leq() {
        let mut a = VClock::new(3);
        let mut b = VClock::new(3);
        a.set(0, 2);
        b.set(1, 5);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.components(), &[2, 5, 0]);
    }

    #[test]
    fn tick_orders_successive_events() {
        let mut c = VClock::new(2);
        let before = c.clone();
        c.tick(0);
        assert!(before.leq(&c));
        assert!(!c.leq(&before));
    }
}
