//! CLI for the DACCE protocol model checker.
//!
//! ```text
//! dacce_mc [--list] [--model NAME] [--models-only] [--mutants-only]
//!          [--csv PATH]
//! ```
//!
//! With no mode flag, runs everything: all five protocol models under the
//! real orderings (must be clean) and the full mutation suite (every
//! mutant must be caught with a concrete interleaving trace). Exits
//! nonzero when a real model reports a violation or a mutant goes
//! uncaught.

use std::fmt::Write as _;
use std::process::ExitCode;

use dacce_mc::{all_models, model, mutants, Checker, Orderings, Report};

struct Row {
    kind: &'static str,
    name: String,
    report: Report,
    /// For mutants: whether the checker caught the weakened ordering.
    expected_violation: bool,
}

fn print_report(row: &Row) {
    let r = &row.report;
    let status = if row.expected_violation {
        if r.clean() {
            "MISSED"
        } else {
            "caught"
        }
    } else if r.clean() {
        "ok"
    } else {
        "VIOLATION"
    };
    println!(
        "{:7} {:38} {:9} interleavings {:6} transitions {:6} states {:5} memo-hits {:5} wall {:>8.2?}",
        row.kind, row.name, status, r.interleavings, r.transitions, r.states, r.memo_hits, r.wall
    );
    if !r.clean() {
        for v in r
            .violations
            .iter()
            .take(if row.expected_violation { 1 } else { 4 })
        {
            println!("        {:?} at {}.{}", v.kind, v.thread, v.op);
            println!("        interleaving: {}", v.trace.join(" -> "));
        }
    }
}

fn run_models(rows: &mut Vec<Row>) {
    for m in all_models(&Orderings::default()) {
        let report = Checker::default().run(&m);
        rows.push(Row {
            kind: "model",
            name: m.name.clone(),
            report,
            expected_violation: false,
        });
    }
}

fn run_mutants(rows: &mut Vec<Row>) {
    for mu in mutants() {
        let m = model(mu.model, &mu.orderings).expect("mutant names a known model");
        let report = Checker::default().run(&m);
        rows.push(Row {
            kind: "mutant",
            name: format!("{}/{} ({})", mu.model, mu.name, mu.weakens),
            report,
            expected_violation: true,
        });
    }
}

fn write_csv(path: &str, rows: &[Row]) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kind,name,interleavings,transitions,states,memo_hits,wall_us,violations,pass"
    );
    for row in rows {
        let r = &row.report;
        let pass = if row.expected_violation {
            !r.clean()
        } else {
            r.clean()
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            row.kind,
            row.name.split(' ').next().unwrap_or(&row.name),
            r.interleavings,
            r.transitions,
            r.states,
            r.memo_hits,
            r.wall.as_micros(),
            r.violations.len(),
            pass
        );
    }
    std::fs::write(path, out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv: Option<String> = None;
    let mut one_model: Option<String> = None;
    let mut models_only = false;
    let mut mutants_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                println!("models (real orderings, must be clean):");
                for m in all_models(&Orderings::default()) {
                    println!("  {:22} {}", m.name, m.about);
                }
                println!("mutants (one weakened edge each, must be caught):");
                for mu in mutants() {
                    println!("  {:22} {}  [{}]", mu.model, mu.name, mu.weakens);
                }
                return ExitCode::SUCCESS;
            }
            "--model" => match it.next() {
                Some(n) => one_model = Some(n.clone()),
                None => {
                    eprintln!("--model requires a name (see --list)");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => match it.next() {
                Some(p) => csv = Some(p.clone()),
                None => {
                    eprintln!("--csv requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--models-only" => models_only = true,
            "--mutants-only" => mutants_only = true,
            other => {
                eprintln!("unknown argument: {other} (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rows = Vec::new();
    if let Some(name) = one_model {
        let Some(m) = model(&name, &Orderings::default()) else {
            eprintln!("unknown model: {name} (see --list)");
            return ExitCode::FAILURE;
        };
        let report = Checker::default().run(&m);
        rows.push(Row {
            kind: "model",
            name,
            report,
            expected_violation: false,
        });
    } else {
        if !mutants_only {
            run_models(&mut rows);
        }
        if !models_only {
            run_mutants(&mut rows);
        }
    }

    let mut failed = false;
    for row in &rows {
        print_report(row);
        let pass = if row.expected_violation {
            !row.report.clean()
        } else {
            row.report.clean()
        };
        failed |= !pass;
    }
    if let Some(path) = csv {
        if let Err(e) = write_csv(&path, &rows) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if failed {
        eprintln!("model check FAILED");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
