//! dacce-mc: a loom-lite model checker for the DACCE lock-free
//! protocols.
//!
//! The production runtime routes every atomic and lock operation through
//! the `dacce-sync` shim, which names the `Ordering` of each protocol
//! edge as a constant (`dacce_sync::protocol`). This crate closes the
//! loop: it models the five protocols those constants implement —
//! snapshot publish vs. fast-path read, lazy migration vs. re-encode,
//! inline-cache invalidation vs. republish, seqlock ring write vs. drain,
//! lineage adopt vs. copy-on-write split — as bounded step machines, then
//! exhaustively explores every sequentially-consistent interleaving of
//! each model while running a vector-clock happens-before analysis.
//!
//! Three rules are checked (see [`checker`] for the details): **R1** data
//! races on plain data, **R2** publish-gate loads crossing weak
//! reads-from edges (the per-edge proof obligation that catches a single
//! weakened `Ordering` even when another happens-before path would mask
//! the race), and **R3** seqlock sections consuming torn or
//! un-synchronised words. A mutation suite ([`models::mutants`]) weakens
//! one ordering per protocol and requires the checker to produce a
//! concrete failing interleaving for each — the model-checking analogue
//! of "tests must fail when the code is broken".
//!
//! The explorer uses sleep-set partial-order reduction (commuting steps
//! are explored in one order only) and value-context memoisation with
//! rank-canonicalised clock matrices, so all five models check in
//! well under a second.
//!
//! ```
//! use dacce_mc::{Checker, Orderings};
//!
//! let ord = Orderings::default();
//! for model in dacce_mc::all_models(&ord) {
//!     let report = Checker::default().run(&model);
//!     assert!(report.clean(), "{}: {:?}", report.model, report.violations);
//! }
//! ```

pub use dacce_sync::Ordering;

pub mod checker;
pub mod model;
pub mod models;
pub mod vclock;

pub use checker::{Checker, Ctx, Report, Violation, ViolationKind};
pub use model::{Access, AtomicId, DataId, Model, MutexId, Op, Outcome, ThreadDef};
pub use models::{
    all_models, model, mutants, ring_drain_no_recheck, Mutant, Orderings, MODEL_NAMES,
};
pub use vclock::VClock;
