//! The explorer: exhaustive DFS over sequentially-consistent
//! interleavings with sleep-set partial-order reduction, value-context
//! state memoisation, and a vector-clock happens-before checker.
//!
//! # What is checked
//!
//! Three rules run during every transition:
//!
//! - **R1 — data race.** Two conflicting plain-data accesses unordered by
//!   happens-before. Classic vector-clock (FastTrack-style) detection:
//!   each data location carries the clock of its last write and a vector
//!   of per-thread read times.
//! - **R2 — stale publish gate.** A *gate* load (a load whose observed
//!   value admits the thread into consuming published state — epoch
//!   checks, generation checks, seqlock stamp validation) observes a
//!   foreign value over a weak reads-from edge: the store was not
//!   `Release` or the load is not `Acquire`. This is deliberately a
//!   *per-edge proof obligation*, not a whole-execution race check: a
//!   redundant happens-before path (a mutex, an adjacent released
//!   location) does not excuse a weak edge, which is exactly what lets a
//!   single weakened `Ordering` mutant be caught deterministically even
//!   when locks would mask the downstream data race.
//! - **R3 — torn seqlock consume.** Every seqlock-section load records
//!   the ghost version of the value it saw and whether the write that
//!   produced it happens-before the reader. [`Ctx::seq_consume`] then
//!   flags consuming a mix of versions, or any word whose write is not
//!   ordered before the consume. Under SC exploration the stamp recheck
//!   keeps this rule quiet; it exists to catch models (and protocol
//!   changes) that drop the recheck or validate obligations.
//!
//! Deadlock (no enabled thread while some thread is unfinished) and
//! effect-level assertion failures are reported as violations too.
//!
//! # Soundness of the memoisation
//!
//! The memo key contains everything future behaviour depends on: pcs,
//! locals, atomic values/writer metadata, data values, mutex owners, the
//! recorded seqlock reads, the sleep set, and the *entire clock matrix*
//! canonicalised per component by dense rank. Ranking is sound because
//! clocks only ever influence the checker through `⊑` comparisons, which
//! are component-wise order comparisons — absolute magnitudes never
//! matter.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::model::{Access, Model, Outcome};
use crate::vclock::VClock;
use crate::Ordering;

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

#[derive(Clone)]
struct AtomicLoc {
    value: u64,
    /// Ghost write count; version `k` is the `k`-th store to this cell.
    version: u64,
    /// Thread that produced the current value (`None` = initial value).
    last_writer: Option<usize>,
    /// Whether the producing store carried Release semantics (directly or
    /// via a preceding release fence).
    last_release: bool,
    /// The synchronises-with payload an Acquire load obtains. Set by a
    /// Release store, cleared by a Relaxed store, joined by RMWs
    /// (release-sequence preservation).
    sync_clock: VClock,
    /// Full clock of the producing store, for happens-before diagnosis
    /// and the R3 consume check.
    stamp_clock: VClock,
}

#[derive(Clone)]
struct DataLoc {
    value: u64,
    version: u64,
    writer: Option<usize>,
    write_clock: VClock,
    /// `read_clock[t]` = `C_t[t]` at thread `t`'s last read.
    read_clock: VClock,
}

#[derive(Clone)]
struct MutexLoc {
    owner: Option<usize>,
    clock: VClock,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct SeqRead {
    loc: usize,
    version: u64,
    /// Whether the producing write happens-before the reader at read time.
    hb: bool,
}

#[derive(Clone)]
struct ThreadRun {
    pc: usize,
    done: bool,
    clock: VClock,
    locals: Vec<u64>,
    /// Sync payloads of non-acquire loads since the last acquire fence;
    /// an Acquire fence joins this into the thread clock.
    acq_pending: VClock,
    /// Clock at the last release fence, if any: makes subsequent relaxed
    /// stores carry release semantics from that point.
    rel_fence: Option<VClock>,
    seq_reads: Vec<SeqRead>,
}

#[derive(Clone)]
struct State {
    threads: Vec<ThreadRun>,
    atomics: Vec<AtomicLoc>,
    datas: Vec<DataLoc>,
    mutexes: Vec<MutexLoc>,
    /// Sleep set: bitmask of threads whose next op need not be explored
    /// from this state (already covered by a sibling branch).
    sleep: u32,
    /// The interleaving prefix that reached this state, for traces.
    path: Vec<(usize, usize)>,
}

/// The kind of a reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// R1: two conflicting plain-data accesses unordered by HB.
    DataRace {
        /// Data location name.
        loc: String,
        /// `"read-write"`, `"write-write"`, or `"write-read"`.
        conflict: &'static str,
    },
    /// R2: a publish-gate load crossed a weak reads-from edge.
    StaleGate {
        /// Atomic location name.
        loc: String,
        /// Why the edge is weak.
        detail: String,
    },
    /// R3: a seqlock consume observed torn or un-synchronised words.
    TornSeqlock {
        /// Explanation of which word was torn / unordered.
        detail: String,
    },
    /// A model-level assertion failed (observed impossible value).
    Assertion {
        /// The assertion message.
        msg: String,
    },
    /// No thread is enabled but some thread is unfinished.
    Deadlock,
}

/// A violation plus the exact interleaving that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The thread executing the offending step.
    pub thread: String,
    /// The offending op's label.
    pub op: String,
    /// The full interleaving: `"thread.op"` per executed step, in order,
    /// ending with the offending step.
    pub trace: Vec<String>,
}

/// Exploration statistics and findings for one model run.
#[derive(Debug, Default)]
pub struct Report {
    /// Model name.
    pub model: String,
    /// Distinct violations (deduplicated by kind/site across
    /// interleavings; each carries its first concrete trace).
    pub violations: Vec<Violation>,
    /// Maximal interleavings actually walked to completion.
    pub interleavings: u64,
    /// Executed transitions.
    pub transitions: u64,
    /// Distinct canonical states visited.
    pub states: u64,
    /// Branches pruned because the canonical state was already visited.
    pub memo_hits: u64,
    /// Wall-clock exploration time.
    pub wall: Duration,
}

impl Report {
    /// Whether the run found no violations.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Effect-side handle to the exploring state: performs the op's declared
/// access with full happens-before bookkeeping. Every accessor asserts
/// the op declared the matching footprint.
pub struct Ctx<'a> {
    state: &'a mut State,
    model: &'a Model,
    tid: usize,
    access: Access,
    gate: bool,
    seq_track: bool,
    pending: Vec<ViolationKind>,
}

impl Ctx<'_> {
    /// Performs the declared atomic load and returns the value.
    pub fn load(&mut self) -> u64 {
        let Access::AtomicLoad(id, order) = self.access else {
            panic!(
                "op declared {:?}, effect performed an atomic load",
                self.access
            );
        };
        let publish = self.model.atomics[id.0].publish;
        let loc = &self.state.atomics[id.0];
        let value = loc.value;
        // R2: publish-gate loads must cross a Release->Acquire edge when
        // they observe a foreign value. Checked per-edge, before any join.
        if self.gate && publish {
            if let Some(w) = loc.last_writer {
                if w != self.tid && !(loc.last_release && is_acquire(order)) {
                    let detail = if loc.last_release {
                        format!("load is {order:?}, not Acquire")
                    } else {
                        "store published without Release".to_string()
                    };
                    self.pending.push(ViolationKind::StaleGate {
                        loc: self.model.atomic_name(id.0).to_string(),
                        detail,
                    });
                }
            }
        }
        let sync = self.state.atomics[id.0].sync_clock.clone();
        let th = &mut self.state.threads[self.tid];
        if is_acquire(order) {
            th.clock.join(&sync);
        } else {
            th.acq_pending.join(&sync);
        }
        if self.seq_track {
            let loc = &self.state.atomics[id.0];
            let hb = loc.stamp_clock.leq(&self.state.threads[self.tid].clock);
            let version = loc.version;
            self.state.threads[self.tid].seq_reads.push(SeqRead {
                loc: id.0,
                version,
                hb,
            });
        }
        value
    }

    /// Performs the declared atomic store.
    pub fn store(&mut self, value: u64) {
        let Access::AtomicStore(id, order) = self.access else {
            panic!(
                "op declared {:?}, effect performed an atomic store",
                self.access
            );
        };
        let release_clock = if is_release(order) {
            Some(self.state.threads[self.tid].clock.clone())
        } else {
            self.state.threads[self.tid].rel_fence.clone()
        };
        let loc = &mut self.state.atomics[id.0];
        loc.value = value;
        loc.version += 1;
        loc.last_writer = Some(self.tid);
        match release_clock {
            Some(c) => {
                loc.sync_clock = c;
                loc.last_release = true;
            }
            None => {
                loc.sync_clock.clear();
                loc.last_release = false;
            }
        }
        loc.stamp_clock = self.state.threads[self.tid].clock.clone();
    }

    /// Performs the declared atomic read-modify-write, applying `f` to
    /// the current value; returns the previous value.
    pub fn rmw(&mut self, f: impl FnOnce(u64) -> u64) -> u64 {
        let Access::AtomicRmw(id, order) = self.access else {
            panic!(
                "op declared {:?}, effect performed an atomic rmw",
                self.access
            );
        };
        let sync = self.state.atomics[id.0].sync_clock.clone();
        let th = &mut self.state.threads[self.tid];
        if is_acquire(order) {
            th.clock.join(&sync);
        } else {
            th.acq_pending.join(&sync);
        }
        let clock = th.clock.clone();
        let loc = &mut self.state.atomics[id.0];
        let old = loc.value;
        loc.value = f(old);
        loc.version += 1;
        loc.last_writer = Some(self.tid);
        if is_release(order) {
            // RMWs continue the release sequence: join rather than
            // replace, so earlier Release payloads survive.
            loc.sync_clock.join(&clock);
            loc.last_release = true;
        }
        loc.stamp_clock.join(&clock);
        old
    }

    /// Performs the declared plain-data read (R1-checked).
    pub fn read(&mut self) -> u64 {
        let Access::DataRead(id) = self.access else {
            panic!(
                "op declared {:?}, effect performed a data read",
                self.access
            );
        };
        let th_clock = self.state.threads[self.tid].clock.clone();
        let loc = &mut self.state.datas[id.0];
        if !loc.write_clock.leq(&th_clock) {
            self.pending.push(ViolationKind::DataRace {
                loc: self.model.data_name(id.0).to_string(),
                conflict: "write-read",
            });
        }
        let t = self.tid;
        let now = th_clock.get(t);
        loc.read_clock.set(t, now);
        loc.value
    }

    /// Performs the declared plain-data write (R1-checked).
    pub fn write(&mut self, value: u64) {
        let Access::DataWrite(id) = self.access else {
            panic!(
                "op declared {:?}, effect performed a data write",
                self.access
            );
        };
        let th_clock = self.state.threads[self.tid].clock.clone();
        let loc = &mut self.state.datas[id.0];
        if !loc.write_clock.leq(&th_clock) {
            self.pending.push(ViolationKind::DataRace {
                loc: self.model.data_name(id.0).to_string(),
                conflict: "write-write",
            });
        }
        if !loc.read_clock.leq(&th_clock) {
            self.pending.push(ViolationKind::DataRace {
                loc: self.model.data_name(id.0).to_string(),
                conflict: "read-write",
            });
        }
        loc.value = value;
        loc.version += 1;
        loc.writer = Some(self.tid);
        loc.write_clock = th_clock;
    }

    /// R3: consumes the seqlock reads recorded since the section began.
    /// Flags mixed ghost versions relative to `expect_version` and any
    /// word whose producing write is not happens-before the consumer.
    pub fn seq_consume(&mut self, expect_version: u64) {
        let reads = std::mem::take(&mut self.state.threads[self.tid].seq_reads);
        for r in &reads {
            if r.version != expect_version {
                self.pending.push(ViolationKind::TornSeqlock {
                    detail: format!(
                        "word {} observed version {} in a section validated for version {}",
                        self.model.atomic_name(r.loc),
                        r.version,
                        expect_version
                    ),
                });
            }
            if !r.hb {
                self.pending.push(ViolationKind::TornSeqlock {
                    detail: format!(
                        "word {} consumed without a happens-before edge from its writer",
                        self.model.atomic_name(r.loc)
                    ),
                });
            }
        }
    }

    /// Discards recorded seqlock reads (validation failed; nothing is
    /// consumed).
    pub fn seq_discard(&mut self) {
        self.state.threads[self.tid].seq_reads.clear();
    }

    /// A model-level assertion: reports a violation when `cond` is false.
    pub fn check(&mut self, cond: bool, msg: &str) {
        if !cond {
            self.pending.push(ViolationKind::Assertion {
                msg: msg.to_string(),
            });
        }
    }

    /// Reads local slot `i` of the executing thread.
    #[must_use]
    pub fn local(&self, i: usize) -> u64 {
        self.state.threads[self.tid].locals[i]
    }

    /// Writes local slot `i` of the executing thread.
    pub fn set_local(&mut self, i: usize, v: u64) {
        self.state.threads[self.tid].locals[i] = v;
    }
}

/// The explorer. One instance checks one [`Model`].
pub struct Checker {
    /// Cap on recorded distinct violations (exploration continues, later
    /// duplicates of the same site are merged regardless).
    pub max_violations: usize,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker { max_violations: 16 }
    }
}

struct Explore<'a> {
    model: &'a Model,
    visited: HashSet<Vec<u64>>,
    report: Report,
    /// Dedup key per violation: (discriminant-ish string, thread, op).
    seen_violations: Vec<(String, usize, usize)>,
    max_violations: usize,
}

impl Checker {
    /// Exhaustively explores `model` and returns the findings.
    #[must_use]
    pub fn run(&self, model: &Model) -> Report {
        let n = model.threads.len();
        assert!(n <= 8, "thread bitmask is u32-backed; keep models small");
        let start = Instant::now();
        let init = State {
            threads: (0..n)
                .map(|t| ThreadRun {
                    pc: 0,
                    done: false,
                    // Each thread starts with its own component nonzero so
                    // a first-op access is not vacuously ordered before
                    // everything (the zero clock is ⊑ every clock).
                    clock: {
                        let mut c = VClock::new(n);
                        c.tick(t);
                        c
                    },
                    locals: vec![0; model.locals],
                    acq_pending: VClock::new(n),
                    rel_fence: None,
                    seq_reads: Vec::new(),
                })
                .collect(),
            atomics: model
                .atomics
                .iter()
                .map(|a| AtomicLoc {
                    value: a.init,
                    version: 0,
                    last_writer: None,
                    last_release: false,
                    sync_clock: VClock::new(n),
                    stamp_clock: VClock::new(n),
                })
                .collect(),
            datas: model
                .datas
                .iter()
                .map(|d| DataLoc {
                    value: d.init,
                    version: 0,
                    writer: None,
                    write_clock: VClock::new(n),
                    read_clock: VClock::new(n),
                })
                .collect(),
            mutexes: model
                .mutexes
                .iter()
                .map(|_| MutexLoc {
                    owner: None,
                    clock: VClock::new(n),
                })
                .collect(),
            sleep: 0,
            path: Vec::new(),
        };
        let mut ex = Explore {
            model,
            visited: HashSet::new(),
            report: Report {
                model: model.name.clone(),
                ..Report::default()
            },
            seen_violations: Vec::new(),
            max_violations: self.max_violations,
        };
        ex.explore(init);
        ex.report.states = ex.visited.len() as u64;
        ex.report.wall = start.elapsed();
        ex.report
    }
}

impl Explore<'_> {
    fn enabled(&self, s: &State, t: usize) -> bool {
        let th = &s.threads[t];
        if th.done || th.pc >= self.model.threads[t].ops.len() {
            return false;
        }
        match self.model.threads[t].ops[th.pc].access {
            Access::Lock(m) => s.mutexes[m.0].owner.is_none(),
            _ => true,
        }
    }

    fn explore(&mut self, s: State) {
        if !self.visited.insert(state_key(self.model, &s)) {
            self.report.memo_hits += 1;
            return;
        }
        let n = self.model.threads.len();
        let enabled: Vec<usize> = (0..n).filter(|&t| self.enabled(&s, t)).collect();
        if enabled.is_empty() {
            if s.threads.iter().all(|t| t.done) {
                self.report.interleavings += 1;
            } else if s.threads.iter().any(|t| !t.done) {
                // Some thread is stuck on a mutex no runnable thread will
                // ever release.
                let t = (0..n).find(|&t| !s.threads[t].done).unwrap_or(0);
                let th = &s.threads[t];
                let op = th.pc.min(self.model.threads[t].ops.len() - 1);
                self.record(&s, t, op, ViolationKind::Deadlock);
            }
            return;
        }
        let mut sleep = s.sleep;
        for &t in &enabled {
            if sleep & (1 << t) != 0 {
                continue;
            }
            let mut next = s.clone();
            // Wake sleeping threads whose next op is dependent with t's.
            let t_access = self.model.threads[t].ops[next.threads[t].pc].access;
            let mut child_sleep = sleep;
            for u in 0..n {
                if child_sleep & (1 << u) != 0 && self.enabled(&next, u) {
                    let u_access = self.model.threads[u].ops[next.threads[u].pc].access;
                    if t_access.dependent(u_access) {
                        child_sleep &= !(1 << u);
                    }
                }
            }
            next.sleep = child_sleep;
            self.step(&mut next, t);
            self.explore(next);
            sleep |= 1 << t;
        }
    }

    fn step(&mut self, s: &mut State, t: usize) {
        self.report.transitions += 1;
        let op = &self.model.threads[t].ops[s.threads[t].pc];
        s.path.push((t, s.threads[t].pc));
        // Access-level scheduler bookkeeping (locks, fences).
        match op.access {
            Access::Lock(m) => {
                debug_assert!(s.mutexes[m.0].owner.is_none());
                s.mutexes[m.0].owner = Some(t);
                let clock = s.mutexes[m.0].clock.clone();
                s.threads[t].clock.join(&clock);
            }
            Access::Unlock(m) => {
                assert_eq!(
                    s.mutexes[m.0].owner,
                    Some(t),
                    "model bug: unlock of a mutex the thread does not hold"
                );
                s.mutexes[m.0].clock = s.threads[t].clock.clone();
                s.mutexes[m.0].owner = None;
            }
            Access::Fence(order) => {
                if is_acquire(order) {
                    let pend = std::mem::replace(
                        &mut s.threads[t].acq_pending,
                        VClock::new(self.model.threads.len()),
                    );
                    s.threads[t].clock.join(&pend);
                }
                if is_release(order) {
                    s.threads[t].rel_fence = Some(s.threads[t].clock.clone());
                }
            }
            _ => {}
        }
        let mut cx = Ctx {
            state: s,
            model: self.model,
            tid: t,
            access: op.access,
            gate: op.gate,
            seq_track: op.seq_track,
            pending: Vec::new(),
        };
        let outcome = (op.effect)(&mut cx);
        let pending = std::mem::take(&mut cx.pending);
        let pc = s.threads[t].pc;
        for kind in pending {
            self.record(s, t, pc, kind);
        }
        s.threads[t].clock.tick(t);
        match outcome {
            Outcome::Next => s.threads[t].pc += 1,
            Outcome::Goto(i) => s.threads[t].pc = i,
            Outcome::Done => s.threads[t].done = true,
        }
        if s.threads[t].pc >= self.model.threads[t].ops.len() {
            s.threads[t].done = true;
        }
    }

    fn record(&mut self, s: &State, t: usize, op: usize, kind: ViolationKind) {
        let key = (format!("{kind:?}"), t, op);
        if self.seen_violations.contains(&key) {
            return;
        }
        self.seen_violations.push(key);
        if self.report.violations.len() >= self.max_violations {
            return;
        }
        let trace = s
            .path
            .iter()
            .map(|&(tt, pc)| {
                format!(
                    "{}.{}",
                    self.model.threads[tt].name, self.model.threads[tt].ops[pc].label
                )
            })
            .collect();
        self.report.violations.push(Violation {
            kind,
            thread: self.model.threads[t].name.clone(),
            op: self.model.threads[t].ops[op].label.clone(),
            trace,
        });
    }
}

/// Canonical memo key for a state. Clock components are replaced by their
/// dense rank within each component column (see the module docs for why
/// that is sound).
fn state_key(model: &Model, s: &State) -> Vec<u64> {
    let n = model.threads.len();
    let mut key: Vec<u64> = Vec::with_capacity(64);
    for th in &s.threads {
        key.push(th.pc as u64);
        key.push(u64::from(th.done));
        key.extend_from_slice(&th.locals);
        key.push(th.seq_reads.len() as u64);
        for r in &th.seq_reads {
            key.push(r.loc as u64);
            key.push(r.version);
            key.push(u64::from(r.hb));
        }
        key.push(u64::from(th.rel_fence.is_some()));
    }
    for a in &s.atomics {
        key.push(a.value);
        key.push(a.version);
        key.push(a.last_writer.map_or(0, |w| w as u64 + 1));
        key.push(u64::from(a.last_release));
    }
    for d in &s.datas {
        key.push(d.value);
        key.push(d.version);
        key.push(d.writer.map_or(0, |w| w as u64 + 1));
    }
    for m in &s.mutexes {
        key.push(m.owner.map_or(0, |o| o as u64 + 1));
    }
    key.push(u64::from(s.sleep));
    // Clock matrix, canonicalised per component column by dense rank.
    let clocks: Vec<&VClock> = s
        .threads
        .iter()
        .flat_map(|t| {
            let mut v = vec![&t.clock, &t.acq_pending];
            if let Some(rf) = &t.rel_fence {
                v.push(rf);
            }
            v
        })
        .chain(
            s.atomics
                .iter()
                .flat_map(|a| [&a.sync_clock, &a.stamp_clock]),
        )
        .chain(s.datas.iter().flat_map(|d| [&d.write_clock, &d.read_clock]))
        .chain(s.mutexes.iter().map(|m| &m.clock))
        .collect();
    for i in 0..n {
        let mut col: Vec<u64> = clocks.iter().map(|c| c.get(i)).collect();
        col.sort_unstable();
        col.dedup();
        for c in &clocks {
            let rank = col.binary_search(&c.get(i)).unwrap_or(0) as u64;
            key.push(rank);
        }
    }
    key
}
