//! Bounded models of the five DACCE lock-free protocols, parameterised
//! over the protocol [`Orderings`] so a mutation suite can weaken one
//! edge at a time and prove the checker catches it.
//!
//! Each model is deliberately tiny (2–3 threads, 2–3 shared operations
//! per thread): large enough that every interleaving of the protocol's
//! publish/consume edges exists, small enough that DFS exploration is
//! exhaustive in milliseconds. The `Ordering` on every declared access is
//! taken from the same named constants the production code uses
//! (`dacce_sync::protocol`), so the models and the runtime cannot drift
//! apart silently: weakening a constant weakens both, and the CI mutation
//! suite overrides one field per protocol instead.

use dacce_sync::protocol;

use crate::model::{Access, Model, Outcome, ThreadDef};
use crate::Ordering;

/// The complete set of protocol orderings the models exercise. Defaults
/// mirror `dacce_sync::protocol`; mutants override exactly one field.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub struct Orderings {
    pub epoch_publish: Ordering,
    pub epoch_check: Ordering,
    pub icache_epoch_check: Ordering,
    pub ring_stamp_busy: Ordering,
    pub ring_stamp_publish: Ordering,
    pub ring_head_publish: Ordering,
    pub ring_head_read: Ordering,
    pub ring_stamp_validate: Ordering,
    pub ring_validate_fence: Ordering,
    pub ring_stamp_recheck: Ordering,
    pub lineage_gen_publish: Ordering,
    pub lineage_gen_check: Ordering,
}

impl Default for Orderings {
    fn default() -> Orderings {
        Orderings {
            epoch_publish: protocol::EPOCH_PUBLISH,
            epoch_check: protocol::EPOCH_CHECK,
            icache_epoch_check: protocol::ICACHE_EPOCH_CHECK,
            ring_stamp_busy: protocol::RING_STAMP_BUSY,
            ring_stamp_publish: protocol::RING_STAMP_PUBLISH,
            ring_head_publish: protocol::RING_HEAD_PUBLISH,
            ring_head_read: protocol::RING_HEAD_READ,
            ring_stamp_validate: protocol::RING_STAMP_VALIDATE,
            ring_validate_fence: protocol::RING_VALIDATE_FENCE,
            ring_stamp_recheck: protocol::RING_STAMP_RECHECK,
            lineage_gen_publish: protocol::LINEAGE_GEN_PUBLISH,
            lineage_gen_check: protocol::LINEAGE_GEN_CHECK,
        }
    }
}

/// The model names, in the order `all_models` returns them.
pub const MODEL_NAMES: [&str; 5] = [
    "snapshot-publish",
    "lazy-migration",
    "icache-invalidation",
    "ring-drain",
    "lineage-adopt",
];

/// Builds the named model, or `None` for an unknown name.
#[must_use]
pub fn model(name: &str, ord: &Orderings) -> Option<Model> {
    match name {
        "snapshot-publish" => Some(snapshot_publish(ord)),
        "lazy-migration" => Some(lazy_migration(ord)),
        "icache-invalidation" => Some(icache_invalidation(ord)),
        "ring-drain" => Some(ring_drain(ord, true)),
        "lineage-adopt" => Some(lineage_adopt(ord)),
        _ => None,
    }
}

/// All five protocol models under the given orderings.
#[must_use]
pub fn all_models(ord: &Orderings) -> Vec<Model> {
    MODEL_NAMES
        .iter()
        .map(|n| model(n, ord).expect("known name"))
        .collect()
}

/// One deliberately weakened ordering for the mutation suite.
#[derive(Clone, Copy, Debug)]
pub struct Mutant {
    /// Model the mutant runs against.
    pub model: &'static str,
    /// Mutant identifier (CLI/report name).
    pub name: &'static str,
    /// The protocol constant being weakened, for reports.
    pub weakens: &'static str,
    /// Every model that uses the weakened constant (protocols 1–3 share
    /// the epoch pair by design, so a mutation of it is visible to all of
    /// them); models outside this set must stay clean under the mutant.
    pub affects: &'static [&'static str],
    /// The mutated ordering set.
    pub orderings: Orderings,
}

/// The mutation suite: one weakened edge per protocol. The checker must
/// report at least one violation (with a concrete interleaving trace) for
/// every entry.
#[must_use]
pub fn mutants() -> Vec<Mutant> {
    let base = Orderings::default();
    vec![
        Mutant {
            model: "snapshot-publish",
            name: "epoch-check-relaxed",
            weakens: "EPOCH_CHECK: Acquire -> Relaxed",
            affects: &["snapshot-publish", "lazy-migration"],
            orderings: Orderings {
                epoch_check: Ordering::Relaxed,
                ..base
            },
        },
        Mutant {
            model: "lazy-migration",
            name: "epoch-publish-relaxed",
            weakens: "EPOCH_PUBLISH: Release -> Relaxed",
            affects: &["snapshot-publish", "lazy-migration", "icache-invalidation"],
            orderings: Orderings {
                epoch_publish: Ordering::Relaxed,
                ..base
            },
        },
        Mutant {
            model: "icache-invalidation",
            name: "icache-check-relaxed",
            weakens: "ICACHE_EPOCH_CHECK: Acquire -> Relaxed",
            affects: &["icache-invalidation"],
            orderings: Orderings {
                icache_epoch_check: Ordering::Relaxed,
                ..base
            },
        },
        Mutant {
            model: "ring-drain",
            name: "stamp-publish-relaxed",
            weakens: "RING_STAMP_PUBLISH: Release -> Relaxed",
            affects: &["ring-drain"],
            orderings: Orderings {
                ring_stamp_publish: Ordering::Relaxed,
                ..base
            },
        },
        Mutant {
            model: "lineage-adopt",
            name: "gen-check-relaxed",
            weakens: "LINEAGE_GEN_CHECK: Acquire -> Relaxed",
            affects: &["lineage-adopt"],
            orderings: Orderings {
                lineage_gen_check: Ordering::Relaxed,
                ..base
            },
        },
    ]
}

/// Protocol 1 — snapshot publish vs. fast-path read.
///
/// The re-encoder installs a new `EncodingSnapshot` (modelled as a plain
/// table write) and publishes its epoch; a reader checks the epoch on its
/// fast path and consumes the table only when it observed the new epoch.
/// Mirrors `Tracker::republish` / `ThreadHandle::refresh`.
fn snapshot_publish(ord: &Orderings) -> Model {
    let mut m = Model::new(
        "snapshot-publish",
        "re-encoder publishes a snapshot epoch; reader fast-path consumes it",
    );
    let epoch = m.publish_atomic("epoch", 0);
    let table = m.data("table", 0);

    let mut reencoder = ThreadDef::new("reencoder");
    reencoder.op("write-table", Access::DataWrite(table), |cx| {
        cx.write(1);
        Outcome::Next
    });
    reencoder.op(
        "publish-epoch",
        Access::AtomicStore(epoch, ord.epoch_publish),
        |cx| {
            cx.store(1);
            Outcome::Done
        },
    );
    m.push_thread(reencoder);

    let mut reader = ThreadDef::new("reader");
    reader.gate(
        "check-epoch",
        Access::AtomicLoad(epoch, ord.epoch_check),
        |cx| {
            if cx.load() == 0 {
                Outcome::Done // stale epoch: fast path stays on its snapshot
            } else {
                Outcome::Next
            }
        },
    );
    reader.op("read-table", Access::DataRead(table), |cx| {
        let v = cx.read();
        cx.check(v == 1, "observed epoch 1 but stale table");
        Outcome::Done
    });
    m.push_thread(reader);
    m
}

/// Protocol 2 — lazy migration vs. re-encode.
///
/// The re-encoder rewrites the dictionaries under the shared lock and
/// bumps the epoch; a migrating thread notices the epoch on its fast path
/// (outside the lock — that probe is the proof obligation) and then takes
/// the slow path to migrate. A third fast-path thread only probes.
/// Mirrors `reencode_locked` / the `trap_call` migration path.
fn lazy_migration(ord: &Orderings) -> Model {
    let mut m = Model::new(
        "lazy-migration",
        "re-encoder republishes under lock; migrator probes the epoch lock-free, then migrates",
    );
    let epoch = m.publish_atomic("epoch", 0);
    let dict = m.data("dict", 0);
    let shared = m.mutex("shared");

    let mut reencoder = ThreadDef::new("reencoder");
    reencoder.op("lock-shared", Access::Lock(shared), |_| Outcome::Next);
    reencoder.op("write-dict", Access::DataWrite(dict), |cx| {
        cx.write(1);
        Outcome::Next
    });
    reencoder.op(
        "publish-epoch",
        Access::AtomicStore(epoch, ord.epoch_publish),
        |cx| {
            cx.store(1);
            Outcome::Next
        },
    );
    reencoder.op("unlock-shared", Access::Unlock(shared), |_| Outcome::Done);
    m.push_thread(reencoder);

    let mut migrator = ThreadDef::new("migrator");
    migrator.gate(
        "probe-epoch",
        Access::AtomicLoad(epoch, ord.epoch_check),
        |cx| {
            if cx.load() == 0 {
                Outcome::Done
            } else {
                Outcome::Next
            }
        },
    );
    migrator.op("lock-shared", Access::Lock(shared), |_| Outcome::Next);
    migrator.op("migrate-read-dict", Access::DataRead(dict), |cx| {
        let v = cx.read();
        cx.check(v == 1, "migrated against a stale dictionary");
        Outcome::Next
    });
    migrator.op("unlock-shared", Access::Unlock(shared), |_| Outcome::Done);
    m.push_thread(migrator);

    let mut worker = ThreadDef::new("fastpath");
    worker.gate(
        "probe-epoch",
        Access::AtomicLoad(epoch, ord.epoch_check),
        |cx| {
            let _ = cx.load();
            Outcome::Done
        },
    );
    m.push_thread(worker);
    m
}

/// Protocol 3 — inline-cache invalidation vs. republish.
///
/// A republish moves the dispatch target and bumps the epoch; a caller's
/// inline-cache hit is valid only if the entry's stamped epoch equals the
/// current one, so the epoch load is the gate that protects the cached
/// target. Mirrors `InlineCache::probe` against `Tracker::republish`.
fn icache_invalidation(ord: &Orderings) -> Model {
    let mut m = Model::new(
        "icache-invalidation",
        "republish retargets a polymorphic site; caller validates its inline-cache epoch stamp",
    );
    let epoch = m.publish_atomic("epoch", 0);
    let target = m.data("target", 0);

    let mut republisher = ThreadDef::new("republisher");
    republisher.op("retarget-site", Access::DataWrite(target), |cx| {
        cx.write(1);
        Outcome::Next
    });
    republisher.op(
        "publish-epoch",
        Access::AtomicStore(epoch, ord.epoch_publish),
        |cx| {
            cx.store(1);
            Outcome::Done
        },
    );
    m.push_thread(republisher);

    let mut caller = ThreadDef::new("caller");
    caller.gate(
        "validate-cache-epoch",
        Access::AtomicLoad(epoch, ord.icache_epoch_check),
        |cx| {
            if cx.load() == 0 {
                Outcome::Done // stamp matches: inline-cache hit, cached target used
            } else {
                Outcome::Next // invalidated: refill from the dispatch table
            }
        },
    );
    caller.op("refill-read-target", Access::DataRead(target), |cx| {
        let v = cx.read();
        cx.check(v == 1, "cache invalidated but read a stale target");
        Outcome::Done
    });
    m.push_thread(caller);
    m
}

/// Protocol 4 — seqlock ring write vs. drain.
///
/// A capacity-1 ring: the producer pushes two records (the second
/// overwrites the slot mid-flight), the drainer runs one unrolled
/// validate/read/fence/recheck section for record 0. Word cells are
/// relaxed atomics exactly as in `EventRing`; the stamp-validate load is
/// the publish gate. `recheck` controls whether the drainer re-validates
/// the stamp after the word reads — disabling it (see
/// [`ring_drain_no_recheck`]) makes torn consumes reachable and is how
/// the R3 rule's teeth are tested.
fn ring_drain(ord: &Orderings, recheck: bool) -> Model {
    let mut m = Model::new(
        if recheck {
            "ring-drain"
        } else {
            "ring-drain-no-recheck"
        },
        "seqlock event ring: producer overwrites the slot while the drainer validates and reads",
    );
    let stamp = m.publish_atomic("stamp", 0);
    let w0 = m.atomic("word0", 0);
    let w1 = m.atomic("word1", 0);
    let head = m.publish_atomic("head", 0);
    const WORD_ACCESS: Ordering = protocol::RING_WORD_ACCESS;

    let mut producer = ThreadDef::new("producer");
    for rec in 0..2u64 {
        producer.op(
            if rec == 0 { "busy-0" } else { "busy-1" },
            Access::AtomicStore(stamp, ord.ring_stamp_busy),
            move |cx| {
                cx.store(2 * rec + 1);
                Outcome::Next
            },
        );
        producer.op(
            if rec == 0 { "word0-0" } else { "word0-1" },
            Access::AtomicStore(w0, WORD_ACCESS),
            move |cx| {
                cx.store(10 * (rec + 1));
                Outcome::Next
            },
        );
        producer.op(
            if rec == 0 { "word1-0" } else { "word1-1" },
            Access::AtomicStore(w1, WORD_ACCESS),
            move |cx| {
                cx.store(10 * (rec + 1) + 1);
                Outcome::Next
            },
        );
        producer.op(
            if rec == 0 { "publish-0" } else { "publish-1" },
            Access::AtomicStore(stamp, ord.ring_stamp_publish),
            move |cx| {
                cx.store(2 * rec + 2);
                Outcome::Next
            },
        );
        producer.op(
            if rec == 0 { "head-0" } else { "head-1" },
            Access::AtomicStore(head, ord.ring_head_publish),
            move |cx| {
                cx.store(rec + 1);
                if rec == 1 {
                    Outcome::Done
                } else {
                    Outcome::Next
                }
            },
        );
    }
    m.push_thread(producer);

    let mut drainer = ThreadDef::new("drainer");
    drainer.gate(
        "read-head",
        Access::AtomicLoad(head, ord.ring_head_read),
        |cx| {
            if cx.load() == 0 {
                Outcome::Done // nothing published yet
            } else {
                Outcome::Next
            }
        },
    );
    drainer.gate(
        "validate-stamp",
        Access::AtomicLoad(stamp, ord.ring_stamp_validate),
        |cx| {
            if cx.load() == 2 {
                Outcome::Next
            } else {
                Outcome::Done // busy or already overwritten: skip as dropped
            }
        },
    );
    drainer.seq_read("read-word0", Access::AtomicLoad(w0, WORD_ACCESS), |cx| {
        let v = cx.load();
        cx.set_local(0, v);
        Outcome::Next
    });
    drainer.seq_read("read-word1", Access::AtomicLoad(w1, WORD_ACCESS), |cx| {
        let v = cx.load();
        cx.set_local(1, v);
        Outcome::Next
    });
    drainer.op(
        "validate-fence",
        Access::Fence(ord.ring_validate_fence),
        |_| Outcome::Next,
    );
    if recheck {
        drainer.op(
            "recheck-stamp",
            Access::AtomicLoad(stamp, ord.ring_stamp_recheck),
            |cx| {
                if cx.load() == 2 {
                    Outcome::Next
                } else {
                    cx.seq_discard(); // overwritten mid-read: record dropped
                    Outcome::Done
                }
            },
        );
    }
    drainer.op("consume", Access::Local, |cx| {
        cx.seq_consume(1);
        let (v0, v1) = (cx.local(0), cx.local(1));
        cx.check(
            v0 == 10 && v1 == 11,
            "validated section consumed torn words",
        );
        Outcome::Done
    });
    m.push_thread(drainer);
    m
}

/// The [`ring_drain`] model with the stamp recheck removed — a protocol
/// bug (not an ordering mutant) that makes torn consumes reachable. Used
/// to demonstrate the R3 rule catches dropped obligations.
#[must_use]
pub fn ring_drain_no_recheck(ord: &Orderings) -> Model {
    ring_drain(ord, false)
}

/// Protocol 5 — lineage adopt vs. copy-on-write split.
///
/// A publishing tenant installs the next lineage generation under the
/// lineage lock and bumps the generation mirror; an adopting tenant
/// probes the mirror lock-free (the gate) before taking the lock to
/// adopt; a diverging tenant clones the state under the lock (CoW split).
/// Mirrors `EncodingLineage::{publish_into, generation, current}`.
fn lineage_adopt(ord: &Orderings) -> Model {
    let mut m = Model::new(
        "lineage-adopt",
        "tenant publishes a lineage generation; peers adopt or CoW-split off it",
    );
    let gen = m.publish_atomic("generation", 0);
    let state = m.data("lineage-state", 0);
    let lock = m.mutex("lineage");

    let mut publisher = ThreadDef::new("publisher");
    publisher.op("lock-lineage", Access::Lock(lock), |_| Outcome::Next);
    publisher.op("install-state", Access::DataWrite(state), |cx| {
        cx.write(1);
        Outcome::Next
    });
    publisher.op(
        "publish-generation",
        Access::AtomicStore(gen, ord.lineage_gen_publish),
        |cx| {
            cx.store(1);
            Outcome::Next
        },
    );
    publisher.op("unlock-lineage", Access::Unlock(lock), |_| Outcome::Done);
    m.push_thread(publisher);

    let mut adopter = ThreadDef::new("adopter");
    adopter.gate(
        "probe-generation",
        Access::AtomicLoad(gen, ord.lineage_gen_check),
        |cx| {
            if cx.load() == 0 {
                Outcome::Done // already current: no adoption needed
            } else {
                Outcome::Next
            }
        },
    );
    adopter.op("lock-lineage", Access::Lock(lock), |_| Outcome::Next);
    adopter.op("adopt-read-state", Access::DataRead(state), |cx| {
        let v = cx.read();
        cx.check(v == 1, "adopted a stale generation");
        Outcome::Next
    });
    adopter.op("unlock-lineage", Access::Unlock(lock), |_| Outcome::Done);
    m.push_thread(adopter);

    let mut diverger = ThreadDef::new("diverger");
    diverger.op("lock-lineage", Access::Lock(lock), |_| Outcome::Next);
    diverger.op("cow-read-state", Access::DataRead(state), |cx| {
        let _ = cx.read();
        Outcome::Next
    });
    diverger.op("unlock-lineage", Access::Unlock(lock), |_| Outcome::Done);
    m.push_thread(diverger);
    m
}
