//! Protocol models: explicit step machines over a tiny shared-memory
//! vocabulary.
//!
//! A [`Model`] declares shared locations (atomics, plain data, mutexes)
//! and a handful of threads, each a straight-line list of [`Op`]s. Every
//! op declares exactly **one** shared access up front (its [`Access`]
//! footprint, carrying the `Ordering` the production code uses at the
//! matching site) plus an effect closure that performs the access through
//! the checker's [`Ctx`] and decides control flow. Declaring footprints
//! statically is what lets the explorer do sleep-set partial-order
//! reduction without peeking inside closures, and the `Ctx` accessors
//! assert that the effect touches exactly the location and kind it
//! declared — a model cannot lie about its footprint.

use crate::checker::Ctx;
use crate::Ordering;

/// Handle to an atomic location declared on a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtomicId(pub(crate) usize);

/// Handle to a plain-data location declared on a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataId(pub(crate) usize);

/// Handle to a mutex declared on a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutexId(pub(crate) usize);

/// The single shared access an op performs, declared statically.
#[derive(Clone, Copy, Debug)]
pub enum Access {
    /// Atomic load with the given ordering.
    AtomicLoad(AtomicId, Ordering),
    /// Atomic store with the given ordering.
    AtomicStore(AtomicId, Ordering),
    /// Atomic read-modify-write with the given ordering.
    AtomicRmw(AtomicId, Ordering),
    /// Plain (non-atomic) read — subject to data-race detection.
    DataRead(DataId),
    /// Plain (non-atomic) write — subject to data-race detection.
    DataWrite(DataId),
    /// Mutex acquisition (the op blocks while the mutex is held).
    Lock(MutexId),
    /// Mutex release (must be held by the executing thread).
    Unlock(MutexId),
    /// A memory fence with the given ordering.
    Fence(Ordering),
    /// No shared access (pure local step: branches, assertions).
    Local,
}

impl Access {
    /// Whether two accesses can influence each other's outcome — the
    /// dependency relation driving sleep-set partial-order reduction.
    /// Commuting (independent) pairs need not be explored in both orders.
    #[must_use]
    pub fn dependent(self, other: Access) -> bool {
        use Access::{
            AtomicLoad, AtomicRmw, AtomicStore, DataRead, DataWrite, Fence, Local, Lock, Unlock,
        };
        match (self, other) {
            (Local, _) | (_, Local) => false,
            // A fence interacts with the executing thread's surrounding
            // atomics only, but conservatively order it against all
            // atomic traffic (fences are rare; precision is not worth
            // soundness risk here).
            (Fence(_), AtomicLoad(..) | AtomicStore(..) | AtomicRmw(..) | Fence(_))
            | (AtomicLoad(..) | AtomicStore(..) | AtomicRmw(..), Fence(_)) => true,
            (Fence(_), _) | (_, Fence(_)) => false,
            // Atomics on the same location: dependent unless both read.
            (AtomicLoad(..), AtomicLoad(..)) => false,
            (
                AtomicLoad(a, _) | AtomicStore(a, _) | AtomicRmw(a, _),
                AtomicLoad(b, _) | AtomicStore(b, _) | AtomicRmw(b, _),
            ) => a == b,
            // Plain data on the same location: dependent unless both read
            // (two conflicting plain accesses are exactly what the race
            // checker must observe in both orders).
            (DataRead(..), DataRead(..)) => false,
            (DataRead(a) | DataWrite(a), DataRead(b) | DataWrite(b)) => a == b,
            // Mutex operations on the same mutex never commute.
            (Lock(a) | Unlock(a), Lock(b) | Unlock(b)) => a == b,
            _ => false,
        }
    }
}

/// Control flow after an op's effect runs.
#[derive(Clone, Copy, Debug)]
pub enum Outcome {
    /// Fall through to the next op.
    Next,
    /// Jump to op index `0..ops.len()` in the same thread.
    Goto(usize),
    /// The thread is finished.
    Done,
}

/// One step of a model thread: a declared access plus its effect.
pub struct Op {
    /// Short label shown in violation traces (e.g. `"publish-epoch"`).
    pub label: String,
    /// The declared shared-access footprint.
    pub access: Access,
    /// Whether this load is a *publish gate*: a load whose observed value
    /// admits the thread into consuming published state. Gate loads carry
    /// the per-edge proof obligation checked by rule R2 (see `checker`).
    pub gate: bool,
    /// Whether this load is part of a seqlock read section: its observed
    /// ghost version and happens-before status are recorded for a later
    /// [`Ctx::seq_consume`] check (rule R3).
    pub seq_track: bool,
    /// The effect: performs the declared access via [`Ctx`] and decides
    /// control flow.
    #[allow(clippy::type_complexity)]
    pub effect: Box<dyn Fn(&mut Ctx<'_>) -> Outcome>,
}

/// A model thread: a name plus its op list.
pub struct ThreadDef {
    /// Thread name shown in traces (e.g. `"reencoder"`).
    pub name: String,
    /// Straight-line op list (branches via [`Outcome::Goto`]).
    pub ops: Vec<Op>,
}

impl ThreadDef {
    /// An empty thread with the given name.
    #[must_use]
    pub fn new(name: &str) -> ThreadDef {
        ThreadDef {
            name: name.to_string(),
            ops: Vec::new(),
        }
    }

    /// Appends an op.
    pub fn op(
        &mut self,
        label: &str,
        access: Access,
        effect: impl Fn(&mut Ctx<'_>) -> Outcome + 'static,
    ) -> &mut Self {
        self.ops.push(Op {
            label: label.to_string(),
            access,
            gate: false,
            seq_track: false,
            effect: Box::new(effect),
        });
        self
    }

    /// Appends a *publish gate* load (R2-checked, see [`Op::gate`]).
    pub fn gate(
        &mut self,
        label: &str,
        access: Access,
        effect: impl Fn(&mut Ctx<'_>) -> Outcome + 'static,
    ) -> &mut Self {
        self.ops.push(Op {
            label: label.to_string(),
            access,
            gate: true,
            seq_track: false,
            effect: Box::new(effect),
        });
        self
    }

    /// Appends a seqlock-section load (R3-tracked, see [`Op::seq_track`]).
    pub fn seq_read(
        &mut self,
        label: &str,
        access: Access,
        effect: impl Fn(&mut Ctx<'_>) -> Outcome + 'static,
    ) -> &mut Self {
        self.ops.push(Op {
            label: label.to_string(),
            access,
            gate: false,
            seq_track: true,
            effect: Box::new(effect),
        });
        self
    }
}

pub(crate) struct AtomicDecl {
    pub(crate) name: String,
    pub(crate) init: u64,
    pub(crate) publish: bool,
}

pub(crate) struct DataDecl {
    pub(crate) name: String,
    pub(crate) init: u64,
}

/// A complete bounded protocol model.
pub struct Model {
    /// Model name (CLI identifier, e.g. `"snapshot-publish"`).
    pub name: String,
    /// One-line description of the protocol being checked.
    pub about: String,
    pub(crate) atomics: Vec<AtomicDecl>,
    pub(crate) datas: Vec<DataDecl>,
    pub(crate) mutexes: Vec<String>,
    /// The model's threads.
    pub threads: Vec<ThreadDef>,
    /// Number of per-thread local slots (scratch values carried between
    /// ops of one thread; part of the memoised state).
    pub locals: usize,
}

impl Model {
    /// An empty model.
    #[must_use]
    pub fn new(name: &str, about: &str) -> Model {
        Model {
            name: name.to_string(),
            about: about.to_string(),
            atomics: Vec::new(),
            datas: Vec::new(),
            mutexes: Vec::new(),
            threads: Vec::new(),
            locals: 2,
        }
    }

    /// Declares an ordinary atomic location.
    pub fn atomic(&mut self, name: &str, init: u64) -> AtomicId {
        self.atomics.push(AtomicDecl {
            name: name.to_string(),
            init,
            publish: false,
        });
        AtomicId(self.atomics.len() - 1)
    }

    /// Declares a *publish-marked* atomic: an epoch/generation/stamp
    /// location whose stores publish state for gate loads (rule R2
    /// applies to gate loads of these locations).
    pub fn publish_atomic(&mut self, name: &str, init: u64) -> AtomicId {
        let id = self.atomic(name, init);
        self.atomics[id.0].publish = true;
        id
    }

    /// Declares a plain-data location (race-checked).
    pub fn data(&mut self, name: &str, init: u64) -> DataId {
        self.datas.push(DataDecl {
            name: name.to_string(),
            init,
        });
        DataId(self.datas.len() - 1)
    }

    /// Declares a mutex.
    pub fn mutex(&mut self, name: &str) -> MutexId {
        self.mutexes.push(name.to_string());
        MutexId(self.mutexes.len() - 1)
    }

    /// Adds a thread.
    pub fn push_thread(&mut self, thread: ThreadDef) {
        assert!(
            self.threads.len() < 8,
            "models are bounded to a handful of threads"
        );
        self.threads.push(thread);
    }

    pub(crate) fn atomic_name(&self, id: usize) -> &str {
        &self.atomics[id].name
    }

    pub(crate) fn data_name(&self, id: usize) -> &str {
        &self.datas[id].name
    }
}
