//! CI fault-matrix entry point: replay a recorded workload under every
//! [`FaultPlan`] preset (or one named by `DACCE_CHAOS_PRESET`) and
//! differentially check decoded contexts against the fault-free run.
//!
//! The CI `fault-matrix` job runs this test once per preset with
//! `DACCE_CHAOS_PRESET=<name>`; locally (no env var) every preset runs in
//! one pass. `DACCE_CHAOS_SCALE` scales the workload (default 0.1).

use dacce::{DacceConfig, FaultPlan};
use dacce_workloads::chaos::{chaos_trace, run_chaos_plan};
use dacce_workloads::{BenchSpec, DriverConfig};

fn scale() -> f64 {
    std::env::var("DACCE_CHAOS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

#[test]
fn fault_matrix_presets_are_sound() {
    let cfg = DriverConfig {
        scale: scale(),
        ..DriverConfig::default()
    };
    // Two workload shapes: a recursion-heavy tiny spec and a threaded one
    // (spawned threads exercise spawn-context decode under faults).
    let specs = [
        BenchSpec::tiny("chaos-ci-a", 17),
        BenchSpec::tiny("chaos-ci-b", 23),
    ];
    // Eager re-encoding so generation-targeted faults (aborts, exhaustion)
    // actually see re-encodings on a CI-sized trace.
    let base = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 32,
        ..DacceConfig::default()
    };

    let only = std::env::var("DACCE_CHAOS_PRESET").ok();
    let presets: Vec<(&'static str, FaultPlan)> = match &only {
        Some(name) => {
            let plan = FaultPlan::preset(name)
                .unwrap_or_else(|| panic!("unknown DACCE_CHAOS_PRESET {name:?}"));
            vec![(
                FaultPlan::presets()
                    .into_iter()
                    .find(|(n, _)| n == name)
                    .expect("preset exists")
                    .0,
                plan,
            )]
        }
        None => FaultPlan::presets(),
    };

    for spec in &specs {
        let trace = chaos_trace(spec, &cfg);
        for (name, plan) in &presets {
            let out = run_chaos_plan(&trace, &base, name, plan.clone());
            assert!(
                out.samples > 0,
                "{}/{name}: no sample points — workload too small",
                spec.name
            );
            assert_eq!(
                out.mismatches, 0,
                "{}/{name}: {} of {} decoded contexts diverged from the fault-free run",
                spec.name, out.mismatches, out.samples
            );
            assert_eq!(
                out.replay.decode_failures, 0,
                "{}/{name}: contexts failed to decode under injected faults",
                spec.name
            );
            assert_eq!(
                out.replay.invariant_error, None,
                "{}/{name}: post-run invariants violated",
                spec.name
            );
        }
    }
}
