//! Differential tests for superop path memoization.
//!
//! Superops are a pure perf play: a compiled window replays the net
//! effect of its events without running them, so every observable the
//! per-event loop produces must be unchanged. These tests run every
//! suite workload and chaos-style tiny workloads twice — superops off
//! vs on — and demand byte-identical decoded sample paths, zero decode
//! failures and clean invariants on both variants. A re-encode storm
//! config drives repeated republishes mid-run, so the on-variant also
//! proves that epoch invalidation of compiled superops never corrupts
//! a context.

use dacce::DacceConfig;
use dacce_workloads::{
    all_benchmarks, chaos_trace, replay_sampled, replay_sampled_superops, BenchSpec, ChaosReplay,
    DriverConfig,
};

fn scale() -> f64 {
    std::env::var("DACCE_SUPEROP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

/// Replays `trace` with superops off and on and checks the differential
/// contract: same sample points, same decoded paths, no decode failures,
/// no invariant violations. Returns the on-variant replay for extra
/// per-test assertions.
fn check_differential(
    name: &str,
    trace: &dacce_workloads::WorkloadTrace,
    cfg: &DacceConfig,
) -> ChaosReplay {
    let off = replay_sampled(trace, cfg.clone());
    let on = replay_sampled_superops(trace, cfg.clone());
    assert_eq!(off.decode_failures, 0, "{name}: off-variant decodes");
    assert_eq!(on.decode_failures, 0, "{name}: on-variant decodes");
    assert_eq!(
        off.paths.len(),
        on.paths.len(),
        "{name}: both variants sample the same program points"
    );
    for (i, (a, b)) in off.paths.iter().zip(&on.paths).enumerate() {
        assert_eq!(
            a, b,
            "{name}: superops changed decoded context at sample {i}"
        );
    }
    assert_eq!(off.invariant_error, None, "{name}: off-variant invariants");
    assert_eq!(on.invariant_error, None, "{name}: on-variant invariants");
    assert_eq!(
        off.stats.superop_hits, 0,
        "{name}: off-variant must never execute a superop"
    );
    on
}

#[test]
fn superops_preserve_decoded_contexts_on_every_suite_workload() {
    let cfg = DriverConfig {
        scale: scale(),
        ..DriverConfig::default()
    };
    // Eager re-encoding so compiled tables get invalidated mid-run on
    // workloads with enough distinct edges.
    let dacce_cfg = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 64,
        ..DacceConfig::default()
    };
    let mut total_hits = 0u64;
    for spec in all_benchmarks() {
        let trace = chaos_trace(&spec, &cfg);
        let on = check_differential(spec.name, &trace, &dacce_cfg);
        total_hits += on.stats.superop_hits;
    }
    assert!(
        total_hits > 0,
        "the suite sweep must execute at least one superop"
    );
}

#[test]
fn reencode_storm_invalidates_superops_without_corrupting_contexts() {
    let cfg = DriverConfig {
        scale: scale().max(0.05),
        ..DriverConfig::default()
    };
    // A storm config: tiny edge threshold and re-encode interval force
    // republish after republish while compiled superops are live.
    let storm = DacceConfig {
        edge_threshold: 2,
        min_events_between_reencodes: 16,
        ..DacceConfig::default()
    };
    // Phase-shifting specs with late-binding libraries: the superop
    // harness warms (and installs) on the leading third of the trace, so
    // the phase-1 hot-callee swap and PLT bindings land as new edges
    // while compiled superops are live.
    let storm_spec = |name: &'static str, seed: u64| {
        let mut s = BenchSpec::tiny(name, seed);
        s.phase_shift = true;
        s.late_libs = true;
        s.lib_functions = 8;
        s.plt_sites = 4;
        s
    };
    let specs = [
        storm_spec("superop-storm-a", 37),
        storm_spec("superop-storm-b", 41),
    ];
    let mut total_hits = 0u64;
    let mut total_invalidations = 0u64;
    for spec in &specs {
        let trace = chaos_trace(spec, &cfg);
        let on = check_differential(spec.name, &trace, &storm);
        total_hits += on.stats.superop_hits;
        total_invalidations += on.stats.superop_invalidations;
        assert!(
            on.stats.superop_republishes > 0,
            "{}: the storm config must republish with superops installed",
            spec.name
        );
    }
    assert!(total_hits > 0, "storm runs must still hit superops");
    assert!(
        total_invalidations > 0,
        "a re-encode storm must invalidate compiled superops at least once"
    );
}

#[test]
fn superops_disabled_config_behaves_like_plain_replay() {
    let cfg = DriverConfig {
        scale: scale(),
        ..DriverConfig::default()
    };
    let off_cfg = DacceConfig {
        superops_enabled: false,
        ..DacceConfig::default()
    };
    let trace = chaos_trace(&BenchSpec::tiny("superop-off", 43), &cfg);
    let on = check_differential("superop-off", &trace, &off_cfg);
    assert_eq!(
        on.stats.superop_compiled, 0,
        "disabled config must compile nothing"
    );
    assert_eq!(
        on.stats.superop_hits, 0,
        "disabled config must never hit a superop"
    );
}
