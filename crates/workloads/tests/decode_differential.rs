//! CI `decode-differential` matrix entry point: record every suite
//! workload (plus the three production-shaped families) into a decode
//! journal under a fault preset, then check that fragment-parallel
//! offline decode is byte-identical to the serial decoder at every
//! worker count — failing on the first divergent sample line.
//!
//! The CI matrix job runs this once per (preset, worker-count) cell with
//! `DACCE_DECODE_PRESET=<no-fault|name>` and `DACCE_DECODE_WORKERS=<n>`;
//! locally (no env vars) the full {no-fault, maxid-exhaustion,
//! reencode-storm} × {1, 2, 4} grid runs in one pass over a smoke-sized
//! workload set. `DACCE_DECODE_SUITE=full` swaps in all 41 suite
//! benchmarks; `DACCE_DECODE_SCALE` scales trace sizes (default 0.05).

use dacce::{decode_parallel, decode_serial, import, DacceConfig, FaultPlan};
use dacce_workloads::chaos::chaos_trace;
use dacce_workloads::journal::record_journal;
use dacce_workloads::{all_benchmarks, family_traces, BenchSpec, DriverConfig, WorkloadTrace};

/// The matrix presets: fault-free plus the two that stress the decode
/// path hardest (degraded sub-path-band records; generation churn).
const MATRIX_PRESETS: [&str; 3] = ["no-fault", "maxid-exhaustion", "reencode-storm"];

fn scale() -> f64 {
    std::env::var("DACCE_DECODE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

fn worker_counts() -> Vec<usize> {
    match std::env::var("DACCE_DECODE_WORKERS") {
        Ok(s) => s
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad DACCE_DECODE_WORKERS entry {w:?}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn plan_for(name: &str) -> FaultPlan {
    if name == "no-fault" {
        FaultPlan::default()
    } else {
        FaultPlan::preset(name).unwrap_or_else(|| panic!("unknown DACCE_DECODE_PRESET {name:?}"))
    }
}

fn presets() -> Vec<(String, FaultPlan)> {
    match std::env::var("DACCE_DECODE_PRESET") {
        Ok(name) => vec![(name.clone(), plan_for(&name))],
        Err(_) => MATRIX_PRESETS
            .iter()
            .map(|&n| (n.to_string(), plan_for(n)))
            .collect(),
    }
}

fn workloads() -> Vec<(String, WorkloadTrace)> {
    let scale = scale();
    let mut out: Vec<(String, WorkloadTrace)> = Vec::new();
    if std::env::var("DACCE_DECODE_SUITE").as_deref() == Ok("full") {
        let cfg = DriverConfig {
            scale,
            ..DriverConfig::default()
        };
        for spec in all_benchmarks() {
            out.push((spec.name.to_string(), chaos_trace(&spec, &cfg)));
        }
    } else {
        let cfg = DriverConfig {
            scale,
            ..DriverConfig::default()
        };
        for spec in [
            BenchSpec::tiny("decode-ci-a", 19),
            BenchSpec::tiny("decode-ci-b", 29),
        ] {
            out.push((spec.name.to_string(), chaos_trace(&spec, &cfg)));
        }
    }
    for (name, trace) in family_traces(41, (scale * 0.4).max(0.01)) {
        out.push((name.to_string(), trace));
    }
    out
}

fn first_divergence(serial: &[String], parallel: &[String]) -> String {
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        if s != p {
            return format!("first divergence at sample {i}:\n  serial:   {s}\n  parallel: {p}");
        }
    }
    format!(
        "length mismatch: serial {} lines, parallel {} lines",
        serial.len(),
        parallel.len()
    )
}

#[test]
fn parallel_decode_matches_serial_across_the_matrix() {
    // Eager re-encoding so generation-targeted presets see re-encodings
    // (and hence generation-crossing seams) on a CI-sized trace.
    let base = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 32,
        ..DacceConfig::default()
    };
    let workers = worker_counts();

    for (wname, trace) in workloads() {
        for (pname, plan) in presets() {
            let config = DacceConfig {
                fault: plan,
                ..base.clone()
            };
            let run = record_journal(&trace, config, 256);
            assert!(
                run.journal.samples() > 0,
                "{wname}/{pname}: no decode points journaled — workload too small"
            );
            let dec = import(&run.export)
                .unwrap_or_else(|e| panic!("{wname}/{pname}: export failed to parse: {e}"));
            let serial = decode_serial(&run.journal, &dec)
                .unwrap_or_else(|e| panic!("{wname}/{pname}: serial decode failed: {e}"));
            for &w in &workers {
                let (parallel, report) =
                    decode_parallel(&run.journal, &dec, w).unwrap_or_else(|e| {
                        panic!("{wname}/{pname}/workers={w}: parallel decode failed: {e}")
                    });
                assert!(
                    parallel == serial,
                    "{wname}/{pname}/workers={w}: parallel decode diverged from serial \
                     ({} fragments, {} seams verified, {} fallbacks)\n{}",
                    report.fragments,
                    report.seams_verified,
                    report.fallback_fragments,
                    first_divergence(&serial.lines, &parallel.lines)
                );
            }
        }
    }
}
