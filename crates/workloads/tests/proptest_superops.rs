//! Property tests for the superop window miner and the compiled net
//! effect.
//!
//! 1. **Miner shape** — for arbitrary op streams, every mined window is
//!    balanced (depth never dips below zero, ends at zero), starts with a
//!    call, respects the window bound and table cap, is ordered longest
//!    first, and occurs at least twice in the stream it was mined from.
//! 2. **Net-effect equality** — for arbitrary generated programs, a
//!    replay with mined superops installed decodes exactly the contexts
//!    the per-event replay decodes at the same program points. Windows
//!    can never span a trap or a generation bump: compilation refuses
//!    windows with unresolved (trapping) sites or tail-call wraps, and a
//!    republish invalidates every compiled window before the new epoch
//!    is visible — both refusal paths are exercised here because the
//!    eager re-encode config keeps recompiling mid-replay.
//! 3. **Garbage immunity** — installing *arbitrary* candidate windows
//!    (unbalanced, trivial, unresolved, nonsense) never corrupts the
//!    tracker: call accounting stays exact, invariants hold and the
//!    final context still decodes to the root.

use std::collections::HashMap;

use proptest::prelude::*;

use dacce::tracker::{BatchOp, Tracker};
use dacce::{DacceConfig, WindowOp};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::ThreadId;
use dacce_workloads::batch::{ThreadStart, TraceOp, WorkloadTrace};
use dacce_workloads::{mine_windows, replay_sampled, replay_sampled_superops};

/// Callee pool size; the root is function `POOL` and call sites are
/// derived as `caller * POOL + callee`, one owner per site.
const POOL: u32 = 5;

/// One step of a random program walk: `push` calls `callee` from the
/// current leaf (`indirect` picks the call kind), otherwise the walk
/// returns when a frame is open.
type Step = (u32, bool, bool);

/// Materialises a walk as recorded trace ops, closing every frame left
/// open at the end.
fn trace_ops_of(walk: &[Step]) -> Vec<TraceOp> {
    let mut ops = Vec::with_capacity(walk.len() + 8);
    let mut stack: Vec<u32> = Vec::new();
    for &(callee, push, indirect) in walk {
        if push || stack.is_empty() {
            let caller = stack.last().copied().unwrap_or(POOL);
            ops.push(TraceOp::Call {
                site: CallSiteId::new(caller * POOL + callee),
                target: FunctionId::new(callee),
                indirect,
            });
            stack.push(callee);
        } else {
            stack.pop();
            ops.push(TraceOp::Ret);
        }
    }
    while stack.pop().is_some() {
        ops.push(TraceOp::Ret);
    }
    ops
}

/// Wraps the walk into a single-threaded workload trace rooted at
/// function `POOL`.
fn trace_of(walk: &[Step]) -> WorkloadTrace {
    let ops = trace_ops_of(walk);
    WorkloadTrace {
        threads: vec![ThreadStart {
            tid: ThreadId::MAIN,
            root: FunctionId::new(POOL),
            parent: None,
        }],
        traces: HashMap::from([(ThreadId::MAIN, ops)]),
    }
}

/// The same walk as raw batch ops (ids are abstract — the miner is pure).
fn batch_ops_of(walk: &[Step]) -> Vec<BatchOp> {
    trace_ops_of(walk)
        .into_iter()
        .map(|op| match op {
            TraceOp::Call {
                site,
                target,
                indirect,
            } => {
                if indirect {
                    BatchOp::CallIndirect { site, target }
                } else {
                    BatchOp::Call { site, target }
                }
            }
            TraceOp::Ret => BatchOp::Ret,
        })
        .collect()
}

/// The window form of an op: indirect and direct calls collapse, exactly
/// as the miner and the table's matcher treat them.
fn wop(op: BatchOp) -> WindowOp {
    match op {
        BatchOp::Call { site, target } | BatchOp::CallIndirect { site, target } => {
            WindowOp::Call { site, target }
        }
        BatchOp::Ret => WindowOp::Ret,
    }
}

/// Occurrences of `window` in `ops` under the miner's match semantics.
fn occurrences(ops: &[BatchOp], window: &[WindowOp]) -> usize {
    if window.is_empty() || ops.len() < window.len() {
        return 0;
    }
    ops.windows(window.len())
        .filter(|w| w.iter().map(|&o| wop(o)).eq(window.iter().copied()))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn mined_windows_are_balanced_bounded_and_repeated(
        walk in prop::collection::vec(
            (0u32..POOL, prop::bool::weighted(0.55), prop::bool::weighted(0.2)),
            8..260,
        ),
        max_window in 2usize..12,
        max_count in 1usize..8,
    ) {
        let ops = batch_ops_of(&walk);
        let mined = mine_windows(&[&ops], max_window, max_count, |f| u64::from(f.raw()));
        prop_assert!(mined.len() <= max_count, "table cap respected");
        for pair in mined.windows(2) {
            prop_assert!(
                pair[0].len() >= pair[1].len(),
                "windows ordered longest first"
            );
        }
        for w in &mined {
            prop_assert!(w.len() >= 2 && w.len() <= max_window, "window bound");
            prop_assert!(
                matches!(w[0], WindowOp::Call { .. }),
                "windows start with a call"
            );
            let mut depth = 0i64;
            for op in w {
                match op {
                    WindowOp::Call { .. } => depth += 1,
                    WindowOp::Ret => depth -= 1,
                }
                prop_assert!(depth >= 0, "depth never dips below the start");
            }
            prop_assert_eq!(depth, 0, "windows are balanced");
            prop_assert!(
                occurrences(&ops, w) >= 2,
                "singleton windows never reach the table"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn superop_replay_decodes_like_the_per_event_replay(
        walk in prop::collection::vec(
            (0u32..POOL, prop::bool::weighted(0.55), prop::bool::weighted(0.15)),
            150..420,
        ),
    ) {
        let trace = trace_of(&walk);
        // Eager re-encoding: compiled tables get invalidated and rebuilt
        // while the sampled replay is still running.
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 16,
            ..DacceConfig::default()
        };
        let off = replay_sampled(&trace, cfg.clone());
        let on = replay_sampled_superops(&trace, cfg);
        prop_assert_eq!(off.decode_failures, 0, "per-event replay decodes");
        prop_assert_eq!(on.decode_failures, 0, "superop replay decodes");
        prop_assert_eq!(
            off.paths, on.paths,
            "superops changed a decoded context"
        );
        prop_assert!(off.invariant_error.is_none());
        prop_assert!(on.invariant_error.is_none());
        prop_assert_eq!(
            off.stats.superop_hits, 0,
            "the per-event replay must never execute a superop"
        );
    }

    #[test]
    fn arbitrary_candidates_never_corrupt_the_tracker(
        walk in prop::collection::vec(
            (0u32..POOL, prop::bool::weighted(0.55), prop::bool::weighted(0.15)),
            16..180,
        ),
        raw in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![
                    ((0u32..POOL * (POOL + 1)), 0u32..POOL + 1)
                        .prop_map(|(s, t)| Some((s, t))),
                    Just(None),
                ],
                0..7,
            ),
            0..6,
        ),
    ) {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 16,
            ..DacceConfig::default()
        };
        let tracker = Tracker::with_config(cfg);
        let fns: Vec<FunctionId> = (0..=POOL)
            .map(|i| tracker.define_function(&format!("f{i}")))
            .collect();
        let sites: Vec<CallSiteId> = (0..POOL * (POOL + 1))
            .map(|_| tracker.define_call_site())
            .collect();
        let ops: Vec<BatchOp> = batch_ops_of(&walk)
            .into_iter()
            .map(|op| match op {
                BatchOp::Call { site, target } => BatchOp::Call {
                    site: sites[site.index()],
                    target: fns[target.index()],
                },
                BatchOp::CallIndirect { site, target } => BatchOp::CallIndirect {
                    site: sites[site.index()],
                    target: fns[target.index()],
                },
                BatchOp::Ret => BatchOp::Ret,
            })
            .collect();
        let calls = ops
            .iter()
            .filter(|op| !matches!(op, BatchOp::Ret))
            .count() as u64;

        let th = tracker.register_thread(fns[POOL as usize]);
        th.run_batch(&ops).expect("walk is balanced");

        // Candidate set: genuinely mined windows plus arbitrary raw ones
        // (unbalanced, trivial, unresolved sites — compile must refuse
        // them, never miscompile them).
        let mut cands = mine_windows(&[&ops], 8, 8, |_| 0);
        cands.extend(raw.into_iter().map(|w| {
            w.into_iter()
                .map(|op| match op {
                    Some((s, t)) => WindowOp::Call {
                        site: sites[s as usize],
                        target: fns[t as usize],
                    },
                    None => WindowOp::Ret,
                })
                .collect::<Vec<_>>()
        }));
        let installed = tracker.install_superops(&cands);
        prop_assert!(installed <= cands.len(), "compile only refuses");

        th.run_batch(&ops).expect("walk is still balanced");
        let inv = tracker.check_invariants();
        prop_assert!(inv.is_ok(), "invariants: {}", inv.unwrap_err());
        let stats = tracker.stats();
        prop_assert_eq!(
            stats.calls,
            2 * calls,
            "superop hits must account every covered call exactly once"
        );
        let path = tracker.decode(&th.sample()).expect("final context decodes");
        prop_assert_eq!(path.0.len(), 1, "balanced replay ends at the root");
        prop_assert_eq!(path.0[0].func, fns[POOL as usize]);
    }
}
