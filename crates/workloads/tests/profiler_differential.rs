//! Differential tests for the continuous profiler.
//!
//! 1. **Weighted sub-multiset** — on every suite workload, the profiler's
//!    decoded profile must be a weighted sub-multiset of the profile a
//!    *shadow* sampler collects at the same program points: the tracker's
//!    sampler is deterministic in `(stride, seed ^ tid, budget)` and the
//!    per-thread tick sequence, so an external replica predicts exactly
//!    which call events fire and with what weight. The runtime's ring and
//!    backlog are capacity-bounded (they may *drop* samples, oldest
//!    first) but must never invent a context or inflate a weight.
//! 2. **Feedback soundness** — with `profiler_feedback` on, re-encoding
//!    consumes sampled hotness when picking hottest incoming edges. That
//!    may change *which* edges get the cheap encodings, but every context
//!    must still decode to exactly the path the feedback-off run decodes
//!    at the same op.

use std::collections::HashMap;

use dacce::tracker::Tracker;
use dacce::DacceConfig;
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_obs::Sampler;
use dacce_program::{ContextPath, ThreadId};
use dacce_workloads::batch::{ThreadStart, TraceOp, WorkloadTrace};
use dacce_workloads::chaos::{chaos_trace, replay_sampled};
use dacce_workloads::{all_benchmarks, BenchSpec, DriverConfig};

fn scale() -> f64 {
    std::env::var("DACCE_PROFILER_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

/// Replays `trace` with guards only (one `enter` per call op, so the
/// thread's sampler ticks exactly once per call) while a shadow sampler
/// with the same parameters predicts every fire and records the decoded
/// context at that point. Returns the shadow profile and the tracker.
fn replay_with_shadow(
    trace: &WorkloadTrace,
    config: &DacceConfig,
) -> (HashMap<ContextPath, u64>, u64, Tracker) {
    let tracker = Tracker::with_config(config.clone());
    let mut fn_map: HashMap<FunctionId, FunctionId> = HashMap::new();
    let mut site_map: HashMap<CallSiteId, CallSiteId> = HashMap::new();
    let mut handles: HashMap<ThreadId, dacce::tracker::ThreadHandle> = HashMap::new();
    let mut shadow: HashMap<ContextPath, u64> = HashMap::new();
    let mut shadow_total = 0u64;

    for &ThreadStart { tid, root, parent } in &trace.threads {
        let root = *fn_map
            .entry(root)
            .or_insert_with(|| tracker.define_function(&format!("fn{}", root.index())));
        let th = match parent {
            None => tracker.register_thread(root),
            Some((ptid, psite)) => {
                let psite = *site_map
                    .entry(psite)
                    .or_insert_with(|| tracker.define_call_site());
                let parent = handles.get(&ptid).expect("parent registered before child");
                tracker.register_spawned_thread(root, parent, psite)
            }
        };
        handles.insert(tid, th);
        let th = &handles[&tid];
        let mut sampler = Sampler::new(
            config.profiler_stride,
            config.profiler_seed ^ u64::from(th.id().raw()),
            config.profiler_budget,
        );

        let mut guards = Vec::new();
        for op in &trace.traces[&tid] {
            match *op {
                TraceOp::Call {
                    site,
                    target,
                    indirect,
                } => {
                    let site = *site_map
                        .entry(site)
                        .or_insert_with(|| tracker.define_call_site());
                    let target = *fn_map.entry(target).or_insert_with(|| {
                        tracker.define_function(&format!("fn{}", target.index()))
                    });
                    guards.push(if indirect {
                        th.call_indirect(site, target)
                    } else {
                        th.call(site, target)
                    });
                    if let Some(weight) = sampler.tick() {
                        let ctx = th.sample();
                        let path = tracker.decode(&ctx).expect("engine contexts decode");
                        *shadow.entry(path).or_insert(0) += weight;
                        shadow_total += weight;
                    }
                }
                TraceOp::Ret => drop(guards.pop().expect("balanced trace")),
            }
        }
        while let Some(g) = guards.pop() {
            drop(g);
        }
    }
    (shadow, shadow_total, tracker)
}

#[test]
fn sampled_profile_is_weighted_submultiset_on_every_suite_workload() {
    let cfg = DriverConfig {
        scale: scale(),
        ..DriverConfig::default()
    };
    // A small prime stride so even scaled-down workloads fire plenty of
    // samples; an eager re-encode config so samples straddle generations.
    let dacce_cfg = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 64,
        profiler_stride: 61,
        ..DacceConfig::default()
    };
    for spec in all_benchmarks() {
        let trace = chaos_trace(&spec, &cfg);
        let (shadow, shadow_total, tracker) = replay_with_shadow(&trace, &dacce_cfg);
        assert!(
            shadow_total <= trace.calls(),
            "{}: shadow weights {} overcount {} call events",
            spec.name,
            shadow_total,
            trace.calls()
        );
        let profile = tracker.profiler_profile();
        assert!(
            profile.total() <= shadow_total,
            "{}: profile weight {} exceeds shadow weight {}",
            spec.name,
            profile.total(),
            shadow_total
        );
        for (path, weight) in profile.top(profile.distinct()) {
            let shadow_weight = shadow.get(&path).copied().unwrap_or(0);
            assert!(
                weight <= shadow_weight,
                "{}: profiled context carries weight {} but the shadow sampler \
                 only saw {} at {}",
                spec.name,
                weight,
                shadow_weight,
                tracker.format_path(&path)
            );
        }
        tracker.check_invariants().expect("invariants hold");
    }
}

#[test]
fn profiler_feedback_never_changes_decoded_contexts() {
    let cfg = DriverConfig {
        scale: scale(),
        ..DriverConfig::default()
    };
    let base = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 32,
        profiler_stride: 61,
        ..DacceConfig::default()
    };
    let specs = [
        BenchSpec::tiny("profiler-feedback-a", 29),
        BenchSpec::tiny("profiler-feedback-b", 31),
    ];
    for spec in &specs {
        let trace = chaos_trace(spec, &cfg);
        let off = replay_sampled(&trace, base.clone());
        let on = replay_sampled(
            &trace,
            DacceConfig {
                profiler_feedback: true,
                ..base.clone()
            },
        );
        assert_eq!(off.decode_failures, 0, "{}: clean run decodes", spec.name);
        assert_eq!(on.decode_failures, 0, "{}: feedback run decodes", spec.name);
        assert_eq!(
            off.paths, on.paths,
            "{}: profiler feedback changed a decoded context",
            spec.name
        );
        assert!(on.invariant_error.is_none(), "{}: invariants", spec.name);
    }
}
