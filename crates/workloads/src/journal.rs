//! Decode-journal recording: drive the tracker over a recorded workload
//! trace one op at a time, derive the per-op state effect each event
//! applied (verified against the live state, see
//! [`dacce::fragment::ThreadRecorder`]), and place seam seeds at
//! balanced-frame boundaries so the journal splits into independently
//! decodable fragments.
//!
//! Seam placement reuses the balanced-window classification of
//! [`crate::batch`]: a call whose matching return lands within
//! [`JOURNAL_WINDOW`] ops is a *short* frame; a seam may only be cut
//! where no short frame is open, i.e. at the boundaries the batched
//! replay would also flush at — every open frame at a seam is a deep
//! spine frame. Combined with the seam-every cadence this yields
//! fragments of roughly uniform op count, which is what the parallel
//! decoder's work-stealing queue wants.

use std::collections::HashMap;

use dacce::tracker::{ThreadHandle, Tracker};
use dacce::{export_tracker_state, DacceConfig, DacceStats, DecodeJournal, ThreadRecorder};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::ThreadId;

use crate::batch::{ThreadStart, TraceOp, WorkloadTrace};

/// A decode point is journaled every this many replayed ops per thread
/// (prime, mirroring the chaos harness cadence).
pub const JOURNAL_SAMPLE_EVERY: u64 = 127;

/// Horizon distinguishing short (window-local) frames from deep spine
/// frames for seam eligibility — the chaos replay's batching window.
pub const JOURNAL_WINDOW: usize = 16;

/// Default seam cadence: one fragment seed roughly every this many ops.
pub const DEFAULT_SEAM_EVERY: usize = 512;

/// Everything one recording pass produced: the journal, the matching
/// offline export (dictionaries for every generation, site owners), and
/// recording diagnostics.
#[derive(Debug)]
pub struct RecordedRun {
    /// The per-thread effect journal with seam seeds.
    pub journal: DecodeJournal,
    /// The tracker's offline export (feed to [`dacce::import`]).
    pub export: String,
    /// Full-state resync records the recorder had to fall back to
    /// (generation migrations, inexpressible deltas).
    pub resyncs: u64,
    /// Final tracker statistics of the recording run.
    pub stats: DacceStats,
}

/// For each op index, whether a seam may be cut *after* it: true when no
/// short frame (one closing within `window` ops of its call) is open.
#[must_use]
pub fn balanced_boundaries(ops: &[TraceOp], window: usize) -> Vec<bool> {
    let mut match_ret = vec![usize::MAX; ops.len()];
    let mut open = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            TraceOp::Call { .. } => open.push(i),
            TraceOp::Ret => {
                if let Some(c) = open.pop() {
                    match_ret[c] = i;
                }
            }
        }
    }
    let mut eligible = vec![false; ops.len()];
    let mut short_open = 0usize;
    let mut flags: Vec<bool> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            TraceOp::Call { .. } => {
                let short = match_ret[i] != usize::MAX && match_ret[i] - i < window;
                flags.push(short);
                short_open += usize::from(short);
            }
            TraceOp::Ret => {
                if flags.pop().unwrap_or(false) {
                    short_open -= 1;
                }
            }
        }
        eligible[i] = short_open == 0;
    }
    eligible
}

/// Replays `trace` through a fresh tracker under `config`, recording the
/// verified effect journal with a seam seed roughly every `seam_every`
/// ops (at the next balanced boundary), a decode point every
/// [`JOURNAL_SAMPLE_EVERY`] ops, and the offline export captured after
/// the run.
///
/// # Panics
///
/// Panics on traces whose returns do not match an open call (recorded
/// traces are always balanced per thread).
#[must_use]
pub fn record_journal(
    trace: &WorkloadTrace,
    config: DacceConfig,
    seam_every: usize,
) -> RecordedRun {
    let tracker = Tracker::with_config(config);
    let mut fn_map: HashMap<FunctionId, FunctionId> = HashMap::new();
    let mut site_map: HashMap<CallSiteId, CallSiteId> = HashMap::new();
    let mut handles: HashMap<ThreadId, ThreadHandle> = HashMap::new();
    let mut journal = DecodeJournal::default();
    let mut resyncs = 0u64;

    for &ThreadStart { tid, root, parent } in &trace.threads {
        let root = *fn_map
            .entry(root)
            .or_insert_with(|| tracker.define_function(&format!("fn{}", root.index())));
        let th = match parent {
            None => tracker.register_thread(root),
            Some((ptid, psite)) => {
                let psite = *site_map
                    .entry(psite)
                    .or_insert_with(|| tracker.define_call_site());
                let parent = handles.get(&ptid).expect("parent registered before child");
                tracker.register_spawned_thread(root, parent, psite)
            }
        };
        handles.insert(tid, th);
        let th = &handles[&tid];
        let ops = &trace.traces[&tid];
        let eligible = balanced_boundaries(ops, JOURNAL_WINDOW);

        let mut rec = ThreadRecorder::new(tid.raw().into(), th.context());
        let mut guards = Vec::new();
        let mut next_sample = JOURNAL_SAMPLE_EVERY;
        let mut since_seam = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                TraceOp::Call {
                    site,
                    target,
                    indirect,
                } => {
                    let site = *site_map
                        .entry(site)
                        .or_insert_with(|| tracker.define_call_site());
                    let target = *fn_map.entry(target).or_insert_with(|| {
                        tracker.define_function(&format!("fn{}", target.index()))
                    });
                    guards.push(if indirect {
                        th.call_indirect(site, target)
                    } else {
                        th.call(site, target)
                    });
                    rec.on_call(site, target, &th.state_sig(), || th.context());
                }
                TraceOp::Ret => {
                    drop(guards.pop().expect("return matches an open call"));
                    rec.on_ret(&th.state_sig(), || th.context());
                }
            }
            let done = i as u64 + 1;
            if done >= next_sample {
                next_sample += JOURNAL_SAMPLE_EVERY;
                rec.on_sample();
            }
            since_seam += 1;
            if since_seam >= seam_every && eligible[i] {
                since_seam = 0;
                rec.seam(|| th.context());
            }
        }
        // A decode point at thread exit: short-lived threads (fewer ops
        // than the sample cadence) still contribute to the decoded
        // stream — thread-churn workloads are all exit samples.
        if !ops.is_empty() {
            rec.on_sample();
        }
        resyncs += rec.resyncs();
        journal.threads.push(rec.finish());
        while guards.pop().is_some() {}
    }

    let stats = tracker.stats();
    let export = export_tracker_state(&tracker);
    RecordedRun {
        journal,
        export,
        resyncs,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::chaos_trace;
    use crate::driver::DriverConfig;
    use crate::spec::BenchSpec;
    use dacce::{decode_parallel, decode_serial, import};

    fn tiny_trace() -> WorkloadTrace {
        chaos_trace(
            &BenchSpec::tiny("journal-smoke", 3),
            &DriverConfig {
                scale: 0.05,
                ..DriverConfig::default()
            },
        )
    }

    #[test]
    fn boundaries_only_open_on_the_spine() {
        let trace = tiny_trace();
        for ops in trace.traces.values() {
            let eligible = balanced_boundaries(ops, JOURNAL_WINDOW);
            assert_eq!(eligible.len(), ops.len());
            // The end of a balanced stream is always eligible.
            if let Some(last) = eligible.last() {
                assert!(last);
            }
        }
    }

    #[test]
    fn recorded_journal_replays_and_splits() {
        let run = record_journal(&tiny_trace(), DacceConfig::default(), 256);
        assert!(run.journal.samples() > 4, "cadence produces samples");
        assert!(run.journal.seams() > 0, "cadence produces seams");
        let dec = import(&run.export).expect("export parses");
        let serial = decode_serial(&run.journal, &dec).expect("journal replays");
        assert_eq!(serial.lines.len(), run.journal.samples());
        let (par, report) = decode_parallel(&run.journal, &dec, 2).expect("parallel replays");
        assert_eq!(par, serial, "parallel decode must match serial");
        assert_eq!(report.seam_failures, 0);
        assert_eq!(report.fallback_fragments, 0);
        assert_eq!(
            report.seams_verified,
            report.fragments - run.journal.threads.len()
        );
    }

    #[test]
    fn journal_text_round_trips_through_the_export_format() {
        let run = record_journal(&tiny_trace(), DacceConfig::default(), 256);
        let text = run.journal.to_text();
        let back = DecodeJournal::parse(&text).expect("parses");
        assert_eq!(back, run.journal);
    }
}
