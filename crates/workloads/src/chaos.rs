//! Deterministic chaos harness: replay a recorded workload trace under an
//! injected [`FaultPlan`] and differentially check every decoded context
//! against the fault-free run.
//!
//! Soundness under degradation is the property being tested: whatever
//! faults fire — maxID exhaustion, ccStack spills, aborted re-encodings,
//! dispatch-slot starvation, poisoned slow-path locks — the runtime may
//! get *slower* (more trapping, more ccStack traffic) but never *wrong*.
//! A context sampled at op N of the trace must decode to exactly the path
//! the fault-free replay decodes at op N. Everything is seeded: the
//! program, the interpreter schedule, the recorded trace, the sample
//! cadence and the fault plan are all pure functions of the spec and the
//! plan, so a failing run reproduces byte-for-byte.
//!
//! The replay reuses the PR 4 batched drive shape: balanced windows go
//! through [`ThreadHandle::run_batch`], the deep spine through RAII
//! guards, so the fault paths are exercised under both front-ends.

use std::collections::HashMap;

use dacce::tracker::{BatchOp, ThreadHandle, Tracker};
use dacce::{DacceConfig, DacceStats, FaultPlan};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::ThreadId;

use crate::batch::{record, ThreadStart, TraceOp, WorkloadTrace};
use crate::driver::{interp_config, DriverConfig};
use crate::genprog::generate_program;
use crate::spec::BenchSpec;

/// Ops folded into one `run_batch` window during chaos replay. Smaller
/// than the throughput drive's window so sample points interleave with
/// batch boundaries.
const CHAOS_WINDOW: usize = 16;

/// A context is sampled (and decoded) every this many replayed ops, per
/// thread. Prime so the cadence drifts across window boundaries.
const SAMPLE_EVERY: u64 = 127;

/// What one replay of the trace produced.
#[derive(Clone, Debug)]
pub struct ChaosReplay {
    /// Decoded sample paths in deterministic (thread-major, op-ordered)
    /// order, each rendered as `"<tid>: f0 -> f1 -> ..."`.
    pub paths: Vec<String>,
    /// Samples that failed to decode (always 0 for a sound runtime).
    pub decode_failures: usize,
    /// Final tracker statistics (including the degraded-state record).
    pub stats: DacceStats,
    /// First invariant violation found after the replay, if any.
    pub invariant_error: Option<String>,
}

/// The differential outcome of one fault plan against the fault-free run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The preset (or "custom") this outcome belongs to.
    pub preset: String,
    /// Recorded call ops replayed by both runs.
    pub calls: u64,
    /// Samples decoded and compared.
    pub samples: usize,
    /// Sample points whose decoded path differs from the fault-free run.
    pub mismatches: usize,
    /// The faulted replay (the fault-free baseline is discarded after the
    /// comparison).
    pub replay: ChaosReplay,
}

impl ChaosOutcome {
    /// True when the faulted run decoded every sample to the fault-free
    /// path and the post-run invariants held.
    pub fn sound(&self) -> bool {
        self.mismatches == 0
            && self.replay.decode_failures == 0
            && self.replay.invariant_error.is_none()
    }
}

/// Records the tail-free instrumentation trace of `spec` (the tracker
/// front-end has no tail-call entry point), with validation and the
/// interpreter's own sampling disabled — the harness samples itself.
pub fn chaos_trace(spec: &BenchSpec, cfg: &DriverConfig) -> WorkloadTrace {
    let mut spec = spec.clone();
    spec.tail_fraction = 0.0;
    let program = generate_program(&spec);
    let mut icfg = interp_config(&spec, cfg);
    icfg.sample_every = 0;
    icfg.validate = false;
    record(&program, icfg)
}

/// Replays `trace` under `config` (which carries the fault plan), driving
/// balanced windows through [`ThreadHandle::run_batch`] and the spine
/// through guards, sampling and decoding every [`SAMPLE_EVERY`] ops.
pub fn replay_sampled(trace: &WorkloadTrace, config: DacceConfig) -> ChaosReplay {
    replay_sampled_impl(trace, config, false)
}

/// Like [`replay_sampled`], but first warms the tracker on a *prefix* of
/// the trace, mines superop candidates from the warmed streams (blending
/// the warm pass's sampled hotness), installs them, and then runs the
/// sampled pass with superops live — the realistic profile-then-install
/// shape, where the rest of the run (new edges, phase shifts, late
/// library bindings) keeps re-encoding under the compiled table. Sample
/// points depend only on the trace, so the decoded paths must match
/// [`replay_sampled`] exactly — that equality is the superop differential
/// check.
pub fn replay_sampled_superops(trace: &WorkloadTrace, config: DacceConfig) -> ChaosReplay {
    replay_sampled_impl(trace, config, true)
}

/// The warm-up window handed to the superop miner: the leading third of
/// each thread's ops. Any prefix of a balanced stream is replayable (every
/// return still matches an earlier call; unclosed calls ride the guard
/// spine), and cutting well before the midpoint keeps phase-1 behaviour —
/// hot-callee swaps, late PLT bindings — out of the mined profile so the
/// sampled pass still discovers edges and republishes over the table.
fn warmup_prefix(trace: &WorkloadTrace) -> WorkloadTrace {
    WorkloadTrace {
        threads: trace.threads.clone(),
        traces: trace
            .traces
            .iter()
            .map(|(&tid, ops)| (tid, ops[..ops.len() / 3].to_vec()))
            .collect(),
    }
}

fn replay_sampled_impl(trace: &WorkloadTrace, config: DacceConfig, superops: bool) -> ChaosReplay {
    let max_window = config.superop_max_window.min(CHAOS_WINDOW);
    let max_table = config.superop_max_table;
    let tracker = Tracker::with_config(config);
    let mut fn_map: HashMap<FunctionId, FunctionId> = HashMap::new();
    let mut site_map: HashMap<CallSiteId, CallSiteId> = HashMap::new();
    if superops {
        let warm = warmup_prefix(trace);
        let _ =
            crate::batch::replay_onto(&tracker, &warm, CHAOS_WINDOW, &mut fn_map, &mut site_map);
        let hot = crate::superops::leaf_weights(&tracker.profiler_profile());
        let streams = crate::batch::mapped_streams(&warm, &fn_map, &site_map);
        let refs: Vec<&[BatchOp]> = streams.iter().map(Vec::as_slice).collect();
        let candidates = crate::superops::mine_windows(&refs, max_window, max_table, |f| {
            hot.get(&f).copied().unwrap_or(0)
        });
        let _ = tracker.install_superops(&candidates);
    }
    let mut handles: HashMap<ThreadId, ThreadHandle> = HashMap::new();
    let mut paths = Vec::new();
    let mut decode_failures = 0usize;

    for &ThreadStart { tid, root, parent } in &trace.threads {
        let root = *fn_map
            .entry(root)
            .or_insert_with(|| tracker.define_function(&format!("fn{}", root.index())));
        let th = match parent {
            None => tracker.register_thread(root),
            Some((ptid, psite)) => {
                let psite = *site_map
                    .entry(psite)
                    .or_insert_with(|| tracker.define_call_site());
                let parent = handles.get(&ptid).expect("parent registered before child");
                tracker.register_spawned_thread(root, parent, psite)
            }
        };
        handles.insert(tid, th);
        let th = &handles[&tid];
        let ops = &trace.traces[&tid];

        // `match_ret[i]` = index of the Ret closing the Call at `i`.
        let mut match_ret = vec![usize::MAX; ops.len()];
        let mut open_idx = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                TraceOp::Call { .. } => open_idx.push(i),
                TraceOp::Ret => match_ret[open_idx.pop().expect("return matches a call")] = i,
            }
        }

        let mut buf: Vec<BatchOp> = Vec::with_capacity(CHAOS_WINDOW);
        let mut buf_depth = 0usize;
        let mut guards = Vec::new();
        let mut done = 0u64;
        // Samples fire at op counts that depend only on the trace, so the
        // faulted and fault-free replays sample identical program points.
        let mut next_sample = SAMPLE_EVERY;
        let mut sample_due = |done: u64, paths: &mut Vec<String>, decode_failures: &mut usize| {
            while done >= next_sample {
                next_sample += SAMPLE_EVERY;
                let ctx = th.sample();
                match tracker.decode(&ctx) {
                    Ok(path) => paths.push(format!("{tid}: {}", tracker.format_path(&path))),
                    Err(e) => {
                        *decode_failures += 1;
                        paths.push(format!("{tid}: decode-error {e}"));
                    }
                }
            }
        };

        let mut i = 0;
        while i < ops.len() {
            match ops[i] {
                TraceOp::Call {
                    site,
                    target,
                    indirect,
                } => {
                    let site = *site_map
                        .entry(site)
                        .or_insert_with(|| tracker.define_call_site());
                    let target = *fn_map.entry(target).or_insert_with(|| {
                        tracker.define_function(&format!("fn{}", target.index()))
                    });
                    let j = match_ret[i];
                    if j != usize::MAX && j - i < CHAOS_WINDOW {
                        buf.push(if indirect {
                            BatchOp::CallIndirect { site, target }
                        } else {
                            BatchOp::Call { site, target }
                        });
                        buf_depth += 1;
                    } else {
                        if !buf.is_empty() {
                            done += buf.len() as u64;
                            th.run_batch(&buf).expect("replay windows are balanced");
                            buf.clear();
                            sample_due(done, &mut paths, &mut decode_failures);
                        }
                        guards.push(if indirect {
                            th.call_indirect(site, target)
                        } else {
                            th.call(site, target)
                        });
                        done += 1;
                        sample_due(done, &mut paths, &mut decode_failures);
                    }
                    i += 1;
                }
                TraceOp::Ret => {
                    if buf_depth > 0 {
                        buf.push(BatchOp::Ret);
                        buf_depth -= 1;
                        if buf_depth == 0 && buf.len() >= CHAOS_WINDOW {
                            done += buf.len() as u64;
                            th.run_batch(&buf).expect("replay windows are balanced");
                            buf.clear();
                            sample_due(done, &mut paths, &mut decode_failures);
                        }
                    } else {
                        if !buf.is_empty() {
                            done += buf.len() as u64;
                            th.run_batch(&buf).expect("replay windows are balanced");
                            buf.clear();
                        }
                        drop(guards.pop().expect("guard for unbatched return"));
                        done += 1;
                        sample_due(done, &mut paths, &mut decode_failures);
                    }
                    i += 1;
                }
            }
        }
        if !buf.is_empty() {
            done += buf.len() as u64;
            th.run_batch(&buf).expect("replay windows are balanced");
            buf.clear();
            sample_due(done, &mut paths, &mut decode_failures);
        }
        while let Some(g) = guards.pop() {
            drop(g);
        }
    }

    let invariant_error = tracker.check_invariants().err();
    ChaosReplay {
        paths,
        decode_failures,
        stats: tracker.stats(),
        invariant_error,
    }
}

/// Runs `trace` once fault-free and once under `plan`, comparing every
/// decoded sample point. `preset` labels the outcome.
pub fn run_chaos_plan(
    trace: &WorkloadTrace,
    base: &DacceConfig,
    preset: &str,
    plan: FaultPlan,
) -> ChaosOutcome {
    let mut clean_cfg = base.clone();
    clean_cfg.fault = FaultPlan::default();
    let clean = replay_sampled(trace, clean_cfg);

    let mut fault_cfg = base.clone();
    fault_cfg.fault = plan;
    let faulted = replay_sampled(trace, fault_cfg);

    assert_eq!(
        clean.paths.len(),
        faulted.paths.len(),
        "both replays sample the same program points"
    );
    let mismatches = clean
        .paths
        .iter()
        .zip(&faulted.paths)
        .filter(|(a, b)| a != b)
        .count();
    ChaosOutcome {
        preset: preset.to_string(),
        calls: trace.calls(),
        samples: faulted.paths.len(),
        mismatches,
        replay: faulted,
    }
}

/// Records `spec` once and runs the differential chaos check for every
/// [`FaultPlan`] preset.
pub fn run_all_presets(spec: &BenchSpec, cfg: &DriverConfig) -> Vec<ChaosOutcome> {
    let trace = chaos_trace(spec, cfg);
    FaultPlan::presets()
        .into_iter()
        .map(|(name, plan)| run_chaos_plan(&trace, &cfg.dacce, name, plan))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> DriverConfig {
        DriverConfig {
            scale: 0.05,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn fault_free_replay_is_self_consistent() {
        let trace = chaos_trace(&BenchSpec::tiny("chaos-clean", 3), &smoke_cfg());
        let replay = replay_sampled(&trace, DacceConfig::default());
        assert!(replay.paths.len() > 4, "cadence produces samples");
        assert_eq!(replay.decode_failures, 0);
        assert_eq!(replay.invariant_error, None);
        assert!(!replay.stats.degraded.any(), "no faults, no degradation");
    }

    #[test]
    fn maxid_exhaustion_degrades_but_stays_sound() {
        let trace = chaos_trace(&BenchSpec::tiny("chaos-maxid", 5), &smoke_cfg());
        // Eager re-encoding plus a zero cap: the first re-encoding that
        // needs any id past 0 exhausts and flips the runtime degraded.
        let base = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            ..DacceConfig::default()
        };
        let out = run_chaos_plan(
            &trace,
            &base,
            "maxid-exhaustion",
            FaultPlan {
                max_id_cap: Some(0),
                ..FaultPlan::default()
            },
        );
        assert!(
            out.mismatches == 0 && out.replay.decode_failures == 0,
            "degraded decode diverged: {out:?}"
        );
        assert_eq!(out.replay.invariant_error, None);
        let d = &out.replay.stats.degraded;
        assert!(d.active, "a zero maxID cap must force degraded mode");
        assert!(d.degraded_traps > 0);
        assert!(!d.trap_nodes.is_empty());
    }

    #[test]
    fn cc_overflow_spills_but_stays_sound() {
        let trace = chaos_trace(&BenchSpec::tiny("chaos-cc", 7), &smoke_cfg());
        let out = run_chaos_plan(
            &trace,
            &DacceConfig::default(),
            "cc-overflow",
            FaultPlan::preset("cc-overflow").unwrap(),
        );
        assert!(out.sound(), "spilled decode diverged");
        assert!(
            out.replay.stats.degraded.cc_spill_events > 0,
            "a spill limit of 6 must shed on deep stacks"
        );
    }

    #[test]
    fn reencode_storm_churns_generations() {
        let trace = chaos_trace(&BenchSpec::tiny("chaos-storm", 13), &smoke_cfg());
        let base = DacceConfig {
            min_events_between_reencodes: 16,
            ..DacceConfig::default()
        };
        let out = run_chaos_plan(
            &trace,
            &base,
            "reencode-storm",
            FaultPlan::preset("reencode-storm").unwrap(),
        );
        assert!(out.sound(), "storm decode diverged: {out:?}");
        let mut calm_cfg = base;
        calm_cfg.fault = FaultPlan::default();
        let calm = replay_sampled(&trace, calm_cfg);
        assert!(
            out.replay.stats.reencodes > calm.stats.reencodes,
            "the storm must force extra re-encodings ({} vs {})",
            out.replay.stats.reencodes,
            calm.stats.reencodes
        );
    }

    #[test]
    fn every_preset_is_sound_on_a_tiny_workload() {
        for out in run_all_presets(&BenchSpec::tiny("chaos-all", 11), &smoke_cfg()) {
            assert!(
                out.sound(),
                "preset {} diverged: {} mismatches, {} decode failures, invariants {:?}",
                out.preset,
                out.mismatches,
                out.replay.decode_failures,
                out.replay.invariant_error,
            );
        }
    }
}
