//! Static characterisation of generated programs.
//!
//! Summarises the structural properties a benchmark's generated program
//! actually has — function counts by role, call sites by dispatch kind,
//! cold-code share — for sanity checks against the spec and for the
//! experiment reports.

use dacce_program::{CalleeSpec, Op, Program};

/// Structural summary of one program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramShape {
    /// Total functions (libraries included).
    pub functions: usize,
    /// Functions belonging to shared libraries.
    pub lib_functions: usize,
    /// Functions whose name marks them as never-executed cold code.
    pub cold_functions: usize,
    /// Total call sites.
    pub sites: usize,
    /// Direct call sites.
    pub direct_sites: usize,
    /// Indirect call sites.
    pub indirect_sites: usize,
    /// PLT call sites.
    pub plt_sites: usize,
    /// Thread-spawn sites.
    pub spawn_sites: usize,
    /// Tail-call sites.
    pub tail_sites: usize,
    /// Call sites that can never execute (probability 0 in every phase).
    pub cold_sites: usize,
    /// Distinct indirect tables.
    pub tables: usize,
    /// Sum of real indirect targets over all tables.
    pub indirect_targets: usize,
    /// Sum of points-to false positives over all tables.
    pub pointsto_extra: usize,
}

impl ProgramShape {
    /// Fraction of call sites that can never execute.
    pub fn cold_site_fraction(&self) -> f64 {
        if self.sites == 0 {
            return 0.0;
        }
        self.cold_sites as f64 / self.sites as f64
    }
}

/// Computes the shape of `program`.
pub fn characterize(program: &Program) -> ProgramShape {
    let mut shape = ProgramShape {
        functions: program.function_count(),
        lib_functions: program.functions.iter().filter(|f| f.lib.is_some()).count(),
        cold_functions: program
            .functions
            .iter()
            .filter(|f| f.name.starts_with("cold"))
            .count(),
        tables: program.tables.len(),
        indirect_targets: program.tables.iter().map(|t| t.targets.len()).sum(),
        pointsto_extra: program.tables.iter().map(|t| t.pointsto_extra.len()).sum(),
        ..ProgramShape::default()
    };
    for func in &program.functions {
        for op in &func.body {
            let Op::Call(c) = op else { continue };
            shape.sites += 1;
            match c.callee {
                CalleeSpec::Direct(_) => shape.direct_sites += 1,
                CalleeSpec::Indirect { .. } => shape.indirect_sites += 1,
                CalleeSpec::Plt(_) => shape.plt_sites += 1,
                CalleeSpec::Spawn(_) => shape.spawn_sites += 1,
            }
            if c.tail {
                shape.tail_sites += 1;
            }
            if c.prob.iter().all(|&p| p == 0.0) {
                shape.cold_sites += 1;
            }
        }
    }
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate_program;
    use crate::spec::BenchSpec;
    use crate::suite::all_benchmarks;

    #[test]
    fn tiny_spec_shape_matches_parameters() {
        let spec = BenchSpec::tiny("shape", 3);
        let p = generate_program(&spec);
        let shape = characterize(&p);
        assert_eq!(shape.functions, p.function_count());
        assert_eq!(shape.tables, spec.indirect_sites);
        assert_eq!(shape.indirect_sites, spec.indirect_sites);
        assert!(shape.cold_sites > 0, "cold structure present");
        assert!(shape.cold_site_fraction() > 0.0);
        assert!(shape.lib_functions >= spec.lib_functions);
        assert_eq!(shape.spawn_sites, spec.threads.saturating_sub(1));
    }

    #[test]
    fn suite_shapes_reflect_their_specs() {
        for spec in all_benchmarks() {
            let p = generate_program(&spec);
            let shape = characterize(&p);
            assert_eq!(
                shape.spawn_sites,
                spec.threads.saturating_sub(1),
                "{}",
                spec.name
            );
            assert_eq!(shape.tables, spec.indirect_sites, "{}", spec.name);
            if spec.cold_functions > 0 || spec.cold_ladder > 0 {
                assert!(shape.cold_sites > 0, "{} has no cold sites", spec.name);
            }
            if spec.tail_fraction > 0.0 && spec.bush_depth >= 2 && spec.bush_width >= 8 {
                assert!(shape.tail_sites > 0, "{} has no tail sites", spec.name);
            }
            // x264's signature: large indirect target sets.
            if spec.name == "x264" {
                assert!(shape.indirect_targets / shape.tables.max(1) >= 24);
            }
        }
    }

    #[test]
    fn empty_program_shape_is_zero() {
        let mut b = dacce_program::ProgramBuilder::new();
        let main = b.function("main");
        b.body(main).work(1).done();
        let p = b.build(main);
        let shape = characterize(&p);
        assert_eq!(shape.sites, 0);
        assert_eq!(shape.cold_site_fraction(), 0.0);
    }
}
