//! Superop candidate mining: find hot *balanced* call/return windows in
//! recorded instrumentation streams and rank them for compilation.
//!
//! The batched replay ([`crate::batch`]) already splits traces into
//! balanced windows; this module goes one step further and finds the
//! windows worth memoizing — short balanced subsequences that repeat many
//! times. Each candidate handed to [`dacce::tracker::Tracker::install_superops`]
//! is compiled into a single net effect, so ranking matters: the table is
//! capped and every entry occupies probe-chain space on its head site.
//!
//! Ranking blends two signals:
//!
//! * **Static repetition** — `occurrences x window length`, the number of
//!   per-event iterations a compiled window would save over the trace.
//! * **Sampled hotness** — weights from the continuous profiler's
//!   [`HotContextProfile`]: windows whose head callee shows up in sampled
//!   hot contexts get their score scaled up, steering the capped table
//!   towards the paths the profiler actually observes burning time.

use std::collections::HashMap;

use dacce::tracker::BatchOp;
use dacce::{HotContextProfile, WindowOp};
use dacce_callgraph::FunctionId;

/// Converts one recorded op into its window form (indirect calls match by
/// site + target, so both call kinds collapse to [`WindowOp::Call`]).
fn window_op(op: BatchOp) -> WindowOp {
    match op {
        BatchOp::Call { site, target } | BatchOp::CallIndirect { site, target } => {
            WindowOp::Call { site, target }
        }
        BatchOp::Ret => WindowOp::Ret,
    }
}

/// Per-leaf-function sample weights of a profile: the sampled-hotness
/// signal the miner blends into its ranking.
#[must_use]
pub fn leaf_weights(profile: &HotContextProfile) -> HashMap<FunctionId, u64> {
    let mut out: HashMap<FunctionId, u64> = HashMap::new();
    for (path, weight) in profile.top(usize::MAX) {
        if let Some(step) = path.0.last() {
            *out.entry(step.func).or_insert(0) += weight;
        }
    }
    out
}

/// Mines balanced call/return windows from recorded per-thread streams.
///
/// Every balanced subsequence of at most `max_window` ops that starts at a
/// call is a candidate; candidates are counted across all streams, scored
/// `occurrences x length x (1 + hotness(head callee))` and the top
/// `max_count` (ranked by score) are returned, longest first. Windows seen
/// only once are dropped — a superop that never repeats cannot pay for its
/// probe. `hotness` supplies the sampled-hotness weight of a function (0
/// when unsampled); pass `|_| 0` for a purely structural ranking.
#[must_use]
pub fn mine_windows<F>(
    streams: &[&[BatchOp]],
    max_window: usize,
    max_count: usize,
    hotness: F,
) -> Vec<Vec<WindowOp>>
where
    F: Fn(FunctionId) -> u64,
{
    let mut counts: HashMap<Vec<WindowOp>, u64> = HashMap::new();
    for ops in streams {
        for start in 0..ops.len() {
            if matches!(ops[start], BatchOp::Ret) {
                continue;
            }
            // Walk forward tracking relative depth; every return to depth
            // zero closes a balanced window [start, i].
            let mut depth = 0usize;
            let end = ops.len().min(start + max_window);
            for (i, &op) in ops[start..end].iter().enumerate() {
                match op {
                    BatchOp::Call { .. } | BatchOp::CallIndirect { .. } => depth += 1,
                    BatchOp::Ret => {
                        depth -= 1;
                        if depth == 0 {
                            let window: Vec<WindowOp> = ops[start..=start + i]
                                .iter()
                                .map(|&o| window_op(o))
                                .collect();
                            *counts.entry(window).or_insert(0) += 1;
                            break;
                        }
                    }
                }
            }
        }
    }
    let mut ranked: Vec<(Vec<WindowOp>, u64)> = counts
        .into_iter()
        .filter(|(_, n)| *n >= 2)
        .map(|(w, n)| {
            let head_heat = match w.first() {
                Some(WindowOp::Call { target, .. }) => hotness(*target),
                _ => 0,
            };
            let score = n * w.len() as u64 * (1 + head_heat);
            (w, score)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| b.0.len().cmp(&a.0.len())));
    ranked.truncate(max_count);
    // Longest first so nested windows keep the longest-match preference
    // the table itself sorts by.
    ranked.sort_by_key(|r| std::cmp::Reverse(r.0.len()));
    ranked.into_iter().map(|(w, _)| w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_callgraph::CallSiteId;

    fn call(site: u32, target: u32) -> BatchOp {
        BatchOp::Call {
            site: CallSiteId::new(site),
            target: FunctionId::new(target),
        }
    }

    #[test]
    fn repeated_leaf_window_is_mined() {
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(call(0, 1));
            ops.push(BatchOp::Ret);
        }
        let mined = mine_windows(&[&ops], 8, 4, |_| 0);
        assert!(!mined.is_empty());
        // The top window starts with the leaf call and is balanced.
        let depth_ok = mined.iter().all(|w| {
            let mut d = 0i64;
            for op in w {
                match op {
                    WindowOp::Call { .. } => d += 1,
                    WindowOp::Ret => d -= 1,
                }
                if d < 0 {
                    return false;
                }
            }
            d == 0
        });
        assert!(depth_ok, "all mined windows balanced");
    }

    #[test]
    fn singleton_windows_are_dropped() {
        let ops = vec![call(0, 1), BatchOp::Ret, call(1, 2), BatchOp::Ret];
        // Each distinct window occurs once -> nothing worth compiling.
        assert!(mine_windows(&[&ops], 8, 4, |_| 0).is_empty());
    }

    #[test]
    fn hotness_reorders_the_capped_table() {
        let mut ops = Vec::new();
        // Window A (site 0 -> fn 1) repeats 3x, window B (site 1 -> fn 2)
        // repeats twice; structurally A outranks B.
        for _ in 0..3 {
            ops.push(call(0, 1));
            ops.push(BatchOp::Ret);
        }
        for _ in 0..2 {
            ops.push(call(1, 2));
            ops.push(BatchOp::Ret);
        }
        let cold = mine_windows(&[&ops], 8, 1, |_| 0);
        assert_eq!(
            cold,
            vec![vec![
                WindowOp::Call {
                    site: CallSiteId::new(0),
                    target: FunctionId::new(1),
                },
                WindowOp::Ret,
            ]]
        );
        // Sampled heat on fn 2 flips the single-slot ranking.
        let hot = mine_windows(&[&ops], 8, 1, |f| u64::from(f == FunctionId::new(2)) * 100);
        assert_eq!(
            hot,
            vec![vec![
                WindowOp::Call {
                    site: CallSiteId::new(1),
                    target: FunctionId::new(2),
                },
                WindowOp::Ret,
            ]]
        );
    }

    #[test]
    fn windows_never_exceed_the_bound() {
        let mut ops = Vec::new();
        for _ in 0..4 {
            // Nested pair: c c r r, length 4.
            ops.push(call(0, 1));
            ops.push(call(1, 2));
            ops.push(BatchOp::Ret);
            ops.push(BatchOp::Ret);
        }
        for w in mine_windows(&[&ops], 2, 16, |_| 0) {
            assert!(w.len() <= 2);
        }
    }
}
