//! The 41 benchmark analogs: 29 SPEC CPU2006 + 12 PARSEC 2.1.
//!
//! Parameters are calibrated to reproduce the *relative* characteristics of
//! Table 1 of the paper: graph sizes, encoding-space demand (`maxID`,
//! including PCCE overflow on the `perlbench`/`gcc` analogs), ccStack
//! traffic from recursion and indirect fan-out, call density (`calls/s` →
//! `call_work` via the testbed's ~1.9 GHz clock), deep recursion for
//! `483.xalancbmk`, the many-target indirect sites of `x264`, phase shifts
//! where Table 1 shows many re-encodings, and PARSEC thread counts.
//! Absolute magnitudes are scaled down to keep the whole suite runnable in
//! seconds; `DriverConfig::scale` trades time for fidelity.

use crate::spec::{BenchSpec, Suite};

fn base(name: &'static str, suite: Suite, seed: u64) -> BenchSpec {
    BenchSpec {
        name,
        suite,
        seed,
        bush_depth: 4,
        bush_width: 20,
        bush_callees: 3,
        hot_ladder: 8,
        indirect_hot: 0.7,
        self_recursion: 1,
        mutual_recursion: 0,
        recursion_prob: 0.5,
        deep_chain: 0,
        chain_loop_prob: 0.0,
        chain_count: 1,
        cold_back_edges: 0,
        max_depth: 128,
        indirect_sites: 2,
        indirect_targets: 3,
        pointsto_extra: 3,
        tail_fraction: 0.05,
        lib_functions: 4,
        plt_sites: 2,
        late_libs: false,
        cold_ladder: 12,
        cold_functions: 150,
        cold_callees: 1,
        call_work: 1_000,
        hot_concentration: 0.8,
        phase_shift: false,
        threads: 1,
        budget_calls: 40_000,
    }
}

/// The 29 SPEC CPU2006 analog benchmarks.
pub fn spec2006_benchmarks() -> Vec<BenchSpec> {
    use Suite::{SpecFp as FP, SpecInt as INT};
    vec![
        BenchSpec {
            bush_depth: 8, bush_width: 60, bush_callees: 5, hot_ladder: 36,
            self_recursion: 4, mutual_recursion: 2, recursion_prob: 0.70, max_depth: 300,
            indirect_sites: 12, indirect_targets: 8, pointsto_extra: 20,
            tail_fraction: 0.10, lib_functions: 12, plt_sites: 8,
            late_libs: true,
            cold_ladder: 75, cold_functions: 700, cold_callees: 3,
            cold_back_edges: 2,
            call_work: 64, phase_shift: true, budget_calls: 1_000_000,
            ..base("400.perlbench", INT, 400)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 10, hot_ladder: 5, recursion_prob: 0.5,
            indirect_sites: 1, indirect_targets: 2, pointsto_extra: 1,
            cold_ladder: 8, cold_functions: 60, call_work: 243,
            budget_calls: 190_000,
            ..base("401.bzip2", INT, 401)
        },
        BenchSpec {
            bush_depth: 10, bush_width: 150, bush_callees: 5, hot_ladder: 45,
            self_recursion: 6, mutual_recursion: 4, recursion_prob: 0.80, max_depth: 300,
            indirect_sites: 20, indirect_targets: 10, pointsto_extra: 30,
            tail_fraction: 0.10, lib_functions: 16, plt_sites: 10,
            cold_ladder: 78, cold_functions: 1_800, cold_callees: 3,
            call_work: 127, phase_shift: true, budget_calls: 1_500_000,
            ..base("403.gcc", INT, 403)
        },
        BenchSpec {
            bush_depth: 2, bush_width: 4, bush_callees: 2, hot_ladder: 1,
            recursion_prob: 0.3, indirect_sites: 0, lib_functions: 2, plt_sites: 1,
            cold_ladder: 5, cold_functions: 50, call_work: 6_327,
            budget_calls: 40_000,
            ..base("429.mcf", INT, 429)
        },
        BenchSpec {
            bush_depth: 7, bush_width: 150, hot_ladder: 37,
            self_recursion: 8, mutual_recursion: 4, recursion_prob: 0.93, max_depth: 400,
            deep_chain: 12, chain_loop_prob: 0.6,
            indirect_sites: 10, indirect_targets: 12, pointsto_extra: 20,
            tail_fraction: 0.08, lib_functions: 8, plt_sites: 4,
            cold_ladder: 51, cold_functions: 800, cold_callees: 2,
            call_work: 140, budget_calls: 600_000,
            ..base("445.gobmk", INT, 445)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 15, bush_callees: 2, hot_ladder: 5,
            recursion_prob: 0.4, indirect_sites: 2, indirect_targets: 3, pointsto_extra: 2,
            cold_ladder: 15, cold_functions: 150, call_work: 999,
            budget_calls: 80_000,
            ..base("456.hmmer", INT, 456)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 12, bush_callees: 4, hot_ladder: 11,
            self_recursion: 2, mutual_recursion: 1, recursion_prob: 0.55,
            indirect_sites: 2, indirect_targets: 4, pointsto_extra: 2,
            cold_ladder: 14, cold_functions: 70, call_work: 102,
            phase_shift: true, budget_calls: 456_000,
            ..base("458.sjeng", INT, 458)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 7, bush_callees: 2, hot_ladder: 3,
            self_recursion: 0, indirect_sites: 1, indirect_targets: 2, pointsto_extra: 0,
            cold_ladder: 19, cold_functions: 80, call_work: 4_000_000,
            budget_calls: 30_000,
            ..base("462.libquantum", INT, 462)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 40, bush_callees: 4, hot_ladder: 15,
            self_recursion: 2, recursion_prob: 0.5,
            indirect_sites: 6, indirect_targets: 6, pointsto_extra: 8,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 23, cold_functions: 180, call_work: 264,
            budget_calls: 250_000,
            ..base("464.h264ref", INT, 464)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 50, bush_callees: 4, hot_ladder: 13,
            self_recursion: 3, mutual_recursion: 2, recursion_prob: 0.7, max_depth: 200,
            indirect_sites: 8, indirect_targets: 6, pointsto_extra: 10,
            lib_functions: 8, plt_sites: 4,
            cold_ladder: 23, cold_functions: 1_100, cold_callees: 2,
            call_work: 160, budget_calls: 350_000,
            ..base("471.omnetpp", INT, 471)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 12, hot_ladder: 6, recursion_prob: 0.5,
            indirect_sites: 1, indirect_targets: 2, pointsto_extra: 1,
            cold_ladder: 11, cold_functions: 70, call_work: 14_434,
            budget_calls: 50_000,
            ..base("473.astar", INT, 473)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 120, hot_ladder: 20,
            self_recursion: 4, mutual_recursion: 2, recursion_prob: 0.90, max_depth: 9_500,
            deep_chain: 1_200, chain_loop_prob: 0.98, chain_count: 16,
            indirect_sites: 14, indirect_targets: 8, pointsto_extra: 16,
            tail_fraction: 0.06, lib_functions: 10, plt_sites: 6,
            cold_ladder: 48, cold_functions: 4_000, cold_callees: 2,
            cold_back_edges: 3,
            call_work: 74, phase_shift: true, budget_calls: 1_000_000,
            ..base("483.xalancbmk", INT, 483)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 20, bush_callees: 2, hot_ladder: 6,
            recursion_prob: 0.4, indirect_sites: 1, indirect_targets: 2, pointsto_extra: 1,
            cold_ladder: 22, cold_functions: 250, call_work: 7_088,
            budget_calls: 50_000,
            ..base("410.bwaves", FP, 410)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 70, bush_callees: 4, hot_ladder: 17,
            self_recursion: 2, mutual_recursion: 1, recursion_prob: 0.6,
            indirect_sites: 4, indirect_targets: 5, pointsto_extra: 6,
            lib_functions: 8, plt_sites: 4,
            cold_ladder: 50, cold_functions: 2_000, cold_callees: 2,
            call_work: 552, budget_calls: 200_000,
            ..base("416.gamess", FP, 416)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 12, hot_ladder: 8, recursion_prob: 0.6,
            indirect_sites: 2, indirect_targets: 3, pointsto_extra: 2,
            cold_ladder: 12, cold_functions: 100, call_work: 4_915,
            phase_shift: true, budget_calls: 60_000,
            ..base("433.milc", FP, 433)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 25, hot_ladder: 12, recursion_prob: 0.5,
            indirect_sites: 2, indirect_targets: 3, pointsto_extra: 3,
            cold_ladder: 28, cold_functions: 280, call_work: 1_170_000,
            phase_shift: true, budget_calls: 60_000,
            ..base("434.zeusmp", FP, 434)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 30, hot_ladder: 10, recursion_prob: 0.4,
            indirect_sites: 2, indirect_targets: 4, pointsto_extra: 3,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 18, cold_functions: 450, call_work: 2_034,
            budget_calls: 80_000,
            ..base("435.gromacs", FP, 435)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 55, bush_callees: 4, hot_ladder: 17,
            recursion_prob: 0.4, indirect_sites: 3, indirect_targets: 4, pointsto_extra: 4,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 23, cold_functions: 580, call_work: 401_000,
            budget_calls: 60_000,
            ..base("436.cactusADM", FP, 436)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 22, bush_callees: 4, hot_ladder: 8,
            recursion_prob: 0.4, indirect_sites: 2, indirect_targets: 3, pointsto_extra: 2,
            cold_ladder: 26, cold_functions: 320, call_work: 21_940,
            budget_calls: 60_000,
            ..base("437.leslie3d", FP, 437)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 13, hot_ladder: 4, recursion_prob: 0.5,
            indirect_sites: 1, indirect_targets: 3, pointsto_extra: 1,
            cold_ladder: 8, cold_functions: 110, call_work: 2_534,
            budget_calls: 50_000,
            ..base("444.namd", FP, 444)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 130, hot_ladder: 10,
            self_recursion: 3, mutual_recursion: 2, recursion_prob: 0.7, max_depth: 200,
            indirect_sites: 8, indirect_targets: 5, pointsto_extra: 8,
            tail_fraction: 0.05, lib_functions: 10, plt_sites: 6,
            cold_ladder: 17, cold_functions: 3_000, cold_callees: 2,
            call_work: 96, budget_calls: 600_000,
            ..base("447.dealII", FP, 447)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 40, bush_callees: 2, hot_ladder: 8,
            self_recursion: 2, recursion_prob: 0.65,
            indirect_sites: 3, indirect_targets: 4, pointsto_extra: 4,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 16, cold_functions: 500, call_work: 5_985,
            budget_calls: 80_000,
            ..base("450.soplex", FP, 450)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 90, bush_callees: 4, hot_ladder: 19,
            self_recursion: 5, mutual_recursion: 3, recursion_prob: 0.9, max_depth: 400,
            indirect_sites: 8, indirect_targets: 6, pointsto_extra: 10,
            tail_fraction: 0.08, lib_functions: 8, plt_sites: 4,
            cold_ladder: 56, cold_functions: 1_000, cold_callees: 2,
            call_work: 54, budget_calls: 860_000,
            ..base("453.povray", FP, 453)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 70, bush_callees: 4, hot_ladder: 11,
            self_recursion: 2, recursion_prob: 0.7,
            indirect_sites: 4, indirect_targets: 4, pointsto_extra: 5,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 30, cold_functions: 580, call_work: 511,
            budget_calls: 160_000,
            ..base("454.calculix", FP, 454)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 30, bush_callees: 4, hot_ladder: 13,
            recursion_prob: 0.5, indirect_sites: 2, indirect_targets: 4, pointsto_extra: 4,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 29, cold_functions: 330, call_work: 1_184,
            budget_calls: 120_000,
            ..base("459.GemsFDTD", FP, 459)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 100, bush_callees: 4, hot_ladder: 17,
            self_recursion: 3, mutual_recursion: 2, recursion_prob: 0.6,
            indirect_sites: 8, indirect_targets: 5, pointsto_extra: 8,
            lib_functions: 10, plt_sites: 6,
            cold_ladder: 48, cold_functions: 1_400, cold_callees: 2,
            call_work: 196, phase_shift: true, budget_calls: 350_000,
            ..base("465.tonto", FP, 465)
        },
        BenchSpec {
            bush_depth: 2, bush_width: 3, bush_callees: 2, hot_ladder: 1,
            self_recursion: 0, indirect_sites: 0, lib_functions: 2, plt_sites: 1,
            cold_ladder: 5, cold_functions: 55, call_work: 631_000,
            budget_calls: 30_000,
            ..base("470.lbm", FP, 470)
        },
        BenchSpec {
            bush_depth: 6, bush_width: 110, bush_callees: 4, hot_ladder: 19,
            self_recursion: 2, recursion_prob: 0.6,
            indirect_sites: 6, indirect_targets: 5, pointsto_extra: 8,
            lib_functions: 10, plt_sites: 6,
            cold_ladder: 42, cold_functions: 650, call_work: 793,
            budget_calls: 200_000,
            ..base("481.wrf", FP, 481)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 25, hot_ladder: 6, recursion_prob: 0.5,
            indirect_sites: 2, indirect_targets: 4, pointsto_extra: 3,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 14, cold_functions: 130, call_work: 997,
            budget_calls: 100_000,
            ..base("482.sphinx3", FP, 482)
        },
    ]
}

/// The 12 PARSEC 2.1 analog benchmarks (multi-threaded).
pub fn parsec_benchmarks() -> Vec<BenchSpec> {
    use Suite::Parsec as P;
    vec![
        BenchSpec {
            bush_depth: 2, bush_width: 2, bush_callees: 1, hot_ladder: 2,
            self_recursion: 0, indirect_sites: 0, lib_functions: 0, plt_sites: 0,
            cold_ladder: 2, cold_functions: 8, cold_callees: 0,
            call_work: 128, threads: 3, budget_calls: 370_000,
            ..base("blackscholes", P, 900)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 40, hot_ladder: 9, recursion_prob: 0.5,
            indirect_sites: 4, indirect_targets: 4, pointsto_extra: 6,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 17, cold_functions: 1_000, cold_callees: 2,
            call_work: 270, threads: 4, budget_calls: 260_000,
            ..base("bodytrack", P, 901)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 50, bush_callees: 4, hot_ladder: 10,
            recursion_prob: 0.4, indirect_sites: 4, indirect_targets: 4, pointsto_extra: 6,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 34, cold_functions: 2_500, cold_callees: 2,
            call_work: 210, threads: 4, budget_calls: 280_000,
            ..base("facesim", P, 902)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 65, bush_callees: 4, hot_ladder: 11,
            recursion_prob: 0.5, indirect_sites: 6, indirect_targets: 5, pointsto_extra: 8,
            lib_functions: 8, plt_sites: 4,
            cold_ladder: 49, cold_functions: 1_600, cold_callees: 2,
            call_work: 421, threads: 4, budget_calls: 160_000,
            ..base("ferret", P, 903)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 35, hot_ladder: 7,
            self_recursion: 2, recursion_prob: 0.7,
            indirect_sites: 3, indirect_targets: 4, pointsto_extra: 4,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 29, cold_functions: 2_500, cold_callees: 2,
            call_work: 532, threads: 3, budget_calls: 160_000,
            ..base("raytrace", P, 904)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 5, bush_callees: 2, hot_ladder: 5,
            self_recursion: 0, indirect_sites: 1, indirect_targets: 3, pointsto_extra: 1,
            lib_functions: 2, plt_sites: 1,
            cold_ladder: 28, cold_functions: 800, cold_callees: 2,
            call_work: 86, threads: 4, budget_calls: 540_000,
            ..base("swaptions", P, 905)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 15, hot_ladder: 4,
            self_recursion: 0, indirect_sites: 1, indirect_targets: 3, pointsto_extra: 1,
            cold_ladder: 28, cold_functions: 800, call_work: 24_500,
            threads: 4, budget_calls: 50_000,
            ..base("fluidanimate", P, 906)
        },
        BenchSpec {
            bush_depth: 5, bush_width: 95, hot_ladder: 14, recursion_prob: 0.5,
            indirect_sites: 6, indirect_targets: 5, pointsto_extra: 8,
            lib_functions: 10, plt_sites: 6,
            cold_ladder: 39, cold_functions: 2_000, cold_callees: 2,
            call_work: 2_187, threads: 4, budget_calls: 150_000,
            ..base("vips", P, 907)
        },
        BenchSpec {
            bush_depth: 4, bush_width: 45, bush_callees: 4, hot_ladder: 10,
            recursion_prob: 0.5,
            indirect_sites: 8, indirect_targets: 48, pointsto_extra: 24,
            indirect_hot: 0.35,
            lib_functions: 6, plt_sites: 3,
            cold_ladder: 20, cold_functions: 600,
            call_work: 78, threads: 4, budget_calls: 600_000,
            ..base("x264", P, 908)
        },
        BenchSpec {
            bush_depth: 3, bush_width: 22, hot_ladder: 5,
            self_recursion: 0, indirect_sites: 2, indirect_targets: 3, pointsto_extra: 2,
            cold_ladder: 28, cold_functions: 800, cold_callees: 2,
            call_work: 821, threads: 4, budget_calls: 100_000,
            ..base("canneal", P, 909)
        },
        BenchSpec {
            bush_depth: 2, bush_width: 6, bush_callees: 2, hot_ladder: 2,
            self_recursion: 0, indirect_sites: 1, indirect_targets: 2, pointsto_extra: 1,
            cold_ladder: 6, cold_functions: 90, call_work: 1_432,
            threads: 4, budget_calls: 60_000,
            ..base("dedup", P, 910)
        },
        BenchSpec {
            bush_depth: 2, bush_width: 3, bush_callees: 2, hot_ladder: 3,
            self_recursion: 0, indirect_sites: 1, indirect_targets: 2, pointsto_extra: 1,
            lib_functions: 2, plt_sites: 1,
            cold_ladder: 28, cold_functions: 800, call_work: 16_800,
            threads: 4, budget_calls: 50_000,
            ..base("streamcluster", P, 911)
        },
    ]
}

/// All 41 benchmarks, SPEC first, in the paper's Table 1 order.
pub fn all_benchmarks() -> Vec<BenchSpec> {
    let mut v = spec2006_benchmarks();
    v.extend(parsec_benchmarks());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate_program;

    #[test]
    fn suite_has_41_unique_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 41);
        assert_eq!(spec2006_benchmarks().len(), 29);
        assert_eq!(parsec_benchmarks().len(), 12);
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 41, "names must be unique");
    }

    #[test]
    fn every_spec_generates_a_valid_program() {
        for spec in all_benchmarks() {
            let p = generate_program(&spec);
            assert_eq!(p.validate(), Ok(()), "{} invalid", spec.name);
            assert!(p.function_count() > 5, "{} too small", spec.name);
        }
    }

    #[test]
    fn parsec_analogs_are_threaded() {
        for spec in parsec_benchmarks() {
            assert!(spec.threads > 1, "{} must be multi-threaded", spec.name);
        }
    }

    #[test]
    fn overflow_candidates_have_deep_cold_ladders() {
        let all = all_benchmarks();
        let perl = all.iter().find(|s| s.name == "400.perlbench").unwrap();
        let gcc = all.iter().find(|s| s.name == "403.gcc").unwrap();
        assert!(perl.cold_ladder >= 70);
        assert!(gcc.cold_ladder >= 70);
        // Everyone else stays within 64-bit reach.
        for s in &all {
            if s.name != "400.perlbench" && s.name != "403.gcc" {
                assert!(s.cold_ladder < 64, "{} would overflow", s.name);
            }
        }
    }
}
