//! Benchmark specifications.
//!
//! A [`BenchSpec`] describes one synthetic analog of a SPEC CPU2006 or
//! PARSEC 2.1 benchmark as counts of structural *motifs* plus dynamic
//! parameters. The motifs map to the phenomena the paper's evaluation
//! discusses:
//!
//! * **ladders** (chains of doubling diamonds) set the encoding-space
//!   demand — `hot_ladder` drives DACCE's `maxID`, `cold_ladder` exists
//!   only statically and inflates (or overflows) PCCE's;
//! * **bushes** (layered random DAGs with skewed probabilities) produce the
//!   bulk of nodes, edges and dynamic calls;
//! * **recursion** motifs produce ccStack traffic and call-stack depth
//!   (`483.xalancbmk`'s deep stacks);
//! * **indirect hubs** produce indirect-call sites with many targets plus
//!   points-to false positives (the `x264` effect for PCCE);
//! * **PLT/libraries** produce lazily bound calls;
//! * **phase shift** moves the hot paths mid-run, exercising adaptive
//!   re-encoding.

/// Which suite a benchmark belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// SPEC CPU2006 integer analog.
    SpecInt,
    /// SPEC CPU2006 floating-point analog.
    SpecFp,
    /// PARSEC 2.1 analog (multi-threaded).
    Parsec,
}

impl Suite {
    /// Short tag used in reports.
    pub fn tag(self) -> &'static str {
        match self {
            Suite::SpecInt => "int",
            Suite::SpecFp => "fp",
            Suite::Parsec => "parsec",
        }
    }
}

/// Parameters of one synthetic benchmark.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Benchmark name (e.g. `400.perlbench`).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Seed for program generation and execution.
    pub seed: u64,

    // --- hot structure (exercised at runtime) ---
    /// Layers of the hot bush.
    pub bush_depth: usize,
    /// Functions per hot bush layer.
    pub bush_width: usize,
    /// Call ops per hot bush function.
    pub bush_callees: usize,
    /// Stages of the hot doubling ladder (DACCE maxID ~ 2^stages).
    pub hot_ladder: usize,
    /// Number of self-recursive functions.
    pub self_recursion: usize,
    /// Number of mutual-recursion pairs.
    pub mutual_recursion: usize,
    /// Continuation probability of recursive calls.
    pub recursion_prob: f32,
    /// Length of the deep recursive chain motif (0 = none): a cycle of this
    /// many functions whose tail loops back to its head. Long cycles
    /// produce very deep call stacks with few ccStack entries — the
    /// `483.xalancbmk` behaviour of Figure 10.
    pub deep_chain: usize,
    /// Probability that the deep chain's last function loops back.
    pub chain_loop_prob: f32,
    /// Number of separate deep chains the `deep_chain` functions are split
    /// into (each chain is an independent recursion region; with
    /// `cold_back_edges > 0` each also gets a sabotaged hot link for PCCE).
    pub chain_count: usize,
    /// Number of hot-ladder stages sabotaged by never-executed cold edges
    /// that close static cycles, so that PCCE's whole-graph analysis turns
    /// *hot* edges into back edges (§6.4: "edges that are never invoked in
    /// real runs may still cause some edges to be identified as back edges
    /// in a complete call graph"). DACCE never sees the cold edges.
    pub cold_back_edges: usize,
    /// Maximum interpreter call depth (bounds recursion; large for the
    /// deep-stack analogs).
    pub max_depth: usize,
    /// Indirect hub sites.
    pub indirect_sites: usize,
    /// Real targets per indirect table.
    pub indirect_targets: usize,
    /// Points-to false positives per indirect table.
    pub pointsto_extra: usize,
    /// Probability that an indirect site dispatches to its dominant target
    /// (lower values spread traffic over the chain — the `x264` effect).
    pub indirect_hot: f32,
    /// Fraction of hot bush functions whose last op is a tail call.
    pub tail_fraction: f32,
    /// Library functions reachable through the PLT.
    pub lib_functions: usize,
    /// PLT call sites sprinkled over the bush.
    pub plt_sites: usize,
    /// Shared libraries load *late*: PLT sites never fire in phase 0 and
    /// only bind mid-run (the paper's dynamically loaded plugin scenario,
    /// §2.2 Issue 2 — Apache/Firefox plugins).
    pub late_libs: bool,

    // --- cold structure (static only; PCCE must encode it) ---
    /// Stages of the cold doubling ladder (PCCE maxID; ~64+ overflows).
    pub cold_ladder: usize,
    /// Extra never-executed functions.
    pub cold_functions: usize,
    /// Never-executed call ops per hot function (into cold code).
    pub cold_callees: usize,

    // --- dynamics ---
    /// Mean base work units per function body (sets call density; the
    /// "calls/s" analog is `1e6 / (work per call)`).
    pub call_work: u32,
    /// Probability of the designated hot callee per bush op.
    pub hot_concentration: f32,
    /// Swap hot callees at the phase boundary (mid-run).
    pub phase_shift: bool,
    /// Worker threads (1 = single-threaded).
    pub threads: usize,
    /// Dynamic call budget at scale 1.0.
    pub budget_calls: u64,
}

impl BenchSpec {
    /// A small, fast, single-threaded default used by tests; real entries
    /// live in [`crate::suite`].
    pub fn tiny(name: &'static str, seed: u64) -> Self {
        BenchSpec {
            name,
            suite: Suite::SpecInt,
            seed,
            bush_depth: 3,
            bush_width: 4,
            bush_callees: 2,
            hot_ladder: 3,
            self_recursion: 1,
            mutual_recursion: 0,
            recursion_prob: 0.5,
            deep_chain: 0,
            chain_loop_prob: 0.0,
            chain_count: 1,
            cold_back_edges: 0,
            max_depth: 64,
            indirect_sites: 1,
            indirect_targets: 2,
            pointsto_extra: 1,
            indirect_hot: 0.7,
            tail_fraction: 0.2,
            lib_functions: 2,
            plt_sites: 1,
            late_libs: false,
            cold_ladder: 4,
            cold_functions: 6,
            cold_callees: 1,
            call_work: 60,
            hot_concentration: 0.8,
            phase_shift: false,
            threads: 1,
            budget_calls: 20_000,
        }
    }

    /// The paper's `calls/s` analog implied by the work density: dynamic
    /// calls per million base-work units.
    pub fn expected_call_density(&self) -> f64 {
        1e6 / f64::from(self.call_work.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_spec_is_consistent() {
        let s = BenchSpec::tiny("t", 1);
        assert_eq!(s.suite.tag(), "int");
        assert!(s.expected_call_density() > 0.0);
        assert!(s.bush_depth > 0 && s.bush_width > 0);
    }

    #[test]
    fn suite_tags() {
        assert_eq!(Suite::SpecFp.tag(), "fp");
        assert_eq!(Suite::Parsec.tag(), "parsec");
    }
}
