//! The experiment driver: one benchmark, all runtimes, all numbers.
//!
//! Reproduces the paper's methodology (§6.1): a Pin-style profiling run
//! feeds the PCCE baseline; the measured runs execute the same workload
//! (same seed, same interleaving) under PCCE and DACCE; periodic samples
//! are cross-validated against the interpreter's stack-walking oracle.

use dacce::{DacceConfig, DacceRuntime, DacceStats};
use dacce_pcce::{PcceRuntime, PcceStats, ProfilingRuntime};
use dacce_program::{CostModel, InterpConfig, Interpreter, Program, RunReport};

use crate::genprog::generate_program;
use crate::spec::BenchSpec;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Multiplies every spec's call budget (0.1 for smoke runs, 1.0 for the
    /// paper tables).
    pub scale: f64,
    /// Sample interval in call events (the paper samples at ~100 Hz; one
    /// sample per ~1k calls keeps validation strong without dominating
    /// cost).
    pub sample_every: u64,
    /// Validate every decoded sample against the oracle.
    pub validate: bool,
    /// DACCE engine configuration.
    pub dacce: DacceConfig,
    /// Cost model shared by all runtimes.
    pub cost: CostModel,
    /// Keep DACCE's full sample log (needed by the figure binaries).
    pub keep_sample_log: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            scale: 1.0,
            sample_every: 1009,
            validate: true,
            dacce: DacceConfig::default(),
            cost: CostModel::default(),
            keep_sample_log: false,
        }
    }
}

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchOutcome {
    /// The benchmark name.
    pub name: &'static str,
    /// Dynamic call events of the measured runs.
    pub calls: u64,
    /// Base work of the measured runs.
    pub base_cost: u64,
    /// DACCE interpreter report.
    pub dacce_report: RunReport,
    /// DACCE engine statistics.
    pub dacce_stats: DacceStats,
    /// Final DACCE graph size (nodes, edges).
    pub dacce_graph: (usize, usize),
    /// PCCE interpreter report.
    pub pcce_report: RunReport,
    /// PCCE statistics.
    pub pcce_stats: PcceStats,
}

impl BenchOutcome {
    /// DACCE steady-state overhead ratio (see
    /// [`RunReport::warm_overhead`]).
    pub fn dacce_overhead(&self) -> f64 {
        self.dacce_report.warm_overhead()
    }

    /// PCCE steady-state overhead ratio.
    pub fn pcce_overhead(&self) -> f64 {
        self.pcce_report.warm_overhead()
    }

    /// Whole-run overhead ratios `(pcce, dacce)`, warm-up included.
    pub fn cold_overheads(&self) -> (f64, f64) {
        (self.pcce_report.overhead(), self.dacce_report.overhead())
    }

    /// The `calls/s` analog: calls per million base-work units.
    pub fn call_density(&self) -> f64 {
        self.dacce_report.calls_per_mwork()
    }

    /// ccStack operations per million work units for (PCCE, DACCE) — the
    /// Table 1 `ccStack/s` analog.
    pub fn ccstack_density(&self) -> (f64, f64) {
        let base = self.base_cost.max(1) as f64 / 1e6;
        (
            self.pcce_stats.ccstack_ops as f64 / base,
            self.dacce_stats.ccstack_ops as f64 / base,
        )
    }

    /// True when every sample of both runs decoded to the oracle context.
    pub fn fully_validated(&self) -> bool {
        self.dacce_report.mismatches == 0
            && self.pcce_report.mismatches == 0
            && self.dacce_report.unsupported == 0
            && self.pcce_report.unsupported == 0
            && self.dacce_stats.decode_errors == 0
            && self.pcce_stats.decode_errors == 0
    }
}

/// The interpreter configuration the driver uses for `spec`.
pub fn interp_config(spec: &BenchSpec, cfg: &DriverConfig) -> InterpConfig {
    InterpConfig {
        seed: spec.seed,
        max_depth: spec.max_depth,
        budget_calls: ((spec.budget_calls as f64 * cfg.scale) as u64).max(1_000),
        sample_every: cfg.sample_every,
        sample_every_work: 0,
        switch_every: 64,
        max_threads: spec.threads.max(1),
        restart_main: true,
        validate: cfg.validate,
    }
}

/// Generates the program for `spec` (exposed for the figure binaries).
pub fn program_of(spec: &BenchSpec) -> Program {
    generate_program(spec)
}

/// Runs profiling, PCCE and DACCE over one benchmark.
pub fn run_benchmark(spec: &BenchSpec, cfg: &DriverConfig) -> BenchOutcome {
    let program = generate_program(spec);
    let icfg = interp_config(spec, cfg);

    // 1. Offline profiling run (feeds PCCE; costless, §6.1).
    let mut profiler = ProfilingRuntime::new();
    let _ = Interpreter::new(&program, icfg.clone()).run(&mut profiler);
    let profile = profiler.into_data();

    // 2. PCCE measured run.
    let mut pcce = PcceRuntime::new(profile, cfg.cost.clone());
    let pcce_report = Interpreter::new(&program, icfg.clone()).run(&mut pcce);

    // 3. DACCE measured run.
    let mut dacce_cfg = cfg.dacce.clone();
    dacce_cfg.keep_sample_log = cfg.keep_sample_log;
    let mut dacce = DacceRuntime::new(dacce_cfg, cfg.cost.clone());
    let dacce_report = Interpreter::new(&program, icfg).run(&mut dacce);

    let graph = dacce.engine().graph();
    let dacce_graph = (graph.node_count(), graph.edge_count());

    BenchOutcome {
        name: spec.name,
        calls: dacce_report.calls,
        base_cost: dacce_report.base_cost,
        dacce_stats: dacce.stats(),
        dacce_graph,
        dacce_report,
        pcce_stats: pcce.stats(),
        pcce_report,
    }
}

/// Runs only DACCE (no profiling/PCCE) over one benchmark — used by the
/// ablation studies, which compare engine configurations against each
/// other.
pub fn run_dacce_only(spec: &BenchSpec, cfg: &DriverConfig) -> (RunReport, DacceStats) {
    let program = generate_program(spec);
    let icfg = interp_config(spec, cfg);
    let mut dacce_cfg = cfg.dacce.clone();
    dacce_cfg.keep_sample_log = cfg.keep_sample_log;
    let mut dacce = DacceRuntime::new(dacce_cfg, cfg.cost.clone());
    let report = Interpreter::new(&program, icfg).run(&mut dacce);
    (report, dacce.stats())
}

/// Like [`run_dacce_only`] but returns the whole runtime, so callers can
/// reach the engine afterwards (state exports, warm-start reports).
pub fn run_dacce_runtime(spec: &BenchSpec, cfg: &DriverConfig) -> (RunReport, DacceRuntime) {
    let program = generate_program(spec);
    let icfg = interp_config(spec, cfg);
    let mut dacce_cfg = cfg.dacce.clone();
    dacce_cfg.keep_sample_log = cfg.keep_sample_log;
    let mut dacce = DacceRuntime::new(dacce_cfg, cfg.cost.clone());
    let report = Interpreter::new(&program, icfg).run(&mut dacce);
    (report, dacce)
}

/// Runs DACCE warm-started from the static analysis of the benchmark's
/// program (the warm-start ablation). The returned runtime's
/// [`DacceRuntime::warm_report`] says how much of the seed was loaded.
pub fn run_dacce_warm(spec: &BenchSpec, cfg: &DriverConfig) -> (RunReport, DacceRuntime) {
    let program = generate_program(spec);
    let icfg = interp_config(spec, cfg);
    let seed = dacce_analyze::warm_seed(&program);
    let mut dacce_cfg = cfg.dacce.clone();
    dacce_cfg.keep_sample_log = cfg.keep_sample_log;
    let mut dacce = DacceRuntime::with_warm_start(dacce_cfg, cfg.cost.clone(), seed);
    let report = Interpreter::new(&program, icfg).run(&mut dacce);
    (report, dacce)
}

/// Runs an arbitrary context runtime over one benchmark (related-work
/// comparisons).
pub fn run_with<R: dacce_program::ContextRuntime>(
    spec: &BenchSpec,
    cfg: &DriverConfig,
    runtime: &mut R,
) -> RunReport {
    let program = generate_program(spec);
    let icfg = interp_config(spec, cfg);
    Interpreter::new(&program, icfg).run(runtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_benchmark_round_trip() {
        let spec = BenchSpec::tiny("driver-test", 21);
        let cfg = DriverConfig {
            scale: 0.5,
            sample_every: 211,
            ..DriverConfig::default()
        };
        let out = run_benchmark(&spec, &cfg);
        assert!(
            out.fully_validated(),
            "dacce: {:?}\npcce: {:?}",
            out.dacce_report.mismatch_examples,
            out.pcce_report.mismatch_examples
        );
        assert!(out.calls >= 1_000);
        assert!(out.dacce_graph.0 > 5);
        // PCCE's static graph covers at least the dynamic one.
        assert!(out.pcce_stats.nodes >= out.dacce_graph.0);
        assert!(out.pcce_stats.edges >= out.dacce_graph.1);
        // Overheads are finite and small-ish.
        assert!(out.dacce_overhead() < 2.0);
        assert!(out.pcce_overhead() < 2.0);
    }

    #[test]
    fn scale_controls_budget() {
        let spec = BenchSpec::tiny("driver-test", 22);
        let small = run_benchmark(
            &spec,
            &DriverConfig {
                scale: 0.1,
                ..DriverConfig::default()
            },
        );
        let large = run_benchmark(
            &spec,
            &DriverConfig {
                scale: 1.0,
                ..DriverConfig::default()
            },
        );
        assert!(large.calls > small.calls);
    }
}
