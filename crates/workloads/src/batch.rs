//! Batched tracker drive: record a workload's instrumentation streams,
//! then replay them through the [`Tracker`] front-end with
//! [`ThreadHandle::run_batch`] doing the bulk of the work.
//!
//! The interpreter delivers call/return events one at a time, which is
//! the right shape for the per-event engine adapters but wastes the
//! batched fast path: every op would pay the slot lock, snapshot refresh
//! and journal gate on its own. This module splits a recorded per-thread
//! stream into *balanced windows* — subsequences whose calls all return
//! within the window — and drives each window with one `run_batch` call.
//! Frames that stay open past the window bound (the deep spine of the
//! call tree) fall back to RAII guards, so arbitrary traces replay
//! exactly.
//!
//! The tracker front-end has no tail-call entry point, so
//! [`run_tracker_batched`] regenerates the benchmark program with
//! `tail_fraction = 0`; PLT calls bind to one target and replay as
//! direct calls.

use std::collections::HashMap;

use dacce::tracker::{BatchOp, ThreadHandle, Tracker};
use dacce::{DacceConfig, DacceStats};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallDispatch, CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{Interpreter, OracleStack, Program, ThreadId};

use crate::driver::{interp_config, DriverConfig};
use crate::genprog::generate_program;
use crate::spec::BenchSpec;

/// One recorded instrumentation op of one thread.
#[derive(Clone, Copy, Debug)]
pub enum TraceOp {
    /// An instrumented call through `site` into `target`.
    Call {
        /// The call site in the caller.
        site: CallSiteId,
        /// The callee entered.
        target: FunctionId,
        /// Whether the site dispatches indirectly (pointer/vtable).
        indirect: bool,
    },
    /// The matching return of the innermost open call.
    Ret,
}

/// One recorded thread: its id, root function and (for spawned threads)
/// the parent thread and spawn site.
#[derive(Clone, Copy, Debug)]
pub struct ThreadStart {
    /// The interpreter's thread id (dense, main = 0).
    pub tid: ThreadId,
    /// The function the thread starts in.
    pub root: FunctionId,
    /// `(parent thread, spawn site)` for spawned threads, `None` for main.
    pub parent: Option<(ThreadId, CallSiteId)>,
}

/// The recorded streams of one interpreter run: per-thread op sequences
/// plus the spawn topology, in thread start order.
#[derive(Debug, Default)]
pub struct WorkloadTrace {
    /// Thread starts in order; parents always precede their children.
    pub threads: Vec<ThreadStart>,
    /// Per-thread recorded op sequences.
    pub traces: HashMap<ThreadId, Vec<TraceOp>>,
}

impl WorkloadTrace {
    /// Total recorded call ops across all threads.
    pub fn calls(&self) -> u64 {
        self.traces
            .values()
            .map(|t| {
                t.iter()
                    .filter(|op| matches!(op, TraceOp::Call { .. }))
                    .count() as u64
            })
            .sum()
    }
}

/// A cost-free [`ContextRuntime`] that records every instrumentation
/// event instead of encoding it.
#[derive(Debug, Default)]
struct TraceRecorder {
    trace: WorkloadTrace,
}

impl ContextRuntime for TraceRecorder {
    fn name(&self) -> &'static str {
        "trace-recorder"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        self.trace.threads.push(ThreadStart { tid, root, parent });
        self.trace.traces.entry(tid).or_default();
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        assert!(
            !ev.tail,
            "tracker replay records must be tail-free (regenerate with tail_fraction = 0)"
        );
        self.trace
            .traces
            .entry(ev.tid)
            .or_default()
            .push(TraceOp::Call {
                site: ev.site,
                target: ev.callee,
                indirect: matches!(ev.dispatch, CallDispatch::Indirect),
            });
        0
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        self.trace
            .traces
            .entry(ev.tid)
            .or_default()
            .push(TraceOp::Ret);
        0
    }

    fn sample(&mut self, _tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        (SampleResult::Unsupported, 0)
    }
}

/// Records the instrumentation streams of `program` under `icfg`.
pub(crate) fn record(program: &Program, icfg: dacce_program::InterpConfig) -> WorkloadTrace {
    let mut rec = TraceRecorder::default();
    let _ = Interpreter::new(program, icfg).run(&mut rec);
    rec.trace
}

/// What a batched replay did and produced.
#[derive(Clone, Debug)]
pub struct TrackerBatchOutcome {
    /// Call ops replayed (batched + guard-driven).
    pub calls: u64,
    /// Ops (calls and returns) that went through `run_batch` windows.
    pub batched_ops: u64,
    /// Ops driven through per-op guards (the deep spine).
    pub guard_ops: u64,
    /// Final tracker statistics.
    pub stats: DacceStats,
}

/// Ops folded into one `run_batch` call; windows whose matching return
/// lies further out than this stay on the guard path.
const BATCH_WINDOW: usize = 64;

/// Replays `trace` against a fresh [`Tracker`] under `config`, driving
/// balanced windows of up to `window` ops through [`ThreadHandle::run_batch`]
/// and the rest through guards. `window = 0` forces the pure guard path
/// (the differential reference).
pub fn replay_with_window(
    trace: &WorkloadTrace,
    config: DacceConfig,
    window: usize,
) -> TrackerBatchOutcome {
    let tracker = Tracker::with_config(config);
    let mut fn_map: HashMap<FunctionId, FunctionId> = HashMap::new();
    let mut site_map: HashMap<CallSiteId, CallSiteId> = HashMap::new();
    let (batched_ops, guard_ops) = replay_onto(&tracker, trace, window, &mut fn_map, &mut site_map);
    tracker
        .check_invariants()
        .expect("flat dispatch must agree with the logical table after replay");
    TrackerBatchOutcome {
        calls: trace.calls(),
        batched_ops,
        guard_ops,
        stats: tracker.stats(),
    }
}

/// Replays `trace` onto an existing `tracker`, registering a fresh handle
/// per recorded thread. The id maps are built lazily as trace ids first
/// appear and can be reused across passes (a second pass finds them fully
/// populated and replays over the warmed encoding). Returns
/// `(batched_ops, guard_ops)`.
pub(crate) fn replay_onto(
    tracker: &Tracker,
    trace: &WorkloadTrace,
    window: usize,
    fn_map: &mut HashMap<FunctionId, FunctionId>,
    site_map: &mut HashMap<CallSiteId, CallSiteId>,
) -> (u64, u64) {
    let mut handles: HashMap<ThreadId, ThreadHandle> = HashMap::new();

    let mut batched_ops = 0u64;
    let mut guard_ops = 0u64;

    for &ThreadStart { tid, root, parent } in &trace.threads {
        let root = *fn_map
            .entry(root)
            .or_insert_with(|| tracker.define_function(&format!("fn{}", root.index())));
        let th = match parent {
            None => tracker.register_thread(root),
            Some((ptid, psite)) => {
                let psite = *site_map
                    .entry(psite)
                    .or_insert_with(|| tracker.define_call_site());
                let parent = handles.get(&ptid).expect("parent registered before child");
                tracker.register_spawned_thread(root, parent, psite)
            }
        };
        // Park the handle first: guards borrow it, and children registered
        // later need their parent's handle to still be reachable.
        handles.insert(tid, th);
        let th = &handles[&tid];
        let ops = &trace.traces[&tid];

        // `match_ret[i]` = index of the Ret closing the Call at `i`
        // (usize::MAX when the trace ends with the frame still open).
        let mut match_ret = vec![usize::MAX; ops.len()];
        let mut open = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                TraceOp::Call { .. } => open.push(i),
                TraceOp::Ret => match_ret[open.pop().expect("return matches a call")] = i,
            }
        }

        let mut buf: Vec<BatchOp> = Vec::with_capacity(window.max(1));
        // Calls queued in `buf` and not yet closed by a queued Ret. A far
        // call or a guard-frame return can only arrive at `buf_depth == 0`
        // (nesting: everything inside a batched window closes within it),
        // so flushing there always hands `run_batch` a balanced sequence.
        let mut buf_depth = 0usize;
        let mut guards = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            match ops[i] {
                TraceOp::Call {
                    site,
                    target,
                    indirect,
                } => {
                    let site = *site_map
                        .entry(site)
                        .or_insert_with(|| tracker.define_call_site());
                    let target = *fn_map.entry(target).or_insert_with(|| {
                        tracker.define_function(&format!("fn{}", target.index()))
                    });
                    let j = match_ret[i];
                    if j != usize::MAX && j - i < window {
                        // The whole window [i, j] is balanced; queue it
                        // op-by-op as the cursor passes (inner frames
                        // close within the window by nesting).
                        buf.push(if indirect {
                            BatchOp::CallIndirect { site, target }
                        } else {
                            BatchOp::Call { site, target }
                        });
                        buf_depth += 1;
                        i += 1;
                    } else {
                        debug_assert_eq!(buf_depth, 0, "far calls only occur between windows");
                        if !buf.is_empty() {
                            batched_ops += buf.len() as u64;
                            th.run_batch(&buf).expect("replay windows are balanced");
                            buf.clear();
                        }
                        guards.push(if indirect {
                            th.call_indirect(site, target)
                        } else {
                            th.call(site, target)
                        });
                        guard_ops += 1;
                        i += 1;
                    }
                }
                TraceOp::Ret => {
                    if buf_depth > 0 {
                        buf.push(BatchOp::Ret);
                        buf_depth -= 1;
                        // A balanced buffer is a complete set of windows;
                        // flush once it is big enough.
                        if buf_depth == 0 && buf.len() >= window.max(1) {
                            batched_ops += buf.len() as u64;
                            th.run_batch(&buf).expect("replay windows are balanced");
                            buf.clear();
                        }
                    } else {
                        // Closes a guard frame; queued (balanced) windows
                        // precede it in program order, so flush them first.
                        if !buf.is_empty() {
                            batched_ops += buf.len() as u64;
                            th.run_batch(&buf).expect("replay windows are balanced");
                            buf.clear();
                        }
                        drop(guards.pop().expect("guard for unbatched return"));
                        guard_ops += 1;
                    }
                    i += 1;
                }
            }
        }
        debug_assert_eq!(buf_depth, 0, "queued windows close within the trace");
        if !buf.is_empty() {
            batched_ops += buf.len() as u64;
            th.run_batch(&buf).expect("replay windows are balanced");
            buf.clear();
        }
        // The interpreter's budget can cut a run mid-stack; unwind what
        // stayed open so the thread finishes clean.
        while let Some(g) = guards.pop() {
            drop(g);
            guard_ops += 1;
        }
    }

    (batched_ops, guard_ops)
}

/// Maps each recorded thread's stream into tracker-id [`BatchOp`]s. The
/// maps must already cover every id in the trace (i.e. a replay pass ran
/// first) — mining operates on the exact op sequences `run_batch` sees.
pub(crate) fn mapped_streams(
    trace: &WorkloadTrace,
    fn_map: &HashMap<FunctionId, FunctionId>,
    site_map: &HashMap<CallSiteId, CallSiteId>,
) -> Vec<Vec<BatchOp>> {
    trace
        .threads
        .iter()
        .map(|start| {
            trace.traces[&start.tid]
                .iter()
                .map(|op| match *op {
                    TraceOp::Call {
                        site,
                        target,
                        indirect,
                    } => {
                        let site = site_map[&site];
                        let target = fn_map[&target];
                        if indirect {
                            BatchOp::CallIndirect { site, target }
                        } else {
                            BatchOp::Call { site, target }
                        }
                    }
                    TraceOp::Ret => BatchOp::Ret,
                })
                .collect()
        })
        .collect()
}

/// Records `spec`'s workload (tail-free variant) and replays it through
/// the batched tracker drive — the workload-scale exercise of
/// [`ThreadHandle::run_batch`].
pub fn run_tracker_batched(spec: &BenchSpec, cfg: &DriverConfig) -> TrackerBatchOutcome {
    let mut spec = spec.clone();
    spec.tail_fraction = 0.0;
    let program = generate_program(&spec);
    let mut icfg = interp_config(&spec, cfg);
    icfg.sample_every = 0;
    icfg.validate = false;
    let trace = record(&program, icfg);
    replay_with_window(&trace, cfg.dacce.clone(), BATCH_WINDOW)
}

/// Outcome of the two-pass superop drive.
#[derive(Clone, Debug)]
pub struct SuperopReplayOutcome {
    /// Candidate windows the miner ranked into the install set.
    pub mined: usize,
    /// Superops that actually compiled into the published table.
    pub installed: usize,
    /// The replay outcome; `stats` covers both passes, superop hit/miss
    /// counters only the second (superops compile between the passes).
    pub outcome: TrackerBatchOutcome,
}

/// Replays `trace` twice on one tracker: a warm pass that discovers sites
/// and gathers sampled hotness, then — after mining balanced windows from
/// the mapped streams and installing the ranked candidates — a second
/// pass in which matching windows execute as memoized superops.
pub fn replay_superops(
    trace: &WorkloadTrace,
    config: DacceConfig,
    window: usize,
) -> SuperopReplayOutcome {
    let max_window = config.superop_max_window.min(window.max(2));
    let max_table = config.superop_max_table;
    let tracker = Tracker::with_config(config);
    let mut fn_map: HashMap<FunctionId, FunctionId> = HashMap::new();
    let mut site_map: HashMap<CallSiteId, CallSiteId> = HashMap::new();
    let _ = replay_onto(&tracker, trace, window, &mut fn_map, &mut site_map);

    let hot = crate::superops::leaf_weights(&tracker.profiler_profile());
    let streams = mapped_streams(trace, &fn_map, &site_map);
    let refs: Vec<&[BatchOp]> = streams.iter().map(Vec::as_slice).collect();
    let candidates = crate::superops::mine_windows(&refs, max_window, max_table, |f| {
        hot.get(&f).copied().unwrap_or(0)
    });
    let mined = candidates.len();
    let installed = tracker.install_superops(&candidates);

    let (batched_ops, guard_ops) = replay_onto(&tracker, trace, window, &mut fn_map, &mut site_map);
    tracker
        .check_invariants()
        .expect("flat dispatch must agree with the logical table after superop replay");
    SuperopReplayOutcome {
        mined,
        installed,
        outcome: TrackerBatchOutcome {
            calls: trace.calls(),
            batched_ops,
            guard_ops,
            stats: tracker.stats(),
        },
    }
}

/// Records `spec`'s workload and runs the two-pass superop drive.
pub fn run_tracker_superops(spec: &BenchSpec, cfg: &DriverConfig) -> SuperopReplayOutcome {
    let mut spec = spec.clone();
    spec.tail_fraction = 0.0;
    let program = generate_program(&spec);
    let mut icfg = interp_config(&spec, cfg);
    icfg.sample_every = 0;
    icfg.validate = false;
    let trace = record(&program, icfg);
    replay_superops(&trace, cfg.dacce.clone(), BATCH_WINDOW)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> DriverConfig {
        DriverConfig {
            scale: 0.1,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn batched_replay_covers_the_workload() {
        let out = run_tracker_batched(&BenchSpec::tiny("batch-test", 7), &smoke_cfg());
        assert!(
            out.calls >= 1_000,
            "tiny spec still runs {} calls",
            out.calls
        );
        assert_eq!(out.stats.calls, out.calls, "every recorded call replays");
        assert_eq!(out.stats.decode_errors, 0);
        assert!(
            out.batched_ops > out.guard_ops,
            "leaf churn must dominate: {} batched vs {} guard ops",
            out.batched_ops,
            out.guard_ops
        );
        assert!(out.stats.reencodes > 0, "adaptivity still kicks in");
    }

    #[test]
    fn superop_drive_hits_and_agrees_with_plain_replay() {
        let spec = BenchSpec::tiny("superop-drive", 13);
        let cfg = smoke_cfg();
        let mut tail_free = spec.clone();
        tail_free.tail_fraction = 0.0;
        let program = generate_program(&tail_free);
        let mut icfg = interp_config(&tail_free, &cfg);
        icfg.sample_every = 0;
        icfg.validate = false;
        let trace = record(&program, icfg);

        let out = replay_superops(&trace, cfg.dacce.clone(), BATCH_WINDOW);
        assert!(out.installed > 0, "repeat-heavy trace compiles superops");
        assert!(out.installed <= out.mined);
        let s = &out.outcome.stats;
        assert!(
            s.superop_hits > 0,
            "second pass must hit compiled superops ({} installed)",
            out.installed
        );
        assert!(s.superop_events >= s.superop_hits * 2, "hits cover windows");
        // Two passes replay every recorded call, whether per-event or
        // folded into superop net effects.
        assert_eq!(s.calls, 2 * trace.calls(), "no call lost to the fold");
        assert_eq!(s.decode_errors, 0);

        // Disabling superops compiles nothing and never probes.
        let mut off_cfg = cfg.dacce.clone();
        off_cfg.superops_enabled = false;
        let off = replay_superops(&trace, off_cfg, BATCH_WINDOW);
        assert_eq!(off.installed, 0);
        assert_eq!(off.outcome.stats.superop_hits, 0);
        assert_eq!(off.outcome.stats.calls, 2 * trace.calls());
    }

    #[test]
    fn batched_and_guard_replays_agree() {
        let spec = BenchSpec::tiny("batch-diff", 11);
        let cfg = smoke_cfg();
        let mut tail_free = spec.clone();
        tail_free.tail_fraction = 0.0;
        let program = generate_program(&tail_free);
        let mut icfg = interp_config(&tail_free, &cfg);
        icfg.sample_every = 0;
        icfg.validate = false;
        let trace = record(&program, icfg);

        let batched = replay_with_window(&trace, cfg.dacce.clone(), BATCH_WINDOW);
        let guarded = replay_with_window(&trace, cfg.dacce.clone(), 0);
        assert_eq!(batched.guard_ops + batched.batched_ops, guarded.guard_ops);
        assert_eq!(batched.stats.calls, guarded.stats.calls);
        // Trigger counters flush per batch rather than per op, so the two
        // drives may re-encode a few events apart — the ccStack traffic
        // must agree up to that slack, not exactly.
        let (a, b) = (batched.stats.ccstack_ops, guarded.stats.ccstack_ops);
        assert!(
            a.abs_diff(b) * 20 <= a.max(b).max(1),
            "ccstack traffic diverged: batched {a} vs guarded {b}"
        );
        assert_eq!(batched.stats.decode_errors, 0);
        assert_eq!(guarded.stats.decode_errors, 0);
    }
}
