//! Deterministic program generation from a [`BenchSpec`].
//!
//! The generated program is assembled from the motifs described in
//! [`crate::spec`]; all randomness comes from the spec's seed, so each
//! benchmark is a fixed program.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dacce_callgraph::FunctionId;
use dacce_program::model::TargetChoice;
use dacce_program::{CalleeSpec, Program, ProgramBuilder};

use crate::spec::BenchSpec;

/// Never-executed probability (statically present call).
const COLD: [f32; 2] = [0.0, 0.0];

/// Generates the synthetic program of `spec`.
pub fn generate_program(spec: &BenchSpec) -> Program {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xdacc_e001);
    let mut b = ProgramBuilder::new();
    let main = b.function("main");

    // ---- hot bush: layered DAG --------------------------------------
    let mut layers: Vec<Vec<FunctionId>> = Vec::new();
    for l in 0..spec.bush_depth {
        let layer: Vec<FunctionId> = (0..spec.bush_width)
            .map(|i| b.function(&format!("bush_l{l}_{i}")))
            .collect();
        layers.push(layer);
    }

    // ---- hot ladder: doubling diamonds ------------------------------
    let mut ladder_heads: Vec<FunctionId> = Vec::new();
    let mut ladder_pairs: Vec<(FunctionId, FunctionId)> = Vec::new();
    for s in 0..=spec.hot_ladder {
        ladder_heads.push(b.function(&format!("ladder_a{s}")));
        if s < spec.hot_ladder {
            ladder_pairs.push((
                b.function(&format!("ladder_l{s}")),
                b.function(&format!("ladder_r{s}")),
            ));
        }
    }
    // Ladder sabotage stages (deepest first — ladder traffic grows
    // exponentially with depth, so deep false back edges hurt PCCE most).
    let sabotaged_stages: Vec<usize> = (0..spec.cold_back_edges)
        .filter(|i| spec.hot_ladder > 2 * (i + 1))
        .map(|i| spec.hot_ladder - 1 - 2 * i)
        .collect();
    for s in 0..spec.hot_ladder {
        let (l, r) = ladder_pairs[s];
        let mut body = b
            .body(ladder_heads[s])
            .work(spec.call_work / 4 + 1)
            .call_p(l, [0.6, 0.6])
            .call_p(r, [0.55, 0.55]);
        if sabotaged_stages.contains(&s) {
            body = body.call_p(ladder_heads[0], COLD);
        }
        body.done();
        b.body(l).work(1).call(ladder_heads[s + 1]).done();
        b.body(r).work(1).call(ladder_heads[s + 1]).done();
    }
    b.body(ladder_heads[spec.hot_ladder])
        .work(spec.call_work / 4 + 1)
        .done();

    // Sabotage pairs (§6.4): `S` is the designated hot callee of the
    // entry-layer function `U`. A never-executed edge `S -> U` closes a
    // static cycle whose whole-graph DFS (entered first through a cold
    // `main -> S` edge) classifies the *hot* edge `U -> S` as a back edge —
    // so PCCE pushes the ccStack on a hot path forever, while DACCE, which
    // only sees invoked edges, keeps it encoded.
    let sabotage: Vec<(FunctionId, FunctionId)> = if spec.bush_depth >= 2 {
        (0..spec.cold_back_edges.min(spec.bush_width))
            .map(|i| {
                let u = layers[0][i];
                let s = layers[1][(i * 3) % spec.bush_width];
                (u, s)
            })
            .collect()
    } else {
        Vec::new()
    };

    // ---- deep recursive chains (long cycles, shallow ccStack) --------
    // Each chain is an independent recursion region. With sabotage
    // enabled, a never-executed edge chain[1] -> chain[0] plus a cold
    // `main -> chain[1]` entry turns the *hot* link chain[0] -> chain[1]
    // into a PCCE back edge, doubling PCCE's ccStack pushes per loop.
    let mut chain_entries: Vec<FunctionId> = Vec::new();
    let mut chain_sabotage_heads: Vec<FunctionId> = Vec::new();
    if spec.deep_chain > 1 {
        let n_chains = spec.chain_count.max(1);
        let len = (spec.deep_chain / n_chains).max(2);
        for c in 0..n_chains {
            let chain: Vec<FunctionId> = (0..len)
                .map(|i| b.function(&format!("chain{c}_{i}")))
                .collect();
            // Every chain function makes a quick helper call; on sabotaged
            // chains a never-executed helper -> chain[0] edge closes a
            // static cycle, so PCCE's whole-graph DFS (entered through a
            // cold `main -> helper` edge) flags every hot
            // `chain[i] -> helper` edge as a back edge: PCCE then pushes
            // the ccStack on a quarter of all chain calls — at transient
            // depth 1, matching the paper's shallow-but-frequent ccStack
            // profile for 483.xalancbmk.
            let helper = b.function(&format!("chain{c}_helper"));
            let sabotage_this = c < spec.cold_back_edges.min(n_chains);
            {
                let mut hb = b.body(helper).work(spec.call_work / 8 + 1);
                if sabotage_this {
                    hb = hb.call_p(chain[0], COLD);
                    chain_sabotage_heads.push(helper);
                }
                hb.done();
            }
            for i in 0..len {
                let mut body = b
                    .body(chain[i])
                    .work(spec.call_work / 8 + 1)
                    .call_p(helper, [0.25, 0.25]);
                if i + 1 < len {
                    body = body.call_p(chain[i + 1], [0.999, 0.999]);
                } else {
                    body = body.call_p(chain[0], [spec.chain_loop_prob, spec.chain_loop_prob]);
                }
                body.done();
            }
            chain_entries.push(chain[0]);
        }
    }

    // ---- recursion motifs -------------------------------------------
    let mut rec_entries: Vec<FunctionId> = Vec::new();
    for i in 0..spec.self_recursion {
        let f = b.function(&format!("self_rec{i}"));
        let leaf = layers
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(main);
        b.body(f)
            .work(spec.call_work / 8 + 1)
            .call_p(leaf, [0.2, 0.2])
            .call_p(f, [spec.recursion_prob, spec.recursion_prob])
            .done();
        rec_entries.push(f);
    }
    for i in 0..spec.mutual_recursion {
        let fa = b.function(&format!("mut_a{i}"));
        let fb = b.function(&format!("mut_b{i}"));
        b.body(fa)
            .work(spec.call_work / 8 + 1)
            .call_p(fb, [spec.recursion_prob, spec.recursion_prob])
            .done();
        b.body(fb)
            .work(spec.call_work / 8 + 1)
            .call_p(fa, [spec.recursion_prob * 0.9, spec.recursion_prob * 0.9])
            .done();
        rec_entries.push(fa);
    }

    // ---- cold structure ----------------------------------------------
    // Cold ladder: statically doubling, never executed.
    let mut cold_entry: Option<FunctionId> = None;
    if spec.cold_ladder > 0 {
        let heads: Vec<FunctionId> = (0..=spec.cold_ladder)
            .map(|s| b.function(&format!("cold_ladder_a{s}")))
            .collect();
        for s in 0..spec.cold_ladder {
            let l = b.function(&format!("cold_ladder_l{s}"));
            let r = b.function(&format!("cold_ladder_r{s}"));
            b.body(heads[s]).call_p(l, COLD).call_p(r, COLD).done();
            b.body(l).call_p(heads[s + 1], COLD).done();
            b.body(r).call_p(heads[s + 1], COLD).done();
        }
        b.body(heads[spec.cold_ladder]).work(1).done();
        cold_entry = Some(heads[0]);
    }
    let cold_fns: Vec<FunctionId> = (0..spec.cold_functions)
        .map(|i| b.function(&format!("cold{i}")))
        .collect();
    for (i, &f) in cold_fns.iter().enumerate() {
        let mut body = b.body(f).work(1);
        // Small cold chains.
        if i + 1 < cold_fns.len() && rng.gen_bool(0.6) {
            body = body.call_p(cold_fns[i + 1], COLD);
        }
        body.done();
    }

    // ---- libraries and PLT -------------------------------------------
    let mut lib_fns: Vec<FunctionId> = Vec::new();
    if spec.lib_functions > 0 {
        let n_libs = 1 + spec.lib_functions / 8;
        let libs: Vec<u32> = (0..n_libs)
            .map(|i| b.library(&format!("libanalog{i}")))
            .collect();
        for i in 0..spec.lib_functions {
            let lib = libs[i % libs.len()];
            lib_fns.push(b.lib_function(lib, &format!("libfn{i}")));
        }
        for (i, &f) in lib_fns.iter().enumerate() {
            let mut body = b.body(f).work(spec.call_work / 4 + 1);
            // Library-internal calls.
            if i + 1 < lib_fns.len() && rng.gen_bool(0.4) {
                let prob = if spec.late_libs {
                    [0.0, 0.5]
                } else {
                    [0.5, 0.5]
                };
                body = body.call_p(lib_fns[i + 1], prob);
            }
            body.done();
        }
    }

    // ---- indirect hubs -------------------------------------------------
    // Tables target next-layer bush functions; false positives point at
    // cold functions.
    let mut tables: Vec<u32> = Vec::new();
    for i in 0..spec.indirect_sites {
        let target_layer = if spec.bush_depth > 1 {
            &layers[1 + (i % (spec.bush_depth - 1))]
        } else {
            &layers[0]
        };
        let mut seen = std::collections::HashSet::new();
        let mut targets = Vec::new();
        for k in 0..spec.indirect_targets {
            let t = target_layer[(i * 7 + k * 3 + k) % target_layer.len()];
            if seen.insert(t) {
                targets.push(t);
            }
        }
        if targets.is_empty() {
            targets.push(main);
        }
        let mut extra = Vec::new();
        for k in 0..spec.pointsto_extra {
            if !cold_fns.is_empty() {
                extra.push(cold_fns[(i * 5 + k) % cold_fns.len()]);
            }
        }
        tables.push(b.table_with_extra(targets, extra));
    }

    // ---- bush bodies -----------------------------------------------------
    let mut indirect_cursor = 0usize;
    let mut plt_cursor = 0usize;
    for l in 0..spec.bush_depth {
        let is_leaf_layer = l + 1 >= spec.bush_depth;
        // Clone the next layer to avoid borrow issues.
        let next: Vec<FunctionId> = if is_leaf_layer {
            Vec::new()
        } else {
            layers[l + 1].clone()
        };
        let layer = layers[l].clone();
        for (fi, &f) in layer.iter().enumerate() {
            let w = (spec.call_work / 2).max(1) + rng.gen_range(0..=spec.call_work.max(1));
            let mut body = b.body(f).work(w);
            if !next.is_empty() {
                // Designated hot callee (phase-shifted when configured).
                let hot0 = next[(fi * 3) % next.len()];
                let hot1 = next[(fi * 3 + 1) % next.len()];
                let (p0, p1) = if spec.phase_shift {
                    (spec.hot_concentration, 0.05)
                } else {
                    (spec.hot_concentration, spec.hot_concentration)
                };
                body = body.call_p(hot0, [p0, p1]);
                if spec.phase_shift {
                    body = body.call_p(hot1, [0.05, spec.hot_concentration]);
                }
                for k in 0..spec.bush_callees.saturating_sub(1) {
                    let t = next[(fi * 5 + k * 11 + 2) % next.len()];
                    let p = 0.08 + rng.gen::<f32>() * 0.12;
                    body = body.call_p(t, [p, p]);
                }
            }
            // Indirect sites distributed over inner layers.
            if !tables.is_empty() && indirect_cursor < spec.indirect_sites && (fi + l) % 3 == 0 {
                let table = tables[indirect_cursor % tables.len()];
                indirect_cursor += 1;
                body = body.indirect(
                    table,
                    TargetChoice::Skewed {
                        hot: spec.indirect_hot,
                    },
                    [0.5, 0.5],
                    1,
                );
            }
            // PLT sites; with `late_libs` the library only starts being
            // called in phase 1 (a plugin dlopen'ed mid-run).
            if !lib_fns.is_empty() && plt_cursor < spec.plt_sites && (fi + l) % 4 == 1 {
                let t = lib_fns[(plt_cursor * 13) % lib_fns.len()];
                plt_cursor += 1;
                let prob = if spec.late_libs {
                    [0.0, 0.4]
                } else {
                    [0.4, 0.4]
                };
                body = body.plt(t, prob, 1);
            }
            // Sabotage back-edges: S -> U, never executed.
            for &(u, s_fn) in &sabotage {
                if s_fn == f {
                    body = body.call_p(u, COLD);
                }
            }
            // Cold calls into the never-executed world.
            for k in 0..spec.cold_callees {
                if !cold_fns.is_empty() {
                    let t = cold_fns[(fi * 17 + k * 7 + l) % cold_fns.len()];
                    body = body.call_p(t, COLD);
                } else if let Some(ce) = cold_entry {
                    body = body.call_p(ce, COLD);
                }
            }
            // Recursion entries from mid-bush.
            if !rec_entries.is_empty() && l == spec.bush_depth / 2 && fi < rec_entries.len() {
                body = body.call_p(rec_entries[fi], [0.3, 0.3]);
            }
            // Tail calls as the final op of a fraction of functions.
            if !next.is_empty() && (fi as f32 + 0.5) / layer.len() as f32 <= spec.tail_fraction {
                let t = next[(fi * 7 + 3) % next.len()];
                body = body.tail(t, [0.35, 0.35]);
            }
            body.done();
        }
    }

    // ---- workers (PARSEC analogs) ------------------------------------
    let mut workers: Vec<FunctionId> = Vec::new();
    for i in 0..spec.threads.saturating_sub(1) {
        let w = b.function(&format!("worker{i}"));
        let entry = layers[0][(i * 3) % layers[0].len()];
        b.body(w)
            .work(spec.call_work / 2 + 1)
            .call_rep(entry, [0.9, 0.9], 6)
            .done();
        workers.push(w);
    }

    // ---- main ------------------------------------------------------------
    {
        let mut body = b.body(main).work(spec.call_work.max(1));
        // The sabotage entries come first so that PCCE's whole-graph DFS
        // reaches each sabotaged function before its hot caller.
        for &s in &sabotaged_stages {
            body = body.call_p(ladder_heads[s], COLD);
        }
        for &(_, s_fn) in &sabotage {
            body = body.call_p(s_fn, COLD);
        }
        for &h in &chain_sabotage_heads {
            body = body.call_p(h, COLD);
        }
        for &w in &workers {
            body = body.push_call(CalleeSpec::Spawn(w), [0.25, 0.25], 1, false);
        }
        // Hot entries into the first bush layer.
        for (i, &f) in layers[0].iter().enumerate() {
            let p = if i == 0 {
                0.95
            } else {
                0.15 + 0.5 / (i as f32 + 1.0)
            };
            body = body.call_p(f, [p, p]);
        }
        if spec.hot_ladder > 0 {
            body = body.call_p(ladder_heads[0], [0.45, 0.45]);
        }
        for &c in &chain_entries {
            let p = 0.5 / chain_entries.len() as f32;
            body = body.call_p(c, [p, p]);
        }
        for (i, &r) in rec_entries.iter().enumerate() {
            if i % 2 == 0 {
                body = body.call_p(r, [0.25, 0.25]);
            }
        }
        if let Some(ce) = cold_entry {
            body = body.call_p(ce, COLD);
        }
        body.done();
    }

    b.build(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::interp::{InterpConfig, Interpreter};
    use dacce_program::runtime::NullRuntime;
    use dacce_program::Op;

    #[test]
    fn tiny_spec_generates_valid_program() {
        let spec = BenchSpec::tiny("gen-test", 7);
        let p = generate_program(&spec);
        assert_eq!(p.validate(), Ok(()));
        assert!(p.function_count() > 20);
        assert!(p.tables.len() == spec.indirect_sites);
        assert!(!p.libs.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = BenchSpec::tiny("gen-test", 7);
        let p1 = generate_program(&spec);
        let p2 = generate_program(&spec);
        assert_eq!(p1.function_count(), p2.function_count());
        assert_eq!(p1.site_count, p2.site_count);
        let ops1: Vec<_> = p1.call_ops().map(|(f, c)| (f, c.site)).collect();
        let ops2: Vec<_> = p2.call_ops().map(|(f, c)| (f, c.site)).collect();
        assert_eq!(ops1, ops2);
    }

    #[test]
    fn cold_code_never_executes() {
        let spec = BenchSpec::tiny("gen-test", 11);
        let p = generate_program(&spec);
        // All cold ops have probability 0 in both phases.
        let cold_names: Vec<usize> = p
            .functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.starts_with("cold"))
            .map(|(i, _)| i)
            .collect();
        assert!(!cold_names.is_empty());
        for (_, op) in p.call_ops() {
            if let CalleeSpec::Direct(t) = op.callee {
                if p.name(t).starts_with("cold") {
                    assert_eq!(op.prob, [0.0, 0.0], "cold edge must never fire");
                }
            }
        }
    }

    #[test]
    fn generated_program_runs_under_interpreter() {
        let spec = BenchSpec::tiny("gen-test", 3);
        let p = generate_program(&spec);
        let cfg = InterpConfig {
            budget_calls: 5_000,
            max_depth: spec.max_depth,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert_eq!(report.calls, 5_000);
        assert!(report.base_cost > 0);
    }

    #[test]
    fn tail_fraction_produces_tail_ops() {
        let mut spec = BenchSpec::tiny("gen-test", 5);
        spec.tail_fraction = 0.5;
        spec.bush_width = 8;
        let p = generate_program(&spec);
        let tails = p
            .functions
            .iter()
            .flat_map(|f| &f.body)
            .filter(|op| matches!(op, Op::Call(c) if c.tail))
            .count();
        assert!(tails >= 4, "expected tail ops, got {tails}");
    }
}
