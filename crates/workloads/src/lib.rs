//! Synthetic benchmark suite and experiment driver.
//!
//! The paper evaluates DACCE on SPEC CPU2006 (ref inputs) and PARSEC 2.1
//! (native inputs). Those binaries cannot be reproduced in a Rust library,
//! so this crate generates *analog* workloads: synthetic programs whose
//! call-graph structure and dynamic behaviour are parameterised per
//! benchmark to reproduce the relative characteristics of Table 1 — graph
//! sizes, encoding-space demands (including PCCE overflow on the
//! `perlbench`/`gcc` analogs), ccStack traffic from recursion and indirect
//! calls, call density, tail calls, lazily loaded libraries, phase changes
//! and threading (PARSEC).
//!
//! * [`spec::BenchSpec`] — the per-benchmark parameter set, built from
//!   composable structural motifs;
//! * [`genprog`] — deterministic program generation from a spec;
//! * [`suite`] — the 29 SPEC CPU2006 analog specs and 12 PARSEC 2.1 analog
//!   specs;
//! * [`driver`] — runs profiling/PCCE/DACCE (and the related-work
//!   baselines) over a spec and collects everything the tables and figures
//!   need.

pub mod batch;
pub mod chaos;
pub mod characterize;
pub mod driver;
pub mod families;
pub mod genprog;
pub mod journal;
pub mod spec;
pub mod suite;
pub mod superops;

pub use batch::{
    replay_superops, replay_with_window, run_tracker_batched, run_tracker_superops,
    SuperopReplayOutcome, TrackerBatchOutcome, WorkloadTrace,
};
pub use chaos::{
    chaos_trace, replay_sampled, replay_sampled_superops, run_all_presets, run_chaos_plan,
    ChaosOutcome, ChaosReplay,
};
pub use characterize::{characterize, ProgramShape};
pub use driver::{
    interp_config, program_of, run_benchmark, run_dacce_only, run_dacce_runtime, run_dacce_warm,
    run_with, BenchOutcome, DriverConfig,
};
pub use families::{family_names, family_trace, family_traces};
pub use genprog::generate_program;
pub use journal::{balanced_boundaries, record_journal, RecordedRun};
pub use spec::{BenchSpec, Suite};
pub use suite::{all_benchmarks, parsec_benchmarks, spec2006_benchmarks};
pub use superops::{leaf_weights, mine_windows};
