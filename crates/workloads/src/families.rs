//! Production-shaped workload families.
//!
//! The SPEC/PARSEC analog suite reproduces the paper's Table 1 shapes;
//! these three families cover the server-side shapes fleet replay sees
//! that the suite lacks:
//!
//! * `server-rr` — request/response server traces: a shallow accept loop
//!   repeating many requests, each fanning out through a deep routing
//!   prologue into one of many endpoint subtrees with hot shared leaves
//!   and an occasional deep backend excursion.
//! * `thread-churn` — a thousand short-lived threads (scaled), each
//!   running a small call tree with a burst of direct recursion before
//!   exiting; stresses spawn-context chaining and per-thread encoding
//!   state churn.
//! * `dyndispatch` — dynamic-dispatch-heavy traces whose indirect target
//!   sets grow without bound over the trace (the PyCG/NoCFG-style
//!   approximate-call-graph shape): a few megamorphic sites keep
//!   discovering new callees until the end of the run.
//!
//! Families generate [`WorkloadTrace`]s directly (no interpreter pass),
//! so they run under every chaos preset via
//! [`crate::chaos::replay_sampled`] / [`crate::chaos::run_chaos_plan`]
//! and record into decode journals via [`crate::journal::record_journal`]
//! exactly like suite traces. Everything is a pure function of
//! `(name, seed, scale)`.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::ThreadId;

use crate::batch::{ThreadStart, TraceOp, WorkloadTrace};

/// The family names, in canonical order.
#[must_use]
pub fn family_names() -> &'static [&'static str] {
    &["server-rr", "thread-churn", "dyndispatch"]
}

/// Generates the named family trace. `None` for unknown names.
#[must_use]
pub fn family_trace(name: &str, seed: u64, scale: f64) -> Option<WorkloadTrace> {
    match name {
        "server-rr" => Some(server_trace(seed, scale)),
        "thread-churn" => Some(thread_churn_trace(seed, scale)),
        "dyndispatch" => Some(dyndispatch_trace(seed, scale)),
        _ => None,
    }
}

/// All three family traces, named.
#[must_use]
pub fn family_traces(seed: u64, scale: f64) -> Vec<(&'static str, WorkloadTrace)> {
    family_names()
        .iter()
        .map(|&n| (n, family_trace(n, seed, scale).expect("known family")))
        .collect()
}

fn scaled(base: f64, scale: f64, min: usize) -> usize {
    ((base * scale) as usize).max(min)
}

/// Sentinel target key for indirect (megamorphic) sites: an indirect
/// site keeps its identity across targets, a direct site is pinned to
/// one static callee.
const MEGA: u32 = u32::MAX;

/// Allocates [`CallSiteId`]s honouring the runtime's static-site rules:
/// every site belongs to exactly one caller function, and a direct site
/// has exactly one target. Slots are the "source locations" inside a
/// caller; the allocator interns `(caller, slot, target-or-MEGA)`.
#[derive(Default)]
struct SiteAlloc {
    next: u32,
    map: HashMap<(u32, u32, u32), u32>,
}

impl SiteAlloc {
    fn site(&mut self, caller: u32, slot: u32, key: u32) -> u32 {
        let next = &mut self.next;
        *self.map.entry((caller, slot, key)).or_insert_with(|| {
            let s = *next;
            *next += 1;
            s
        })
    }
}

struct Ops<'a> {
    recorded: Vec<TraceOp>,
    stack: Vec<u32>,
    alloc: &'a mut SiteAlloc,
}

impl<'a> Ops<'a> {
    fn new(alloc: &'a mut SiteAlloc, root: u32) -> Self {
        Ops {
            recorded: Vec::new(),
            stack: vec![root],
            alloc,
        }
    }

    fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    fn call(&mut self, slot: u32, target: u32) {
        let caller = *self.stack.last().expect("root stays on the stack");
        let site = self.alloc.site(caller, slot, target);
        self.recorded.push(TraceOp::Call {
            site: CallSiteId::new(site),
            target: FunctionId::new(target),
            indirect: false,
        });
        self.stack.push(target);
    }

    fn icall(&mut self, slot: u32, target: u32) {
        let caller = *self.stack.last().expect("root stays on the stack");
        let site = self.alloc.site(caller, slot, MEGA);
        self.recorded.push(TraceOp::Call {
            site: CallSiteId::new(site),
            target: FunctionId::new(target),
            indirect: true,
        });
        self.stack.push(target);
    }

    fn ret(&mut self) {
        assert!(self.depth() > 0, "unbalanced family trace");
        self.recorded.push(TraceOp::Ret);
        self.stack.pop();
    }

    fn ret_to(&mut self, depth: usize) {
        while self.depth() > depth {
            self.ret();
        }
    }

    fn finish(mut self) -> Vec<TraceOp> {
        self.ret_to(0);
        self.recorded
    }
}

/// Request/response server: shallow repeat at the accept loop, deep
/// fan-out per request.
#[must_use]
pub fn server_trace(seed: u64, scale: f64) -> WorkloadTrace {
    const WORKERS: u32 = 4;
    let requests = scaled(400.0, scale, 6);
    let mut alloc = SiteAlloc::default();
    let mut trace = WorkloadTrace::default();
    trace.threads.push(ThreadStart {
        tid: ThreadId::MAIN,
        root: FunctionId::new(0),
        parent: None,
    });

    // The accept loop: one shallow dispatch pair per request handed out.
    let mut main = Ops::new(&mut alloc, 0);
    for _ in 0..requests {
        main.call(0, 1); // accept
        main.call(1, 2); // enqueue
        main.ret_to(0);
    }
    trace.traces.insert(ThreadId::MAIN, main.finish());

    for w in 0..WORKERS {
        let tid = ThreadId::new(w + 1);
        let spawn_site = alloc.site(0, 900 + w, MEGA);
        trace.threads.push(ThreadStart {
            tid,
            root: FunctionId::new(3),
            parent: Some((ThreadId::MAIN, CallSiteId::new(spawn_site))),
        });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e7e_5e7e ^ u64::from(w));
        let mut ops = Ops::new(&mut alloc, 3);
        for r in 0..requests {
            // Deep routing prologue: the same 12-frame chain every time
            // (hot, encodes tightly after adaptation).
            for d in 0..12u32 {
                ops.call(10 + d, 10 + d);
            }
            // Endpoint fan-out, skewed to a hot head.
            let x: f64 = rng.gen();
            let e = (x * x * 24.0) as u32;
            ops.call(40 + e, 40 + e);
            for k in 0..6u32 {
                // Shared leaf helpers: many callers, few callees.
                ops.call(70 + ((e + k) % 10), 64 + (k % 8));
                ops.ret();
            }
            // Occasional deep backend excursion with direct recursion.
            if r % 16 == 5 {
                for d in 0..20u32 {
                    ops.call(84 + (d % 4), 85 + (d % 5));
                }
            }
            ops.ret_to(0);
        }
        trace.traces.insert(tid, ops.finish());
    }
    trace
}

/// Thread churn: many short-lived threads, each a small tree plus a
/// recursion burst.
#[must_use]
pub fn thread_churn_trace(seed: u64, scale: f64) -> WorkloadTrace {
    let children = scaled(1000.0, scale, 8);
    let mut alloc = SiteAlloc::default();
    let mut trace = WorkloadTrace::default();
    trace.threads.push(ThreadStart {
        tid: ThreadId::MAIN,
        root: FunctionId::new(0),
        parent: None,
    });

    // The spawner: a dispatch pair per child so the main context moves.
    let mut main = Ops::new(&mut alloc, 0);
    for c in 0..children {
        main.call(0, 1);
        main.call(1 + (c % 3) as u32, 2 + (c % 3) as u32);
        main.ret_to(0);
    }
    trace.traces.insert(ThreadId::MAIN, main.finish());

    for c in 0..children {
        let tid = ThreadId::new(c as u32 + 1);
        let root = 30 + (c % 5) as u32;
        let spawn_site = alloc.site(0, 920 + (c % 8) as u32, MEGA);
        trace.threads.push(ThreadStart {
            tid,
            root: FunctionId::new(root),
            parent: Some((ThreadId::MAIN, CallSiteId::new(spawn_site))),
        });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc41c_41c4 ^ c as u64);
        let mut ops = Ops::new(&mut alloc, root);
        // A small per-thread tree, shape drawn per thread.
        let width = rng.gen_range(2..5u32);
        for b in 0..width {
            ops.call(40 + b, 40 + rng.gen_range(0..6u32));
            for d in 0..rng.gen_range(1..4u32) {
                ops.call(50 + d, 46 + d);
            }
            ops.ret_to(0);
        }
        // Recursion burst: repeated self edge, drives ccStack compression.
        let reps = rng.gen_range(3..9u32);
        for _ in 0..reps {
            ops.call(60, 60);
        }
        ops.ret_to(0);
        trace.traces.insert(tid, ops.finish());
    }
    trace
}

/// Dynamic-dispatch-heavy: a few indirect sites whose target sets grow
/// without bound over the trace.
#[must_use]
pub fn dyndispatch_trace(seed: u64, scale: f64) -> WorkloadTrace {
    const THREADS: u32 = 2;
    let iters = scaled(1200.0, scale, 16);
    let mut alloc = SiteAlloc::default();
    let mut trace = WorkloadTrace::default();
    trace.threads.push(ThreadStart {
        tid: ThreadId::MAIN,
        root: FunctionId::new(0),
        parent: None,
    });
    let mut main = Ops::new(&mut alloc, 0);
    for _ in 0..iters / 4 {
        main.call(0, 1);
        main.ret();
    }
    trace.traces.insert(ThreadId::MAIN, main.finish());

    for t in 0..THREADS {
        let tid = ThreadId::new(t + 1);
        let spawn_site = alloc.site(0, 940 + t, MEGA);
        trace.threads.push(ThreadStart {
            tid,
            root: FunctionId::new(2),
            parent: Some((ThreadId::MAIN, CallSiteId::new(spawn_site))),
        });
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xd15b_a7c4 ^ u64::from(t));
        let mut ops = Ops::new(&mut alloc, 2);
        for i in 0..iters {
            ops.call(30, 3); // dispatcher glue
                             // The target pool grows with the trace: unbounded set, hot
                             // head, ever-fresh tail.
            let pool = 4 + (i / 8) as u32;
            let pick = |rng: &mut SmallRng| -> u32 {
                if rng.gen_bool(0.7) {
                    rng.gen_range(0..4.min(pool))
                } else {
                    rng.gen_range(0..pool)
                }
            };
            let target = 100 + pick(&mut rng);
            ops.icall(31 + (i % 4) as u32, target);
            // Second-level dispatch from inside the callee.
            let inner = 100 + pick(&mut rng);
            ops.icall(35 + (i % 2) as u32, inner);
            ops.ret_to(0);
        }
        trace.traces.insert(tid, ops.finish());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{replay_sampled, run_chaos_plan};
    use dacce::{DacceConfig, FaultPlan};

    #[test]
    fn families_are_balanced_and_deterministic() {
        for (name, trace) in family_traces(7, 0.02) {
            for (tid, ops) in &trace.traces {
                let mut depth = 0i64;
                for op in ops {
                    match op {
                        TraceOp::Call { .. } => depth += 1,
                        TraceOp::Ret => depth -= 1,
                    }
                    assert!(depth >= 0, "{name} {tid}: underflow");
                }
                assert_eq!(depth, 0, "{name} {tid}: unbalanced");
            }
            let again = family_trace(name, 7, 0.02).unwrap();
            for start in &trace.threads {
                assert_eq!(
                    format!("{:?}", again.traces[&start.tid]),
                    format!("{:?}", trace.traces[&start.tid]),
                    "{name} {}: regeneration must be deterministic",
                    start.tid
                );
            }
            assert!(trace.calls() > 0);
        }
        assert!(family_trace("no-such-family", 1, 1.0).is_none());
    }

    #[test]
    fn thread_churn_scales_to_a_thousand_threads() {
        let trace = thread_churn_trace(3, 1.0);
        assert_eq!(trace.threads.len(), 1001);
        let small = thread_churn_trace(3, 0.01);
        assert!(small.threads.len() >= 9);
    }

    #[test]
    fn dyndispatch_target_set_is_unbounded() {
        let trace = dyndispatch_trace(5, 0.5);
        let mut targets = std::collections::HashSet::new();
        for ops in trace.traces.values() {
            for op in ops {
                if let TraceOp::Call {
                    indirect: true,
                    target,
                    ..
                } = op
                {
                    targets.insert(*target);
                }
            }
        }
        assert!(
            targets.len() > 40,
            "target set must keep growing, got {}",
            targets.len()
        );
    }

    #[test]
    fn families_replay_cleanly() {
        for (name, trace) in family_traces(11, 0.02) {
            let replay = replay_sampled(&trace, DacceConfig::default());
            assert_eq!(replay.decode_failures, 0, "{name}");
            assert_eq!(replay.invariant_error, None, "{name}");
        }
    }

    #[test]
    fn families_survive_a_chaos_preset() {
        let base = DacceConfig {
            edge_threshold: 4,
            min_events_between_reencodes: 32,
            ..DacceConfig::default()
        };
        let trace = server_trace(17, 0.02);
        let out = run_chaos_plan(
            &trace,
            &base,
            "maxid-exhaustion",
            FaultPlan::preset("maxid-exhaustion").unwrap(),
        );
        assert!(out.sound(), "server-rr diverged under faults: {out:?}");
    }
}
