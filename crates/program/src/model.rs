//! The synthetic program model.
//!
//! A [`Program`] is a closed world of functions (the main executable plus
//! any number of lazily loaded [`SharedLibrary`]s), indirect-call target
//! tables, and a designated `main`. Function bodies are flat op lists; each
//! call op carries a per-phase execution probability so that workloads can
//! shift their hot paths mid-run — the behaviour that exercises DACCE's
//! adaptive re-encoding.

use dacce_callgraph::{CallSiteId, FunctionId};

/// Identifies one simulated thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from its dense index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw dense index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` suitable for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How an indirect call site picks its runtime target from its table.
#[derive(Clone, Debug, PartialEq)]
pub enum TargetChoice {
    /// Every table entry is equally likely.
    Uniform,
    /// Entry 0 is taken with probability `hot`, the rest uniformly share the
    /// remainder. Models virtual-call sites with a dominant receiver type.
    Skewed {
        /// Probability of the dominant (first) target.
        hot: f32,
    },
}

/// One indirect-call target table (a function-pointer "type class").
///
/// `targets` are the functions actually invocable at runtime; `pointsto_extra`
/// are additional candidates that a conservative points-to analysis would
/// report (§2.2, Issue 1) — the PCCE baseline must encode and compare against
/// them, DACCE never sees them.
#[derive(Clone, Debug, Default)]
pub struct IndirectTable {
    /// Functions the site can really call.
    pub targets: Vec<FunctionId>,
    /// False-positive candidates reported by static points-to analysis.
    pub pointsto_extra: Vec<FunctionId>,
}

/// What a call op invokes.
#[derive(Clone, Debug, PartialEq)]
pub enum CalleeSpec {
    /// A direct call to a statically known function.
    Direct(FunctionId),
    /// An indirect call through table `table`.
    Indirect {
        /// Index into [`Program::tables`].
        table: u32,
        /// Runtime target distribution.
        choice: TargetChoice,
    },
    /// A lazily bound call through the PLT to a shared-library function.
    Plt(FunctionId),
    /// Thread creation: run `FunctionId` on a new thread.
    Spawn(FunctionId),
}

/// A call operation inside a function body.
#[derive(Clone, Debug, PartialEq)]
pub struct CallOp {
    /// The static call site (unique across the program).
    pub site: CallSiteId,
    /// Target specification.
    pub callee: CalleeSpec,
    /// Probability that the op executes when reached, per phase.
    pub prob: [f32; 2],
    /// Number of times the op is attempted per body execution.
    pub repeat: u16,
    /// Whether the call is a tail call: the caller's frame is replaced and
    /// the callee returns directly to the caller's caller (§5.2).
    pub tail: bool,
}

/// One operation in a function body.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Plain application work costing the given base units.
    Work(u32),
    /// A (possibly repeated, possibly skipped) call.
    Call(CallOp),
}

/// A function of the program.
#[derive(Clone, Debug, Default)]
pub struct Function {
    /// Human-readable name, used in reports and DOT dumps.
    pub name: String,
    /// Index of the shared library this function lives in, or `None` for the
    /// main executable.
    pub lib: Option<u32>,
    /// The body, executed front to back.
    pub body: Vec<Op>,
}

/// A lazily loaded shared library (§5.1). The library "loads" the first time
/// one of its functions is invoked through the PLT.
#[derive(Clone, Debug, Default)]
pub struct SharedLibrary {
    /// Library name (e.g. `libm-analog`).
    pub name: String,
    /// Functions exported by the library.
    pub functions: Vec<FunctionId>,
}

/// A complete synthetic program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All functions; `FunctionId` indexes this vector.
    pub functions: Vec<Function>,
    /// All indirect-call target tables.
    pub tables: Vec<IndirectTable>,
    /// All shared libraries.
    pub libs: Vec<SharedLibrary>,
    /// The entry function.
    pub main: FunctionId,
    /// Total number of call sites allocated (sites are dense `0..site_count`).
    pub site_count: u32,
}

impl Program {
    /// The function data for `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a function of this program.
    pub fn function(&self, f: FunctionId) -> &Function {
        &self.functions[f.index()]
    }

    /// The name of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a function of this program.
    pub fn name(&self, f: FunctionId) -> &str {
        &self.functions[f.index()].name
    }

    /// Number of functions (main executable plus libraries).
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Iterates all call ops of the program with their containing function.
    pub fn call_ops(&self) -> impl Iterator<Item = (FunctionId, &CallOp)> {
        self.functions.iter().enumerate().flat_map(|(i, f)| {
            f.body.iter().filter_map(move |op| match op {
                Op::Call(c) => Some((FunctionId::new(i as u32), c)),
                Op::Work(_) => None,
            })
        })
    }

    /// Returns the set of functions whose body contains at least one tail
    /// call op — the functions whose *callers* need `TcStack` wrapping.
    pub fn functions_with_tail_calls(&self) -> Vec<FunctionId> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.iter().any(|op| matches!(op, Op::Call(c) if c.tail)))
            .map(|(i, _)| FunctionId::new(i as u32))
            .collect()
    }

    /// Checks basic structural invariants; returns a description of the
    /// first violation found.
    ///
    /// Validated properties: `main` exists, every referenced function /
    /// table / library index is in range, tail calls are the last op of
    /// their body, spawn targets are not tail calls, tables are non-empty,
    /// and probabilities are within `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.main.index() >= self.functions.len() {
            return Err(format!("main {:?} out of range", self.main));
        }
        for (fi, func) in self.functions.iter().enumerate() {
            if let Some(lib) = func.lib {
                if lib as usize >= self.libs.len() {
                    return Err(format!("{}: library index {lib} out of range", func.name));
                }
            }
            let last_call_pos = func.body.iter().rposition(|op| matches!(op, Op::Call(_)));
            for (oi, op) in func.body.iter().enumerate() {
                let Op::Call(c) = op else { continue };
                if c.site.index() >= self.site_count as usize {
                    return Err(format!("{}: site {:?} out of range", func.name, c.site));
                }
                for p in c.prob {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("{}: probability {p} out of range", func.name));
                    }
                }
                if c.tail {
                    if Some(oi) != last_call_pos {
                        return Err(format!(
                            "{}: tail call {:?} is not the last call op",
                            func.name, c.site
                        ));
                    }
                    if matches!(c.callee, CalleeSpec::Spawn(_)) {
                        return Err(format!("{}: spawn cannot be a tail call", func.name));
                    }
                }
                match &c.callee {
                    CalleeSpec::Direct(t) | CalleeSpec::Spawn(t) => {
                        if t.index() >= self.functions.len() {
                            return Err(format!("{}: target {t:?} out of range", func.name));
                        }
                    }
                    CalleeSpec::Plt(t) => {
                        if t.index() >= self.functions.len() {
                            return Err(format!("{}: PLT target {t:?} out of range", func.name));
                        }
                        if self.functions[t.index()].lib.is_none() {
                            return Err(format!(
                                "{}: PLT target {t:?} is not a library function",
                                func.name
                            ));
                        }
                    }
                    CalleeSpec::Indirect { table, .. } => {
                        let Some(t) = self.tables.get(*table as usize) else {
                            return Err(format!("{}: table {table} out of range", func.name));
                        };
                        if t.targets.is_empty() {
                            return Err(format!("{}: table {table} has no targets", func.name));
                        }
                        for &g in t.targets.iter().chain(&t.pointsto_extra) {
                            if g.index() >= self.functions.len() {
                                return Err(format!(
                                    "{}: table {table} target {g:?} out of range",
                                    func.name
                                ));
                            }
                        }
                    }
                }
            }
            let _ = fi;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn call(site: u32, callee: CalleeSpec) -> Op {
        Op::Call(CallOp {
            site: s(site),
            callee,
            prob: [1.0, 1.0],
            repeat: 1,
            tail: false,
        })
    }

    fn two_function_program() -> Program {
        Program {
            functions: vec![
                Function {
                    name: "main".into(),
                    lib: None,
                    body: vec![Op::Work(5), call(0, CalleeSpec::Direct(f(1)))],
                },
                Function {
                    name: "leaf".into(),
                    lib: None,
                    body: vec![Op::Work(1)],
                },
            ],
            tables: vec![],
            libs: vec![],
            main: f(0),
            site_count: 1,
        }
    }

    #[test]
    fn valid_program_passes_validation() {
        assert_eq!(two_function_program().validate(), Ok(()));
    }

    #[test]
    fn thread_id_basics() {
        assert_eq!(ThreadId::MAIN.raw(), 0);
        assert_eq!(ThreadId::new(3).index(), 3);
        assert_eq!(ThreadId::new(3).to_string(), "t3");
    }

    #[test]
    fn call_ops_iterates_calls_with_owner() {
        let p = two_function_program();
        let ops: Vec<(FunctionId, CallSiteId)> =
            p.call_ops().map(|(owner, c)| (owner, c.site)).collect();
        assert_eq!(ops, vec![(f(0), s(0))]);
    }

    #[test]
    fn functions_with_tail_calls_finds_only_tail_bodies() {
        let mut p = two_function_program();
        p.functions[1].body = vec![Op::Call(CallOp {
            site: s(0),
            callee: CalleeSpec::Direct(f(0)),
            prob: [0.1, 0.1],
            repeat: 1,
            tail: true,
        })];
        assert_eq!(p.functions_with_tail_calls(), vec![f(1)]);
    }

    #[test]
    fn validate_rejects_out_of_range_main() {
        let mut p = two_function_program();
        p.main = f(9);
        assert!(p.validate().unwrap_err().contains("main"));
    }

    #[test]
    fn validate_rejects_out_of_range_site() {
        let mut p = two_function_program();
        p.site_count = 0;
        assert!(p.validate().unwrap_err().contains("site"));
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut p = two_function_program();
        if let Op::Call(c) = &mut p.functions[0].body[1] {
            c.prob = [1.5, 0.0];
        }
        assert!(p.validate().unwrap_err().contains("probability"));
    }

    #[test]
    fn validate_rejects_non_final_tail_call() {
        let mut p = two_function_program();
        p.functions[0].body = vec![
            Op::Call(CallOp {
                site: s(0),
                callee: CalleeSpec::Direct(f(1)),
                prob: [1.0, 1.0],
                repeat: 1,
                tail: true,
            }),
            call(0, CalleeSpec::Direct(f(1))),
        ];
        assert!(p.validate().unwrap_err().contains("tail call"));
    }

    #[test]
    fn validate_rejects_empty_indirect_table() {
        let mut p = two_function_program();
        p.tables.push(IndirectTable::default());
        p.functions[0].body.push(call(
            0,
            CalleeSpec::Indirect {
                table: 0,
                choice: TargetChoice::Uniform,
            },
        ));
        assert!(p.validate().unwrap_err().contains("no targets"));
    }

    #[test]
    fn validate_rejects_plt_to_non_library_function() {
        let mut p = two_function_program();
        p.functions[0].body.push(call(0, CalleeSpec::Plt(f(1))));
        assert!(p.validate().unwrap_err().contains("not a library function"));
    }

    #[test]
    fn validate_rejects_spawn_tail_call() {
        let mut p = two_function_program();
        p.functions[0].body = vec![Op::Call(CallOp {
            site: s(0),
            callee: CalleeSpec::Spawn(f(1)),
            prob: [1.0, 1.0],
            repeat: 1,
            tail: true,
        })];
        assert!(p.validate().unwrap_err().contains("spawn"));
    }

    #[test]
    fn validate_accepts_library_plt_call() {
        let mut p = two_function_program();
        p.libs.push(SharedLibrary {
            name: "libx".into(),
            functions: vec![f(2)],
        });
        p.functions.push(Function {
            name: "lib_fn".into(),
            lib: Some(0),
            body: vec![Op::Work(1)],
        });
        p.functions[0].body.push(call(0, CalleeSpec::Plt(f(2))));
        assert_eq!(p.validate(), Ok(()));
    }
}
