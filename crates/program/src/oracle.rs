//! The logical calling-context oracle.
//!
//! The interpreter maintains, per thread, the ground-truth calling context:
//! the chain of call sites taken from the thread's root function to the
//! current function. Tail calls *extend* the logical context even though
//! they replace the physical frame (the paper decodes `A C D F` for a path
//! through the tail call `C -> D`, Figure 7), so one physical frame can
//! account for several logical steps; returning from a physical frame pops
//! all of them at once.
//!
//! Oracle paths are what the paper obtains by walking the stack with
//! libpfm4 samples; every runtime's decoded context is validated against
//! them.

use dacce_callgraph::{CallSiteId, FunctionId};

/// One step of a calling context: function `func` was entered from call site
/// `site` (or is the thread root when `site` is `None`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathStep {
    /// The call site in the caller, `None` for the root frame.
    pub site: Option<CallSiteId>,
    /// The function entered.
    pub func: FunctionId,
}

/// A full calling context, root first.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ContextPath(pub Vec<PathStep>);

impl ContextPath {
    /// The context consisting only of the root function.
    pub fn root(func: FunctionId) -> Self {
        ContextPath(vec![PathStep { site: None, func }])
    }

    /// Number of steps (the call-stack depth, root inclusive).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The innermost (current) function, if the path is non-empty.
    pub fn leaf(&self) -> Option<FunctionId> {
        self.0.last().map(|s| s.func)
    }

    /// Concatenates a parent context with this one (used to prepend the
    /// thread-creation context of a child thread, §5.3). The child's root
    /// step keeps the spawn site recorded by the runtime.
    #[must_use]
    pub fn prepend(&self, parent: &ContextPath, spawn_site: Option<CallSiteId>) -> ContextPath {
        let mut steps = parent.0.clone();
        let mut it = self.0.iter();
        if let Some(first) = it.next() {
            steps.push(PathStep {
                site: spawn_site,
                func: first.func,
            });
        }
        steps.extend(it.copied());
        ContextPath(steps)
    }

    /// Renders the path as `main -(cs0)-> f1 -(cs3)-> f2` for diagnostics.
    pub fn display(&self, mut name: impl FnMut(FunctionId) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, step) in self.0.iter().enumerate() {
            if i > 0 {
                match step.site {
                    Some(s) => {
                        let _ = write!(out, " -({s})-> ");
                    }
                    None => out.push_str(" -> "),
                }
            }
            out.push_str(&name(step.func));
        }
        out
    }
}

/// One oracle frame.
#[derive(Clone, Copy, Debug)]
struct OracleFrame {
    site: CallSiteId,
    func: FunctionId,
    /// True when this logical step owns a physical interpreter frame; tail
    /// calls push non-physical steps that are popped together with the
    /// physical frame beneath them.
    physical: bool,
}

/// The per-thread ground-truth logical call stack.
#[derive(Clone, Debug)]
pub struct OracleStack {
    root: FunctionId,
    frames: Vec<OracleFrame>,
}

impl OracleStack {
    /// A fresh stack for a thread rooted at `root`.
    pub fn new(root: FunctionId) -> Self {
        OracleStack {
            root,
            frames: Vec::with_capacity(64),
        }
    }

    /// The thread's root function.
    pub fn root(&self) -> FunctionId {
        self.root
    }

    /// Logical depth including the root.
    pub fn depth(&self) -> usize {
        self.frames.len() + 1
    }

    /// The current (innermost) function.
    pub fn current(&self) -> FunctionId {
        self.frames.last().map_or(self.root, |f| f.func)
    }

    /// Records a non-tail call through `site` into `func`.
    pub fn push_call(&mut self, site: CallSiteId, func: FunctionId) {
        self.frames.push(OracleFrame {
            site,
            func,
            physical: true,
        });
    }

    /// Records a tail call through `site` into `func`: a logical step that
    /// shares its physical frame with the step below.
    pub fn push_tail(&mut self, site: CallSiteId, func: FunctionId) {
        self.frames.push(OracleFrame {
            site,
            func,
            physical: false,
        });
    }

    /// Unwinds one *physical* return: pops the newest physical step and all
    /// tail steps stacked on top of it.
    ///
    /// # Panics
    ///
    /// Panics if no physical frame is on the stack.
    pub fn pop_physical(&mut self) {
        while let Some(top) = self.frames.pop() {
            if top.physical {
                return;
            }
        }
        panic!("pop_physical on a stack without physical frames");
    }

    /// Clears all frames (used when the main loop restarts).
    pub fn reset(&mut self) {
        self.frames.clear();
    }

    /// The current logical context, root first.
    pub fn path(&self) -> ContextPath {
        let mut steps = Vec::with_capacity(self.frames.len() + 1);
        steps.push(PathStep {
            site: None,
            func: self.root,
        });
        steps.extend(self.frames.iter().map(|f| PathStep {
            site: Some(f.site),
            func: f.func,
        }));
        ContextPath(steps)
    }

    /// Iterates the logical steps innermost-first as `(site, func)` pairs,
    /// excluding the root. This mirrors what a stack walk would see and is
    /// handed to runtimes at trap/re-encode time (see `DESIGN.md`).
    pub fn walk_innermost_first(&self) -> impl Iterator<Item = (CallSiteId, FunctionId)> + '_ {
        self.frames.iter().rev().map(|f| (f.site, f.func))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    #[test]
    fn root_path_has_depth_one() {
        let o = OracleStack::new(f(0));
        assert_eq!(o.depth(), 1);
        assert_eq!(o.current(), f(0));
        assert_eq!(o.path(), ContextPath::root(f(0)));
        assert_eq!(o.path().leaf(), Some(f(0)));
    }

    #[test]
    fn push_and_pop_track_calls() {
        let mut o = OracleStack::new(f(0));
        o.push_call(s(1), f(1));
        o.push_call(s(2), f(2));
        assert_eq!(o.depth(), 3);
        assert_eq!(o.current(), f(2));
        o.pop_physical();
        assert_eq!(o.current(), f(1));
        o.pop_physical();
        assert_eq!(o.depth(), 1);
    }

    #[test]
    fn tail_calls_extend_logical_path_but_share_frame() {
        let mut o = OracleStack::new(f(0));
        o.push_call(s(1), f(1)); // A calls C
        o.push_tail(s(2), f(2)); // C tail-calls D
        o.push_tail(s(3), f(3)); // D tail-calls E
        assert_eq!(o.depth(), 4);
        assert_eq!(o.current(), f(3));
        // One physical return unwinds the whole tail chain.
        o.pop_physical();
        assert_eq!(o.depth(), 1);
        assert_eq!(o.current(), f(0));
    }

    #[test]
    #[should_panic(expected = "pop_physical")]
    fn pop_on_empty_stack_panics() {
        let mut o = OracleStack::new(f(0));
        o.pop_physical();
    }

    #[test]
    fn path_records_sites_in_order() {
        let mut o = OracleStack::new(f(0));
        o.push_call(s(5), f(1));
        o.push_tail(s(7), f(2));
        let p = o.path();
        assert_eq!(
            p.0,
            vec![
                PathStep {
                    site: None,
                    func: f(0)
                },
                PathStep {
                    site: Some(s(5)),
                    func: f(1)
                },
                PathStep {
                    site: Some(s(7)),
                    func: f(2)
                },
            ]
        );
    }

    #[test]
    fn walk_innermost_first_reverses_frames() {
        let mut o = OracleStack::new(f(0));
        o.push_call(s(1), f(1));
        o.push_call(s(2), f(2));
        let walked: Vec<_> = o.walk_innermost_first().collect();
        assert_eq!(walked, vec![(s(2), f(2)), (s(1), f(1))]);
    }

    #[test]
    fn prepend_concatenates_parent_context() {
        let parent = ContextPath(vec![
            PathStep {
                site: None,
                func: f(0),
            },
            PathStep {
                site: Some(s(1)),
                func: f(1),
            },
        ]);
        let child = ContextPath(vec![
            PathStep {
                site: None,
                func: f(9),
            },
            PathStep {
                site: Some(s(4)),
                func: f(10),
            },
        ]);
        let full = child.prepend(&parent, Some(s(3)));
        assert_eq!(full.depth(), 4);
        assert_eq!(
            full.0[2],
            PathStep {
                site: Some(s(3)),
                func: f(9)
            }
        );
        assert_eq!(
            full.0[3],
            PathStep {
                site: Some(s(4)),
                func: f(10)
            }
        );
    }

    #[test]
    fn prepend_of_empty_child_is_parent() {
        let parent = ContextPath::root(f(0));
        let child = ContextPath::default();
        assert_eq!(child.prepend(&parent, None), parent);
    }

    #[test]
    fn display_renders_sites() {
        let mut o = OracleStack::new(f(0));
        o.push_call(s(1), f(1));
        let text = o.path().display(|id| format!("fn{}", id.raw()));
        assert_eq!(text, "fn0 -(cs1)-> fn1");
    }

    #[test]
    fn reset_clears_frames() {
        let mut o = OracleStack::new(f(0));
        o.push_call(s(1), f(1));
        o.reset();
        assert_eq!(o.depth(), 1);
        assert_eq!(o.current(), f(0));
    }
}
