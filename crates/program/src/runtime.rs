//! The hook interface between the interpreter and context runtimes.
//!
//! A *context runtime* plays the role of the instrumentation a real system
//! would patch into the program binary: it observes every dynamic call and
//! return, maintains whatever per-thread encoding state it needs, and
//! answers periodic sample requests with its best reconstruction of the
//! current calling context. The interpreter charges the cost units returned
//! by each hook against the program's base work to compute overhead.

use dacce_callgraph::{CallSiteId, FunctionId};

use crate::model::{Program, ThreadId};
use crate::oracle::{ContextPath, OracleStack};

/// How the call dispatches, as visible to instrumentation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallDispatch {
    /// Direct call.
    Direct,
    /// Indirect call through a function pointer.
    Indirect,
    /// Lazily bound PLT call.
    Plt,
}

/// A dynamic call event, delivered *before* the callee starts executing.
#[derive(Clone, Copy, Debug)]
pub struct CallEvent {
    /// Executing thread.
    pub tid: ThreadId,
    /// The static call site.
    pub site: CallSiteId,
    /// The function containing the call site.
    pub caller: FunctionId,
    /// The runtime target.
    pub callee: FunctionId,
    /// Dispatch kind.
    pub dispatch: CallDispatch,
    /// Whether this is a tail call (the caller's frame is replaced).
    pub tail: bool,
    /// Logical call depth before the call (root = 1).
    pub depth: usize,
}

/// A dynamic return event, delivered when control returns *to the frame that
/// executed the call at `site`*. For tail-call chains, no return events are
/// delivered for the intermediate tail edges — exactly like real hardware,
/// where the "after call" instrumentation of a `jmp`-reached callee never
/// runs (§5.2 of the paper).
#[derive(Clone, Copy, Debug)]
pub struct ReturnEvent {
    /// Executing thread.
    pub tid: ThreadId,
    /// The call site whose after-call instrumentation now executes.
    pub site: CallSiteId,
    /// The function containing the call site (control returns into it).
    pub caller: FunctionId,
    /// The *original* target the site invoked when the frame was created
    /// (for an indirect site this selects the instrumentation branch taken).
    pub callee: FunctionId,
    /// Dispatch kind of the site.
    pub dispatch: CallDispatch,
    /// Whether the returning frame was replaced by tail calls at least once.
    pub tail_chain: bool,
}

/// Result of a sample request.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleResult {
    /// The runtime decoded the current context to this path.
    Path(ContextPath),
    /// The runtime cannot reconstruct contexts (e.g. probabilistic hashing);
    /// the sample is recorded but not validated.
    Unsupported,
}

/// A context runtime driven by the interpreter.
///
/// The `stack` argument of [`ContextRuntime::on_call`] and
/// [`ContextRuntime::on_return`] is the machine-stack view that a dynamic
/// binary instrumentation handler has access to. Honest runtimes consult it
/// only where the paper's handler walks the stack (first-trap fix-ups and
/// re-encoding); the validation harness catches any runtime whose decoded
/// contexts drift from the truth.
pub trait ContextRuntime {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Called once before execution starts. The runtime may pre-compute
    /// whatever static information its approach requires (PCCE builds and
    /// encodes the whole static graph here; DACCE only creates `main`).
    fn attach(&mut self, program: &Program);

    /// A new thread begins at `root`. `parent` carries the spawning thread
    /// and call site for all threads but the initial one.
    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    );

    /// A call is about to transfer control. Returns cost units charged.
    fn on_call(&mut self, ev: &CallEvent, stack: &OracleStack) -> u64;

    /// Control returned to the caller of `site`. Returns cost units charged.
    fn on_return(&mut self, ev: &ReturnEvent, stack: &OracleStack) -> u64;

    /// A thread finished.
    fn on_thread_exit(&mut self, _tid: ThreadId) {}

    /// The main loop completed one iteration and restarts from an empty
    /// stack; per-thread encoding state is expected to be back at its
    /// initial value, so the default does nothing.
    fn on_root_reset(&mut self, _tid: ThreadId) {}

    /// Record a sample of the current context of `tid` and return the
    /// decoded path for cross-validation. `events` is the global event
    /// counter, usable as a logical clock. Returns the decoded result and
    /// cost units charged.
    fn sample(&mut self, tid: ThreadId, events: u64) -> (SampleResult, u64);
}

/// A runtime that does nothing; measures pure base cost and validates the
/// oracle against itself.
#[derive(Debug, Default)]
pub struct NullRuntime {
    calls: u64,
    returns: u64,
}

impl NullRuntime {
    /// Number of call events observed.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Number of return events observed.
    pub fn returns(&self) -> u64 {
        self.returns
    }
}

impl ContextRuntime for NullRuntime {
    fn name(&self) -> &'static str {
        "null"
    }

    fn attach(&mut self, _program: &Program) {}

    fn on_thread_start(
        &mut self,
        _tid: ThreadId,
        _root: FunctionId,
        _parent: Option<(ThreadId, CallSiteId)>,
    ) {
    }

    fn on_call(&mut self, _ev: &CallEvent, _stack: &OracleStack) -> u64 {
        self.calls += 1;
        0
    }

    fn on_return(&mut self, _ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        self.returns += 1;
        0
    }

    fn sample(&mut self, _tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        (SampleResult::Unsupported, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_runtime_counts_events() {
        let mut rt = NullRuntime::default();
        let stack = OracleStack::new(FunctionId::new(0));
        let ev = CallEvent {
            tid: ThreadId::MAIN,
            site: CallSiteId::new(0),
            caller: FunctionId::new(0),
            callee: FunctionId::new(1),
            dispatch: CallDispatch::Direct,
            tail: false,
            depth: 1,
        };
        assert_eq!(rt.on_call(&ev, &stack), 0);
        let rev = ReturnEvent {
            tid: ThreadId::MAIN,
            site: CallSiteId::new(0),
            caller: FunctionId::new(0),
            callee: FunctionId::new(1),
            dispatch: CallDispatch::Direct,
            tail_chain: false,
        };
        assert_eq!(rt.on_return(&rev, &stack), 0);
        assert_eq!(rt.calls(), 1);
        assert_eq!(rt.returns(), 1);
        assert_eq!(rt.sample(ThreadId::MAIN, 0).0, SampleResult::Unsupported);
    }
}
