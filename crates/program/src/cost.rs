//! The instrumentation cost model.
//!
//! The paper reports wall-clock overhead on the authors' Xeon testbed; this
//! reproduction replaces wall-clock with a deterministic discrete cost model
//! (see `DESIGN.md`): every instrumentation action a runtime performs is
//! charged a fixed number of abstract units, and overhead is the ratio of
//! charged units to the program's base work. The *per-call* costs below are
//! rough instruction-count estimates; what the experiments depend on is the
//! relative magnitudes (a ccStack push is several times an id addition).
//!
//! **One-time costs are scaled down by the run-length ratio.** Handler
//! traps and re-encodings happen a bounded number of times (once per edge /
//! a few dozen per run) regardless of run length; the paper amortises them
//! over minutes-long executions of 10^9–10^10 calls, while this
//! reproduction's runs are ~10^6 calls. Charging the full per-occurrence
//! cycle cost would over-represent one-time costs by four orders of
//! magnitude, so `handler_trap` and `reencode_per_edge` are set such that
//! their *share of total cost* in a default-scale run approximates their
//! amortised share in the paper's runs (still erring on the side of
//! charging DACCE more). This substitution is recorded in `DESIGN.md` and
//! `EXPERIMENTS.md`.

/// Abstract cost units charged per instrumentation action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One addition/subtraction on the context identifier `id`.
    pub id_arith: u64,
    /// One `ccStack` push or pop (entry construction + memory traffic).
    pub ccstack_op: u64,
    /// One `TcStack` save or restore (§5.2).
    pub tcstack_op: u64,
    /// One comparison in an inline indirect-target chain (Figure 3d).
    pub compare: u64,
    /// One hash-table probe for indirect targets (Figure 4).
    pub hash_lookup: u64,
    /// One runtime-handler trap: trampoline, graph update, code patching.
    pub handler_trap: u64,
    /// Re-encoding cost per edge in the call graph (§4: suspend, decode
    /// collected contexts, re-encode, re-instrument).
    pub reencode_per_edge: u64,
    /// Per-call cost of maintaining a calling context tree (related work).
    pub cct_step: u64,
    /// Per-frame cost of walking the stack at a sample (related work).
    pub walk_frame: u64,
    /// Per-call cost of the probabilistic-calling-context hash (related
    /// work, Bond & McKinley).
    pub pcc_hash: u64,
    /// Cost of recording one context sample (common to all runtimes; the
    /// paper's libpfm4 sample handler).
    pub sample_record: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            id_arith: 1,
            ccstack_op: 8,
            tcstack_op: 3,
            compare: 1,
            hash_lookup: 6,
            handler_trap: 120,
            reencode_per_edge: 6,
            cct_step: 30,
            walk_frame: 15,
            pcc_hash: 2,
            sample_record: 20,
        }
    }
}

impl CostModel {
    /// A model where every action is free; useful to isolate event counts.
    pub fn free() -> Self {
        CostModel {
            id_arith: 0,
            ccstack_op: 0,
            tcstack_op: 0,
            compare: 0,
            hash_lookup: 0,
            handler_trap: 0,
            reencode_per_edge: 0,
            cct_step: 0,
            walk_frame: 0,
            pcc_hash: 0,
            sample_record: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_orders_costs_sensibly() {
        let m = CostModel::default();
        assert!(m.id_arith < m.ccstack_op, "ccStack ops dominate id math");
        assert!(m.ccstack_op < m.handler_trap, "traps dominate everything");
        assert!(m.compare <= m.hash_lookup);
        assert!(m.tcstack_op < m.ccstack_op);
    }

    #[test]
    fn free_model_is_all_zero() {
        let m = CostModel::free();
        assert_eq!(m.id_arith, 0);
        assert_eq!(m.handler_trap, 0);
        assert_eq!(m.sample_record, 0);
    }
}
