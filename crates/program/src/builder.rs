//! Fluent construction of synthetic programs.
//!
//! [`ProgramBuilder`] allocates functions, libraries, indirect tables and
//! call sites; [`BodyBuilder`] assembles one function body. Used by unit
//! tests, the examples, and the workload generator.

use dacce_callgraph::{CallSiteId, FunctionId};

use crate::model::{
    CallOp, CalleeSpec, Function, IndirectTable, Op, Program, SharedLibrary, TargetChoice,
};

/// Incremental builder for [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
    tables: Vec<IndirectTable>,
    libs: Vec<SharedLibrary>,
    next_site: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function of the main executable and returns its id.
    pub fn function(&mut self, name: &str) -> FunctionId {
        let id = FunctionId::new(self.functions.len() as u32);
        self.functions.push(Function {
            name: name.to_string(),
            lib: None,
            body: Vec::new(),
        });
        id
    }

    /// Declares a shared library and returns its index.
    pub fn library(&mut self, name: &str) -> u32 {
        let idx = self.libs.len() as u32;
        self.libs.push(SharedLibrary {
            name: name.to_string(),
            functions: Vec::new(),
        });
        idx
    }

    /// Declares a function exported by library `lib` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `lib` was not created by [`ProgramBuilder::library`].
    pub fn lib_function(&mut self, lib: u32, name: &str) -> FunctionId {
        assert!((lib as usize) < self.libs.len(), "unknown library {lib}");
        let id = FunctionId::new(self.functions.len() as u32);
        self.functions.push(Function {
            name: name.to_string(),
            lib: Some(lib),
            body: Vec::new(),
        });
        self.libs[lib as usize].functions.push(id);
        id
    }

    /// Declares an indirect-call target table and returns its index.
    pub fn table(&mut self, targets: Vec<FunctionId>) -> u32 {
        self.table_with_extra(targets, Vec::new())
    }

    /// Declares an indirect table with additional points-to false positives.
    pub fn table_with_extra(
        &mut self,
        targets: Vec<FunctionId>,
        pointsto_extra: Vec<FunctionId>,
    ) -> u32 {
        let idx = self.tables.len() as u32;
        self.tables.push(IndirectTable {
            targets,
            pointsto_extra,
        });
        idx
    }

    /// Allocates a fresh call-site id.
    pub fn site(&mut self) -> CallSiteId {
        let s = CallSiteId::new(self.next_site);
        self.next_site += 1;
        s
    }

    /// Starts (or replaces) the body of `f`.
    pub fn body(&mut self, f: FunctionId) -> BodyBuilder<'_> {
        BodyBuilder {
            builder: self,
            func: f,
            ops: Vec::new(),
        }
    }

    /// Finishes the program with `main` as entry.
    ///
    /// # Panics
    ///
    /// Panics if the assembled program fails [`Program::validate`]; builder
    /// misuse is a programming error.
    pub fn build(self, main: FunctionId) -> Program {
        let program = Program {
            functions: self.functions,
            tables: self.tables,
            libs: self.libs,
            main,
            site_count: self.next_site,
        };
        if let Err(msg) = program.validate() {
            panic!("invalid program: {msg}");
        }
        program
    }
}

/// Builds one function body; finish with [`BodyBuilder::done`].
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    func: FunctionId,
    ops: Vec<Op>,
}

impl BodyBuilder<'_> {
    /// Appends plain work of the given base cost.
    pub fn work(mut self, units: u32) -> Self {
        self.ops.push(Op::Work(units));
        self
    }

    /// Appends an unconditional direct call.
    pub fn call(self, target: FunctionId) -> Self {
        self.push_call(CalleeSpec::Direct(target), [1.0, 1.0], 1, false)
    }

    /// Appends a direct call with per-phase probabilities.
    pub fn call_p(self, target: FunctionId, prob: [f32; 2]) -> Self {
        self.push_call(CalleeSpec::Direct(target), prob, 1, false)
    }

    /// Appends a direct call attempted `repeat` times per body execution.
    pub fn call_rep(self, target: FunctionId, prob: [f32; 2], repeat: u16) -> Self {
        self.push_call(CalleeSpec::Direct(target), prob, repeat, false)
    }

    /// Appends an indirect call through `table`.
    pub fn indirect(self, table: u32, choice: TargetChoice, prob: [f32; 2], repeat: u16) -> Self {
        self.push_call(CalleeSpec::Indirect { table, choice }, prob, repeat, false)
    }

    /// Appends a PLT call to a library function.
    pub fn plt(self, target: FunctionId, prob: [f32; 2], repeat: u16) -> Self {
        self.push_call(CalleeSpec::Plt(target), prob, repeat, false)
    }

    /// Appends a direct tail call (must remain the last call op).
    pub fn tail(self, target: FunctionId, prob: [f32; 2]) -> Self {
        self.push_call(CalleeSpec::Direct(target), prob, 1, true)
    }

    /// Appends an indirect tail call through `table`.
    pub fn tail_indirect(self, table: u32, choice: TargetChoice, prob: [f32; 2]) -> Self {
        self.push_call(CalleeSpec::Indirect { table, choice }, prob, 1, true)
    }

    /// Appends a thread-spawn op.
    pub fn spawn(self, target: FunctionId, prob: [f32; 2]) -> Self {
        self.push_call(CalleeSpec::Spawn(target), prob, 1, false)
    }

    /// Appends a fully general call op, allocating its site.
    pub fn push_call(
        mut self,
        callee: CalleeSpec,
        prob: [f32; 2],
        repeat: u16,
        tail: bool,
    ) -> Self {
        let site = self.builder.site();
        self.ops.push(Op::Call(CallOp {
            site,
            callee,
            prob,
            repeat,
            tail,
        }));
        self
    }

    /// Returns the site id that the *next* appended call will receive.
    pub fn peek_site(&self) -> CallSiteId {
        CallSiteId::new(self.builder.next_site)
    }

    /// Installs the assembled body.
    pub fn done(self) {
        self.builder.functions[self.func.index()].body = self.ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_a_valid_program() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let lib = b.library("libz-analog");
        let compress = b.lib_function(lib, "compress");
        let t = b.table(vec![a]);
        b.body(main)
            .work(10)
            .call(a)
            .indirect(t, TargetChoice::Uniform, [1.0, 0.5], 2)
            .plt(compress, [0.5, 0.5], 1)
            .done();
        b.body(a).work(1).done();
        let p = b.build(main);
        assert_eq!(p.function_count(), 3);
        assert_eq!(p.site_count, 3);
        assert_eq!(p.libs[0].functions, vec![compress]);
        assert_eq!(p.call_ops().count(), 3);
    }

    #[test]
    fn sites_are_unique_across_functions() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        b.body(main).call(a).done();
        b.body(a).call_p(main, [0.0, 0.0]).done();
        let p = b.build(main);
        let sites: Vec<CallSiteId> = p.call_ops().map(|(_, c)| c.site).collect();
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0], sites[1]);
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn build_panics_on_invalid_program() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        // Tail call followed by another call violates validation.
        b.body(main).tail(a, [1.0, 1.0]).call(a).done();
        let _ = b.build(main);
    }

    #[test]
    #[should_panic(expected = "unknown library")]
    fn lib_function_requires_existing_library() {
        let mut b = ProgramBuilder::new();
        let _ = b.lib_function(0, "oops");
    }

    #[test]
    fn peek_site_matches_next_allocation() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let body = b.body(main);
        let peeked = body.peek_site();
        body.call(a).done();
        b.body(a).done();
        let p = b.build(main);
        let (_, op) = p.call_ops().next().unwrap();
        assert_eq!(op.site, peeked);
    }
}
