//! Synthetic program model and deterministic interpreter.
//!
//! The DACCE paper evaluates on SPEC CPU2006 and PARSEC 2.1 binaries driven
//! by dynamic binary instrumentation. This crate is the substitute substrate
//! (see `DESIGN.md`): programs are modelled as sets of functions whose bodies
//! interleave plain work with call operations of every kind the paper
//! handles — direct calls, indirect calls through function-pointer tables,
//! tail calls, lazily bound PLT calls into shared libraries, recursion and
//! thread creation. A deterministic interpreter executes the model and
//! drives any number of *context runtimes* (DACCE, PCCE, stack walking, CCT,
//! PCC, …) through the [`runtime::ContextRuntime`] hook trait, charging each
//! runtime's instrumentation cost against the program's base work.
//!
//! The interpreter also maintains a per-thread **oracle**: the true logical
//! calling context (tail-call frames included). Samples taken during a run
//! are validated by decoding the runtime's encoded context and comparing it
//! with the oracle — the same stack-walking cross-validation methodology the
//! paper uses (§6.1).
//!
//! # Example
//!
//! Build a three-function program and run it under the no-op runtime:
//!
//! ```
//! use dacce_program::builder::ProgramBuilder;
//! use dacce_program::interp::{Interpreter, InterpConfig};
//! use dacce_program::runtime::NullRuntime;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.function("main");
//! let work = b.function("work");
//! b.body(main).work(10).call(work).done();
//! b.body(work).work(5).done();
//! let program = b.build(main);
//!
//! let mut rt = NullRuntime::default();
//! let report = Interpreter::new(&program, InterpConfig::default()).run(&mut rt);
//! assert!(report.calls > 0);
//! assert_eq!(report.mismatches, 0);
//! ```

pub mod builder;
pub mod cost;
pub mod interp;
pub mod model;
pub mod oracle;
pub mod runtime;

pub use builder::ProgramBuilder;
pub use cost::CostModel;
pub use interp::{InterpConfig, Interpreter, RunReport};
pub use model::{
    CallOp, CalleeSpec, Function, IndirectTable, Op, Program, SharedLibrary, ThreadId,
};
pub use oracle::{ContextPath, OracleStack, PathStep};
pub use runtime::{CallEvent, ContextRuntime, NullRuntime, ReturnEvent, SampleResult};
