//! The deterministic multi-threaded interpreter.
//!
//! Executes a [`Program`] op by op, delivering call/return events to a
//! [`ContextRuntime`] and charging its instrumentation cost against the
//! program's base work. Thread interleaving is round-robin with a fixed
//! event quantum; all randomness comes from per-thread `SmallRng`s seeded
//! from the run seed, so identical configurations replay identical traces.
//!
//! Tail calls replace the executing frame (the callee returns directly to
//! the caller's caller), and consequently no return event is ever delivered
//! for a tail edge — faithfully reproducing the instrumentation blind spot
//! the paper fixes with `TcStack` (§5.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dacce_callgraph::{CallSiteId, FunctionId};

use crate::model::{CalleeSpec, Op, Program, TargetChoice, ThreadId};
use crate::oracle::{ContextPath, OracleStack};
use crate::runtime::{CallDispatch, CallEvent, ContextRuntime, ReturnEvent, SampleResult};

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct InterpConfig {
    /// Seed for all workload randomness.
    pub seed: u64,
    /// Maximum logical call depth; calls beyond it are skipped (bounds
    /// recursion the way real programs bound theirs with base cases).
    pub max_depth: usize,
    /// Stop after this many dynamic call events.
    pub budget_calls: u64,
    /// Take a context sample every N call events (0 disables call-based
    /// sampling).
    pub sample_every: u64,
    /// Take a context sample every N base-work units (0 disables). This is
    /// the analog of the paper's *time-based* libpfm4 sampling: benchmarks
    /// with low call density still get sampled at a steady rate.
    pub sample_every_work: u64,
    /// Scheduler quantum: events executed per thread before rotating.
    pub switch_every: u32,
    /// Maximum simultaneously live threads (spawn ops beyond it are skipped).
    pub max_threads: usize,
    /// Restart `main`'s body when it completes, until the budget is spent.
    pub restart_main: bool,
    /// Validate every decoded sample against the oracle.
    pub validate: bool,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            seed: 0x5eed,
            max_depth: 512,
            budget_calls: 100_000,
            sample_every: 997,
            sample_every_work: 0,
            switch_every: 64,
            max_threads: 8,
            restart_main: true,
            validate: true,
        }
    }
}

/// Aggregate results of one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Dynamic call events delivered.
    pub calls: u64,
    /// Dynamic return events delivered.
    pub returns: u64,
    /// Base application work (units from `Op::Work`).
    pub base_cost: u64,
    /// Instrumentation cost charged by the runtime.
    pub instr_cost: u64,
    /// Context samples taken.
    pub samples: u64,
    /// Samples whose decoded path matched the oracle.
    pub validated: u64,
    /// Samples whose decoded path disagreed with the oracle.
    pub mismatches: u64,
    /// Samples the runtime could not decode (e.g. probabilistic contexts).
    pub unsupported: u64,
    /// Oracle call-stack depth at each sample (Figure 10 raw data).
    pub sample_depths: Vec<u32>,
    /// Base work accumulated when the run crossed 75% of its call budget
    /// (start of the "warm" measurement window).
    pub warm_base_start: u64,
    /// Instrumentation cost accumulated at the warm-window start.
    pub warm_instr_start: u64,
    /// Threads created over the run (including the main thread).
    pub threads_spawned: u32,
    /// Completed iterations of `main`'s body.
    pub main_iterations: u64,
    /// Human-readable diagnostics for the first few mismatches.
    pub mismatch_examples: Vec<String>,
}

impl RunReport {
    /// Instrumentation overhead relative to base work, whole run included
    /// (start-up traps and early re-encodings dominate short runs).
    pub fn overhead(&self) -> f64 {
        if self.base_cost == 0 {
            return 0.0;
        }
        self.instr_cost as f64 / self.base_cost as f64
    }

    /// Steady-state overhead: measured over the last quarter of the run,
    /// after call-graph discovery has largely completed. This corresponds
    /// to the paper's measurements, where runs last minutes and the warm-up
    /// phase (Figure 9 "reaches a relatively steady state quickly") is a
    /// vanishing fraction.
    pub fn warm_overhead(&self) -> f64 {
        let base = self.base_cost.saturating_sub(self.warm_base_start);
        let instr = self.instr_cost.saturating_sub(self.warm_instr_start);
        if base == 0 {
            return self.overhead();
        }
        instr as f64 / base as f64
    }

    /// Call events per million base-work units ("calls/s" analog; the cost
    /// model plays the role of time).
    pub fn calls_per_mwork(&self) -> f64 {
        if self.base_cost == 0 {
            return 0.0;
        }
        self.calls as f64 * 1e6 / self.base_cost as f64
    }
}

/// How a physical frame was created (for the return event).
#[derive(Clone, Copy, Debug)]
struct FrameEntry {
    site: CallSiteId,
    callee: FunctionId,
    dispatch: CallDispatch,
}

#[derive(Clone, Debug)]
struct Frame {
    func: FunctionId,
    op_idx: usize,
    /// Remaining attempts of the current call op; `u16::MAX` marks "not yet
    /// initialised for this op".
    rep_left: u16,
    entry: Option<FrameEntry>,
    tail_chain: bool,
}

impl Frame {
    fn root(func: FunctionId) -> Self {
        Frame {
            func,
            op_idx: 0,
            rep_left: u16::MAX,
            entry: None,
            tail_chain: false,
        }
    }
}

#[derive(Debug)]
struct ThreadState {
    tid: ThreadId,
    frames: Vec<Frame>,
    oracle: OracleStack,
    rng: SmallRng,
    alive: bool,
    /// `report.calls` at the last main-loop restart, plus the count of
    /// consecutive restarts without a single call event; programs whose
    /// iterations keep producing no calls can never reach their budget, so
    /// the restart loop stops after a bounded number of idle iterations.
    calls_at_restart: u64,
    idle_iterations: u32,
    /// Full oracle context of the spawning thread at spawn time (already
    /// including *its* ancestors), plus the spawn site; `None` for main.
    spawn_prefix: Option<(ContextPath, CallSiteId)>,
}

/// Executes programs against a context runtime.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    config: InterpConfig,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation.
    pub fn new(program: &'p Program, config: InterpConfig) -> Self {
        if let Err(msg) = program.validate() {
            panic!("invalid program: {msg}");
        }
        Interpreter { program, config }
    }

    /// Runs the program to its call budget under `runtime`.
    pub fn run<R: ContextRuntime>(&self, runtime: &mut R) -> RunReport {
        let mut report = RunReport::default();
        let cfg = &self.config;
        runtime.attach(self.program);

        let mut threads: Vec<ThreadState> = Vec::new();
        let mut next_tid = 1u32;
        report.threads_spawned += 1;
        runtime.on_thread_start(ThreadId::MAIN, self.program.main, None);
        threads.push(ThreadState {
            tid: ThreadId::MAIN,
            frames: vec![Frame::root(self.program.main)],
            oracle: OracleStack::new(self.program.main),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            alive: true,
            calls_at_restart: 0,
            idle_iterations: 0,
            spawn_prefix: None,
        });

        let mut turn = 0usize;
        let mut warm_marked = false;
        'outer: while report.calls < cfg.budget_calls {
            if !warm_marked && report.calls * 4 >= cfg.budget_calls * 3 {
                warm_marked = true;
                report.warm_base_start = report.base_cost;
                report.warm_instr_start = report.instr_cost;
            }
            // Pick the next alive thread round-robin.
            let alive_count = threads.iter().filter(|t| t.alive).count();
            if alive_count == 0 {
                break;
            }
            let mut guard = 0;
            while !threads[turn % threads.len()].alive {
                turn += 1;
                guard += 1;
                if guard > threads.len() {
                    break 'outer;
                }
            }
            let ti = turn % threads.len();
            turn += 1;

            let mut quantum = cfg.switch_every;
            while quantum > 0 && threads[ti].alive && report.calls < cfg.budget_calls {
                quantum -= 1;
                let mut pending_spawn: Option<(FunctionId, CallSiteId)> = None;
                self.step(&mut threads[ti], runtime, &mut report, &mut pending_spawn);
                if let Some((root, site)) = pending_spawn {
                    let live = threads.iter().filter(|t| t.alive).count();
                    if live < cfg.max_threads {
                        let parent_idx = ti;
                        // Split borrow: clone what we need from the parent.
                        let (parent_path, parent_tid) = {
                            let p = &threads[parent_idx];
                            let mut path = p.oracle.path();
                            if let Some((prefix, psite)) = &p.spawn_prefix {
                                path = path.prepend(prefix, Some(*psite));
                            }
                            (path, p.tid)
                        };
                        let tid = ThreadId::new(next_tid);
                        next_tid += 1;
                        report.threads_spawned += 1;
                        runtime.on_thread_start(tid, root, Some((parent_tid, site)));
                        threads.push(ThreadState {
                            tid,
                            frames: vec![Frame::root(root)],
                            oracle: OracleStack::new(root),
                            rng: SmallRng::seed_from_u64(
                                cfg.seed
                                    ^ (0x9e37_79b9_7f4a_7c15u64
                                        .wrapping_mul(u64::from(tid.raw()) + 1)),
                            ),
                            alive: true,
                            calls_at_restart: 0,
                            idle_iterations: 0,
                            spawn_prefix: Some((parent_path, site)),
                        });
                    }
                }
            }
        }

        // Drain: unwind all live threads so balanced instrumentation can
        // restore its initial state; deliver thread exits.
        for t in &mut threads {
            if !t.alive {
                continue;
            }
            while let Some(frame) = t.frames.pop() {
                if let Some(entry) = frame.entry {
                    let ev = ReturnEvent {
                        tid: t.tid,
                        site: entry.site,
                        caller: t.frames.last().map_or(t.oracle.root(), |f| f.func),
                        callee: entry.callee,
                        dispatch: entry.dispatch,
                        tail_chain: frame.tail_chain,
                    };
                    t.oracle.pop_physical();
                    report.returns += 1;
                    report.instr_cost += runtime.on_return(&ev, &t.oracle);
                }
            }
            runtime.on_thread_exit(t.tid);
            t.alive = false;
        }

        report
    }

    /// Executes one step of `thread`. Returns after at most one event.
    fn step<R: ContextRuntime>(
        &self,
        thread: &mut ThreadState,
        runtime: &mut R,
        report: &mut RunReport,
        pending_spawn: &mut Option<(FunctionId, CallSiteId)>,
    ) {
        let cfg = &self.config;
        let phase = usize::from(report.calls.saturating_mul(2) >= cfg.budget_calls);

        let frame = thread.frames.last_mut().expect("alive thread has frames");
        let body = &self.program.functions[frame.func.index()].body;

        if frame.op_idx >= body.len() {
            // Function returns.
            let frame = thread.frames.pop().expect("frame present");
            if let Some(entry) = frame.entry {
                let ev = ReturnEvent {
                    tid: thread.tid,
                    site: entry.site,
                    caller: thread
                        .frames
                        .last()
                        .map_or_else(|| thread.oracle.root(), |f| f.func),
                    callee: entry.callee,
                    dispatch: entry.dispatch,
                    tail_chain: frame.tail_chain,
                };
                thread.oracle.pop_physical();
                report.returns += 1;
                report.instr_cost += runtime.on_return(&ev, &thread.oracle);
            } else if thread.tid == ThreadId::MAIN
                && cfg.restart_main
                && report.calls < cfg.budget_calls
                && thread.idle_iterations < 1_000
            {
                if report.calls > thread.calls_at_restart {
                    thread.idle_iterations = 0;
                } else {
                    thread.idle_iterations += 1;
                }
                report.main_iterations += 1;
                thread.calls_at_restart = report.calls;
                thread.oracle.reset();
                runtime.on_root_reset(thread.tid);
                thread.frames.push(Frame::root(self.program.main));
            } else {
                runtime.on_thread_exit(thread.tid);
                thread.alive = false;
            }
            return;
        }

        match &body[frame.op_idx] {
            Op::Work(units) => {
                let before = report.base_cost;
                report.base_cost += u64::from(*units);
                frame.op_idx += 1;
                frame.rep_left = u16::MAX;
                if cfg.sample_every_work > 0
                    && before / cfg.sample_every_work != report.base_cost / cfg.sample_every_work
                {
                    self.take_sample(thread, runtime, report);
                }
            }
            Op::Call(call) => {
                if frame.rep_left == u16::MAX {
                    frame.rep_left = call.repeat;
                }
                if frame.rep_left == 0 {
                    frame.op_idx += 1;
                    frame.rep_left = u16::MAX;
                    return;
                }
                frame.rep_left -= 1;

                let p = call.prob[phase];
                if p < 1.0 && thread.rng.gen::<f32>() >= p {
                    return;
                }

                // Resolve the runtime target.
                let (target, dispatch) = match &call.callee {
                    CalleeSpec::Direct(t) => (*t, CallDispatch::Direct),
                    CalleeSpec::Plt(t) => (*t, CallDispatch::Plt),
                    CalleeSpec::Spawn(t) => {
                        *pending_spawn = Some((*t, call.site));
                        return;
                    }
                    CalleeSpec::Indirect { table, choice } => {
                        let targets = &self.program.tables[*table as usize].targets;
                        let idx = match choice {
                            TargetChoice::Uniform => thread.rng.gen_range(0..targets.len()),
                            TargetChoice::Skewed { hot } => {
                                if targets.len() == 1 || thread.rng.gen::<f32>() < *hot {
                                    0
                                } else {
                                    thread.rng.gen_range(1..targets.len())
                                }
                            }
                        };
                        (targets[idx], CallDispatch::Indirect)
                    }
                };

                if thread.oracle.depth() >= cfg.max_depth {
                    return; // recursion bound: skip the call
                }

                let ev = CallEvent {
                    tid: thread.tid,
                    site: call.site,
                    caller: frame.func,
                    callee: target,
                    dispatch,
                    tail: call.tail,
                    depth: thread.oracle.depth(),
                };

                if call.tail {
                    thread.oracle.push_tail(call.site, target);
                    frame.func = target;
                    frame.op_idx = 0;
                    frame.rep_left = u16::MAX;
                    frame.tail_chain = true;
                } else {
                    thread.oracle.push_call(call.site, target);
                    let entry = FrameEntry {
                        site: call.site,
                        callee: target,
                        dispatch,
                    };
                    thread.frames.push(Frame {
                        func: target,
                        op_idx: 0,
                        rep_left: u16::MAX,
                        entry: Some(entry),
                        tail_chain: false,
                    });
                }

                report.calls += 1;
                report.instr_cost += runtime.on_call(&ev, &thread.oracle);

                if cfg.sample_every > 0 && report.calls.is_multiple_of(cfg.sample_every) {
                    self.take_sample(thread, runtime, report);
                }
            }
        }
    }

    fn take_sample<R: ContextRuntime>(
        &self,
        thread: &mut ThreadState,
        runtime: &mut R,
        report: &mut RunReport,
    ) {
        let (result, cost) = runtime.sample(thread.tid, report.calls);
        report.instr_cost += cost;
        report.samples += 1;
        report.sample_depths.push(thread.oracle.depth() as u32);
        match result {
            SampleResult::Unsupported => report.unsupported += 1,
            SampleResult::Path(decoded) => {
                if !self.config.validate {
                    report.validated += 1;
                    return;
                }
                let mut truth = thread.oracle.path();
                if let Some((prefix, site)) = &thread.spawn_prefix {
                    truth = truth.prepend(prefix, Some(*site));
                }
                if decoded == truth {
                    report.validated += 1;
                } else {
                    report.mismatches += 1;
                    if report.mismatch_examples.len() < 4 {
                        let name = |f: FunctionId| self.program.name(f).to_string();
                        report.mismatch_examples.push(format!(
                            "sample at call {} on {}: decoded [{}] truth [{}]",
                            report.calls,
                            thread.tid,
                            decoded.display(name),
                            truth.display(|f| self.program.name(f).to_string()),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::runtime::NullRuntime;

    fn linear_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let leaf = b.function("leaf");
        b.body(main).work(10).call(a).done();
        b.body(a).work(5).call(leaf).done();
        b.body(leaf).work(1).done();
        b.build(main)
    }

    #[test]
    fn run_is_deterministic() {
        let p = linear_program();
        let cfg = InterpConfig {
            budget_calls: 1000,
            ..InterpConfig::default()
        };
        let r1 = Interpreter::new(&p, cfg.clone()).run(&mut NullRuntime::default());
        let r2 = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert_eq!(r1.calls, r2.calls);
        assert_eq!(r1.base_cost, r2.base_cost);
        assert_eq!(r1.main_iterations, r2.main_iterations);
    }

    #[test]
    fn budget_limits_call_events() {
        let p = linear_program();
        let cfg = InterpConfig {
            budget_calls: 100,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert_eq!(r.calls, 100);
    }

    #[test]
    fn calls_balance_returns_after_drain() {
        let p = linear_program();
        let cfg = InterpConfig {
            budget_calls: 101, // stop mid-path so drain has work to do
            ..InterpConfig::default()
        };
        let mut rt = NullRuntime::default();
        let r = Interpreter::new(&p, cfg).run(&mut rt);
        assert_eq!(r.calls, r.returns, "drain must balance the trace");
        assert_eq!(rt.calls(), r.calls);
        assert_eq!(rt.returns(), r.returns);
    }

    #[test]
    fn main_restarts_until_budget() {
        let p = linear_program();
        let cfg = InterpConfig {
            budget_calls: 10,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        // Each main iteration produces 2 calls, so ~5 iterations.
        assert!(r.main_iterations >= 4);
    }

    #[test]
    fn no_restart_stops_after_one_iteration() {
        let p = linear_program();
        let cfg = InterpConfig {
            budget_calls: 1000,
            restart_main: false,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert_eq!(r.calls, 2);
        assert_eq!(r.main_iterations, 0);
    }

    #[test]
    fn recursion_is_bounded_by_max_depth() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let rec = b.function("rec");
        b.body(main).call(rec).done();
        b.body(rec).work(1).call(rec).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 10_000,
            max_depth: 32,
            restart_main: true,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert!(r.calls > 0);
        assert_eq!(r.calls, r.returns);
        assert!(r.sample_depths.iter().all(|&d| d <= 32));
    }

    #[test]
    fn tail_calls_produce_no_intermediate_returns() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let c = b.function("c");
        let d = b.function("d");
        b.body(main).call(c).done();
        b.body(c).work(1).tail(d, [1.0, 1.0]).done();
        b.body(d).work(1).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 20,
            restart_main: true,
            sample_every: 0,
            ..InterpConfig::default()
        };
        let mut rt = NullRuntime::default();
        let r = Interpreter::new(&p, cfg).run(&mut rt);
        // Per iteration: calls main->c and c->d (2 calls) but only ONE
        // return event (control returns from d straight to main).
        assert_eq!(r.calls, 20);
        assert_eq!(r.returns, 10);
    }

    #[test]
    fn spawned_threads_execute_and_exit() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let worker = b.function("worker");
        let leaf = b.function("leaf");
        b.body(main)
            .spawn(worker, [1.0, 1.0])
            .work(10)
            .call(leaf)
            .done();
        b.body(worker).work(5).call_rep(leaf, [1.0, 1.0], 4).done();
        b.body(leaf).work(1).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 200,
            max_threads: 4,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert!(r.threads_spawned > 1, "workers must spawn");
        assert_eq!(r.calls, r.returns);
    }

    #[test]
    fn probabilities_scale_call_counts() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let rare = b.function("rare");
        let common = b.function("common");
        b.body(main)
            .call_p(rare, [0.01, 0.01])
            .call_p(common, [0.99, 0.99])
            .done();
        b.body(rare).work(1).done();
        b.body(common).work(1).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 20_000,
            ..InterpConfig::default()
        };
        let mut rt = CountingRuntime::default();
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        let rare_calls = rt.by_callee.get(&rare).copied().unwrap_or(0);
        let common_calls = rt.by_callee.get(&common).copied().unwrap_or(0);
        assert!(
            common_calls > rare_calls * 20,
            "common {common_calls} rare {rare_calls}"
        );
    }

    #[test]
    fn phase_switch_changes_hot_path() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let ph0 = b.function("hot_in_phase0");
        let ph1 = b.function("hot_in_phase1");
        b.body(main)
            .call_p(ph0, [0.95, 0.05])
            .call_p(ph1, [0.05, 0.95])
            .done();
        b.body(ph0).work(1).done();
        b.body(ph1).work(1).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 40_000,
            ..InterpConfig::default()
        };
        let mut rt = CountingRuntime::default();
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        let c0 = rt.by_callee[&ph0];
        let c1 = rt.by_callee[&ph1];
        // Both run in roughly equal total volume across the two phases.
        let ratio = c0 as f64 / c1 as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sampling_records_depths() {
        let p = linear_program();
        let cfg = InterpConfig {
            budget_calls: 5_000,
            sample_every: 100,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        assert_eq!(r.samples, 50);
        assert_eq!(r.sample_depths.len(), 50);
        assert_eq!(r.unsupported, 50, "null runtime cannot decode");
        assert_eq!(r.mismatches, 0);
    }

    #[test]
    fn work_based_sampling_fires_on_low_call_density() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let heavy = b.function("heavy");
        b.body(main).call(heavy).done();
        b.body(heavy).work(10_000).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 100,
            sample_every: 0,
            sample_every_work: 25_000,
            ..InterpConfig::default()
        };
        let r = Interpreter::new(&p, cfg).run(&mut NullRuntime::default());
        // ~100 calls x 10k work = ~1M work -> ~40 samples.
        assert!(r.samples >= 30, "got {}", r.samples);
        assert!(r.samples <= 50, "got {}", r.samples);
    }

    #[test]
    fn indirect_calls_hit_all_targets() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let t1 = b.function("t1");
        let t2 = b.function("t2");
        let t3 = b.function("t3");
        let table = b.table(vec![t1, t2, t3]);
        b.body(main)
            .indirect(table, TargetChoice::Uniform, [1.0, 1.0], 3)
            .done();
        for t in [t1, t2, t3] {
            b.body(t).work(1).done();
        }
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 3_000,
            ..InterpConfig::default()
        };
        let mut rt = CountingRuntime::default();
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        for t in [t1, t2, t3] {
            assert!(rt.by_callee.get(&t).copied().unwrap_or(0) > 500);
        }
    }

    #[test]
    fn skewed_choice_prefers_first_target() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let hot = b.function("hot");
        let cold = b.function("cold");
        let table = b.table(vec![hot, cold]);
        b.body(main)
            .indirect(table, TargetChoice::Skewed { hot: 0.9 }, [1.0, 1.0], 2)
            .done();
        b.body(hot).work(1).done();
        b.body(cold).work(1).done();
        let p = b.build(main);
        let cfg = InterpConfig {
            budget_calls: 10_000,
            ..InterpConfig::default()
        };
        let mut rt = CountingRuntime::default();
        let _ = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(rt.by_callee[&hot] > rt.by_callee[&cold] * 5);
    }

    #[test]
    fn overhead_is_ratio_of_costs() {
        let mut r = RunReport {
            base_cost: 1000,
            instr_cost: 25,
            ..RunReport::default()
        };
        assert!((r.overhead() - 0.025).abs() < 1e-12);
        r.base_cost = 0;
        assert_eq!(r.overhead(), 0.0);
    }

    /// Helper runtime counting per-callee call events.
    #[derive(Default)]
    struct CountingRuntime {
        by_callee: std::collections::HashMap<FunctionId, u64>,
    }

    impl ContextRuntime for CountingRuntime {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn attach(&mut self, _program: &Program) {}
        fn on_thread_start(
            &mut self,
            _tid: ThreadId,
            _root: FunctionId,
            _parent: Option<(ThreadId, CallSiteId)>,
        ) {
        }
        fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
            *self.by_callee.entry(ev.callee).or_default() += 1;
            0
        }
        fn on_return(&mut self, _ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
            0
        }
        fn sample(&mut self, _tid: ThreadId, _events: u64) -> (SampleResult, u64) {
            (SampleResult::Unsupported, 0)
        }
    }
}
