//! Audit of the `dacce-lint` rule catalogue and exit-code policy.
//!
//! Pins the fix for the bug where a warning-severity finding
//! (`hottest-zero`) printed a diagnostic but still exited 0, making the
//! rule invisible to CI: `lint::exit_code` must be nonzero whenever *any*
//! finding is reported, and the `--list-rules` catalogue must actually
//! cover the rules the verifier emits.

use std::collections::HashMap;

use dacce_analyze::lint::{self, Severity};
use dacce_analyze::verifier::verify_dicts;
use dacce_callgraph::analysis::classify_back_edges;
use dacce_callgraph::encode::encode_graph;
use dacce_callgraph::{
    CallGraph, CallSiteId, DecodeDict, DictStore, Dispatch, EncodeOptions, FunctionId, TimeStamp,
};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

#[test]
fn clean_runs_exit_zero() {
    assert_eq!(lint::exit_code(0, 0), 0);
}

#[test]
fn errors_exit_nonzero() {
    assert_ne!(lint::exit_code(1, 0), 0);
    assert_ne!(lint::exit_code(3, 2), 0);
}

/// The regression: warning-only findings (e.g. `hottest-zero`) used to
/// exit 0, so CI never saw them. Every finding must fail the run.
#[test]
fn warning_only_findings_exit_nonzero() {
    assert_ne!(lint::exit_code(0, 1), 0);
}

#[test]
fn rule_ids_are_unique_and_nonempty() {
    let mut seen = std::collections::HashSet::new();
    assert!(!lint::RULES.is_empty());
    for r in lint::RULES {
        assert!(!r.id.is_empty());
        assert!(!r.summary.is_empty());
        assert!(!r.enabled_by.is_empty());
        assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
    }
}

/// Every always-on rule the dictionary verifier can emit appears in the
/// catalogue with the severity the verifier actually stamps on it. Built
/// by constructing an encoding that trips both an error rule
/// (`encoding-partition`) and the warning rule (`hottest-zero`).
#[test]
fn catalogue_covers_every_emitted_rule() {
    // Single edge into f1 encoded 1 instead of 0: partition error plus
    // hottest-zero warning (same shape as the verifier's own unit test).
    let mut g = CallGraph::new();
    g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
    classify_back_edges(&mut g, &[f(0)]);
    let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
    let eid = g.edge_id(s(0), f(1)).unwrap();
    enc.edge_encoding.insert(eid, 1);
    enc.num_cc.insert(f(1), 2);
    enc.max_id = 1;
    let mut store = DictStore::new();
    store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
    let owners = HashMap::from([(s(0), f(0))]);
    let diags = verify_dicts(&store, &owners);
    assert!(!diags.is_empty());

    for d in &diags {
        let entry = lint::RULES
            .iter()
            .find(|r| r.id == d.rule)
            .unwrap_or_else(|| panic!("emitted rule {} missing from catalogue", d.rule));
        assert_eq!(
            entry.severity, d.severity,
            "catalogue severity for {} disagrees with the verifier",
            d.rule
        );
        assert_eq!(entry.enabled_by, "always");
    }
    // Both severities were exercised, so the exit-code policy matters here.
    assert!(diags.iter().any(|d| d.severity == Severity::Warning));
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    assert_ne!(lint::exit_code(errors, warnings), 0);
    // And a hypothetical warnings-only subset of the same findings still
    // fails the run.
    assert_ne!(lint::exit_code(0, warnings), 0);
}

/// Every rule the `--fragments` journal verifier emits appears in the
/// catalogue with the severity and enabling flag it is stamped with.
#[test]
fn fragment_rules_are_catalogued() {
    use dacce::{DecodeJournal, EncodedContext, JournalThread, SeamSeed};
    use dacce_analyze::verifier::verify_fragments;

    // A malformed document (fragment-journal) plus a journal whose only
    // seam seed cannot match any replayed state (fragment-seam).
    let entry = EncodedContext {
        ts: TimeStamp::ZERO,
        id: 0,
        leaf: f(0),
        root: f(0),
        cc: Vec::new(),
        spawn: None,
    };
    let bad_seed = EncodedContext {
        id: 99,
        ..entry.clone()
    };
    let journal = DecodeJournal {
        threads: vec![JournalThread {
            tid: 0,
            entry,
            ops: vec![dacce::JournalOp::Sample],
            seams: vec![SeamSeed {
                at: 1,
                ctx: bad_seed,
            }],
        }],
    };
    let mut diags = verify_fragments("not a journal");
    diags.extend(verify_fragments(&journal.to_text()));
    let emitted: std::collections::HashSet<&str> = diags.iter().map(|d| d.rule).collect();
    assert!(emitted.contains("fragment-journal"));
    assert!(emitted.contains("fragment-seam"));

    for d in &diags {
        let entry = lint::RULES
            .iter()
            .find(|r| r.id == d.rule)
            .unwrap_or_else(|| panic!("emitted rule {} missing from catalogue", d.rule));
        assert_eq!(entry.severity, d.severity);
        assert_eq!(entry.enabled_by, "--fragments");
    }
    assert_ne!(lint::exit_code(diags.len(), 0), 0);
}
