//! Validator for the flight-recorder postmortem format (`dacce-postmortem v1`).
//!
//! The runtime dumps a postmortem when it first enters degraded mode,
//! exhausts its re-encode retries, or is asked to via `force_postmortem`.
//! The dump is a small versioned text document: a key=value header, the
//! degraded-state counters, the generation table, the last re-encode
//! spans, and the peeked journal events as JSON. This module parses the
//! document and checks its internal consistency, reporting findings as
//! [`Diagnostic`]s under three rules:
//!
//! - `postmortem-format` — the document is structurally well-formed:
//!   version header, required keys in order, section order, exact CSV
//!   headers, parseable events JSON.
//! - `postmortem-spans` — the span table matches its declared count, is
//!   bounded by the recorder's window, and every row is a valid stitched
//!   span (`applied` is a flag, `begin_seq < end_seq`).
//! - `postmortem-consistent` — declared totals match the body: event
//!   count, monotone generation table, and the last generation row does
//!   not run ahead of the header's generation/max-id.

use dacce_obs::{events_from_json, EventRecord};

use crate::lint::{Diagnostic, Severity};

/// Upper bound on span rows a v1 postmortem may carry (the recorder keeps
/// the last 32 re-encode spans).
pub const POSTMORTEM_MAX_SPANS: usize = 32;

const HEADER: &str = "# dacce-postmortem v1";
const HEADER_KEYS: [&str; 6] = [
    "reason",
    "generation",
    "max_id",
    "spans",
    "events",
    "dropped",
];
const DEGRADED_KEYS: [&str; 9] = [
    "active",
    "trap_nodes",
    "degraded_traps",
    "reencode_retries",
    "cc_spill_events",
    "cc_spilled_peak",
    "lock_poisonings",
    "slot_failures",
    "batch_errors",
];
const GENERATIONS_CSV: &str = "generation,nodes,edges,max_id,cost";
const SPANS_CSV: &str = "tid,from,to,applied,cost,begin_seq,end_seq,pause_ns";

/// One row of the postmortem's generation table.
#[derive(Clone, Copy, Debug)]
pub struct GenerationRow {
    /// Encoding generation (the dictionary's `gTimeStamp`).
    pub generation: u64,
    /// Nodes in that generation's encoded graph.
    pub nodes: u64,
    /// Encoded edges in that generation.
    pub edges: u64,
    /// The generation's `maxID`.
    pub max_id: u64,
    /// Cost charged for producing the generation.
    pub cost: u64,
}

/// One row of the postmortem's re-encode span table.
#[derive(Clone, Copy, Debug)]
pub struct SpanRow {
    /// Thread that ran the re-encode.
    pub tid: u64,
    /// Generation the span started from.
    pub from: u64,
    /// Generation the span ended at.
    pub to: u64,
    /// 1 when the re-encode applied, 0 when it aborted.
    pub applied: u64,
    /// Cost charged for the span.
    pub cost: u64,
    /// Journal sequence number of the begin event.
    pub begin_seq: u64,
    /// Journal sequence number of the end event.
    pub end_seq: u64,
    /// Wall-clock pause attributed to the span, in nanoseconds.
    pub pause_ns: u64,
}

/// A parsed `dacce-postmortem v1` document.
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// Why the dump was captured (e.g. `degraded-entry`).
    pub reason: String,
    /// Encoding generation at capture time.
    pub generation: u64,
    /// `maxID` at capture time.
    pub max_id: u64,
    /// Declared number of span rows.
    pub spans_declared: u64,
    /// Declared number of journal events.
    pub events_declared: u64,
    /// Events the journal had dropped by capture time.
    pub dropped: u64,
    /// The `[degraded]` counters, in file order.
    pub degraded: Vec<(String, u64)>,
    /// The `[generations]` table rows.
    pub generations: Vec<GenerationRow>,
    /// The `[spans]` table rows.
    pub spans: Vec<SpanRow>,
    /// The `[events]` journal records.
    pub events: Vec<EventRecord>,
}

impl Postmortem {
    /// The value of one `[degraded]` counter, if present.
    #[must_use]
    pub fn degraded_counter(&self, key: &str) -> Option<u64> {
        self.degraded
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }
}

fn format_error(message: String) -> Diagnostic {
    Diagnostic {
        rule: "postmortem-format",
        severity: Severity::Error,
        ts: None,
        message,
        witness: Vec::new(),
    }
}

fn parse_kv<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected `{key}=...`, found {line:?}"))
}

fn parse_u64(line: &str, key: &str) -> Result<u64, String> {
    let value = parse_kv(line, key)?;
    value
        .parse::<u64>()
        .map_err(|_| format!("`{key}` is not an unsigned integer: {value:?}"))
}

fn parse_csv_row<const N: usize>(line: &str, header: &str) -> Result<[u64; N], String> {
    let mut out = [0u64; N];
    let mut fields = line.split(',');
    for slot in &mut out {
        let field = fields
            .next()
            .ok_or_else(|| format!("row {line:?} has fewer fields than `{header}`"))?;
        *slot = field
            .parse::<u64>()
            .map_err(|_| format!("non-numeric field {field:?} in row {line:?}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("row {line:?} has more fields than `{header}`"));
    }
    Ok(out)
}

/// Parses a `dacce-postmortem v1` document, or explains why it is
/// malformed. Semantic checks live in [`verify_postmortem`]; this only
/// enforces structure.
pub fn parse_postmortem(text: &str) -> Result<Postmortem, String> {
    let mut lines = text.lines();
    let first = lines.next().ok_or("empty postmortem document")?;
    if first != HEADER {
        return Err(format!("missing `{HEADER}` header, found {first:?}"));
    }

    let mut next = || lines.next().ok_or("document truncated".to_string());

    let reason = parse_kv(next()?, "reason")?.to_string();
    let mut header = [0u64; 5];
    for (slot, key) in header.iter_mut().zip(&HEADER_KEYS[1..]) {
        *slot = parse_u64(next()?, key)?;
    }
    let [generation, max_id, spans_declared, events_declared, dropped] = header;

    let section = next()?;
    if section != "[degraded]" {
        return Err(format!("expected `[degraded]`, found {section:?}"));
    }
    let mut degraded = Vec::with_capacity(DEGRADED_KEYS.len());
    for key in DEGRADED_KEYS {
        degraded.push((key.to_string(), parse_u64(next()?, key)?));
    }

    let section = next()?;
    if section != "[generations]" {
        return Err(format!("expected `[generations]`, found {section:?}"));
    }
    let csv = next()?;
    if csv != GENERATIONS_CSV {
        return Err(format!("expected `{GENERATIONS_CSV}`, found {csv:?}"));
    }
    let mut generations = Vec::new();
    let spans_line = loop {
        let line = next()?;
        if line == "[spans]" {
            break line;
        }
        let [generation, nodes, edges, max_id, cost] = parse_csv_row(line, GENERATIONS_CSV)?;
        generations.push(GenerationRow {
            generation,
            nodes,
            edges,
            max_id,
            cost,
        });
    };
    debug_assert_eq!(spans_line, "[spans]");
    let csv = next()?;
    if csv != SPANS_CSV {
        return Err(format!("expected `{SPANS_CSV}`, found {csv:?}"));
    }
    let mut spans = Vec::new();
    loop {
        let line = next()?;
        if line == "[events]" {
            break;
        }
        let [tid, from, to, applied, cost, begin_seq, end_seq, pause_ns] =
            parse_csv_row(line, SPANS_CSV)?;
        spans.push(SpanRow {
            tid,
            from,
            to,
            applied,
            cost,
            begin_seq,
            end_seq,
            pause_ns,
        });
    }
    let events_text: String = lines.collect::<Vec<_>>().join("\n");
    let events = events_from_json(&events_text)?;

    Ok(Postmortem {
        reason,
        generation,
        max_id,
        spans_declared,
        events_declared,
        dropped,
        degraded,
        generations,
        spans,
        events,
    })
}

/// Validates a postmortem document end to end: parses it (reporting any
/// structural problem under `postmortem-format`) and, when it parses,
/// checks the span table (`postmortem-spans`) and cross-section
/// consistency (`postmortem-consistent`).
#[must_use]
pub fn verify_postmortem(text: &str) -> Vec<Diagnostic> {
    let pm = match parse_postmortem(text) {
        Ok(pm) => pm,
        Err(e) => return vec![format_error(e)],
    };
    let mut out = Vec::new();
    let mut err = |rule: &'static str, message: String| {
        out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            ts: None,
            message,
            witness: Vec::new(),
        });
    };

    // --- postmortem-spans -------------------------------------------------
    if pm.spans.len() as u64 != pm.spans_declared {
        err(
            "postmortem-spans",
            format!(
                "header declares spans={} but the table has {} rows",
                pm.spans_declared,
                pm.spans.len()
            ),
        );
    }
    if pm.spans.len() > POSTMORTEM_MAX_SPANS {
        err(
            "postmortem-spans",
            format!(
                "span table has {} rows; the recorder keeps at most {POSTMORTEM_MAX_SPANS}",
                pm.spans.len()
            ),
        );
    }
    for (i, span) in pm.spans.iter().enumerate() {
        if span.applied > 1 {
            err(
                "postmortem-spans",
                format!("span row {i}: applied={} is not a 0/1 flag", span.applied),
            );
        }
        if span.begin_seq >= span.end_seq {
            err(
                "postmortem-spans",
                format!(
                    "span row {i}: begin_seq={} does not precede end_seq={}",
                    span.begin_seq, span.end_seq
                ),
            );
        }
        if span.applied == 1 && span.to < span.from {
            err(
                "postmortem-spans",
                format!(
                    "span row {i}: applied re-encode moves generation backwards ({} -> {})",
                    span.from, span.to
                ),
            );
        }
    }

    // --- postmortem-consistent --------------------------------------------
    if pm.events.len() as u64 != pm.events_declared {
        err(
            "postmortem-consistent",
            format!(
                "header declares events={} but {} parsed from [events]",
                pm.events_declared,
                pm.events.len()
            ),
        );
    }
    if let Some(active) = pm.degraded_counter("active") {
        if active > 1 {
            err(
                "postmortem-consistent",
                format!("[degraded] active={active} is not a 0/1 flag"),
            );
        }
    }
    for pair in pm.generations.windows(2) {
        if pair[1].generation <= pair[0].generation {
            err(
                "postmortem-consistent",
                format!(
                    "[generations] not strictly increasing: {} then {}",
                    pair[0].generation, pair[1].generation
                ),
            );
        }
        if pair[1].max_id < pair[0].max_id {
            err(
                "postmortem-consistent",
                format!(
                    "[generations] max_id shrinks across re-encodes: {} then {}",
                    pair[0].max_id, pair[1].max_id
                ),
            );
        }
    }
    if let Some(last) = pm.generations.last() {
        if last.generation > pm.generation {
            err(
                "postmortem-consistent",
                format!(
                    "last [generations] row is generation {} but the header captured generation {}",
                    last.generation, pm.generation
                ),
            );
        }
        if last.max_id > pm.max_id {
            err(
                "postmortem-consistent",
                format!(
                    "last [generations] row has max_id {} above the header's {}",
                    last.max_id, pm.max_id
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> String {
        concat!(
            "# dacce-postmortem v1\n",
            "reason=degraded-entry\n",
            "generation=2\n",
            "max_id=40\n",
            "spans=1\n",
            "events=2\n",
            "dropped=0\n",
            "[degraded]\n",
            "active=1\n",
            "trap_nodes=3\n",
            "degraded_traps=7\n",
            "reencode_retries=2\n",
            "cc_spill_events=0\n",
            "cc_spilled_peak=0\n",
            "lock_poisonings=0\n",
            "slot_failures=0\n",
            "batch_errors=0\n",
            "[generations]\n",
            "generation,nodes,edges,max_id,cost\n",
            "1,4,5,17,120\n",
            "2,6,9,40,310\n",
            "[spans]\n",
            "tid,from,to,applied,cost,begin_seq,end_seq,pause_ns\n",
            "0,1,2,1,310,5,9,1200\n",
            "[events]\n",
            "[\n",
            "{\"seq\":5,\"nanos\":100,\"tid\":0,\"event\":\"reencode_begin\",\"generation\":1},\n",
            "{\"seq\":9,\"nanos\":1300,\"tid\":0,\"event\":\"reencode_end\",\"generation\":2,",
            "\"applied\":1,\"cost\":310,\"nodes\":6,\"edges\":9,\"max_id\":40}\n",
            "]\n",
        )
        .to_string()
    }

    #[test]
    fn valid_document_parses_clean() {
        let doc = valid_doc();
        let pm = parse_postmortem(&doc).expect("parses");
        assert_eq!(pm.reason, "degraded-entry");
        assert_eq!(pm.generation, 2);
        assert_eq!(pm.spans.len(), 1);
        assert_eq!(pm.events.len(), 2);
        assert_eq!(pm.degraded_counter("trap_nodes"), Some(3));
        assert!(verify_postmortem(&doc).is_empty());
    }

    #[test]
    fn missing_header_is_a_format_error() {
        let doc = valid_doc().replace("# dacce-postmortem v1", "# dacce-postmortem v2");
        let findings = verify_postmortem(&doc);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "postmortem-format");
        assert!(findings[0].is_error());
    }

    #[test]
    fn wrong_csv_header_is_a_format_error() {
        let doc = valid_doc().replace(SPANS_CSV, "tid,from,to");
        let findings = verify_postmortem(&doc);
        assert_eq!(findings[0].rule, "postmortem-format");
    }

    #[test]
    fn garbled_events_json_is_a_format_error() {
        let doc = valid_doc().replace("\"event\":\"reencode_begin\"", "\"event\":\"nonsense\"");
        let findings = verify_postmortem(&doc);
        assert_eq!(findings[0].rule, "postmortem-format");
    }

    #[test]
    fn span_count_mismatch_is_reported() {
        let doc = valid_doc().replace("spans=1", "spans=3");
        let findings = verify_postmortem(&doc);
        assert!(findings
            .iter()
            .any(|d| d.rule == "postmortem-spans" && d.message.contains("spans=3")));
    }

    #[test]
    fn inverted_span_sequence_is_reported() {
        let doc = valid_doc().replace("0,1,2,1,310,5,9,1200", "0,1,2,1,310,9,5,1200");
        let findings = verify_postmortem(&doc);
        assert!(findings
            .iter()
            .any(|d| d.rule == "postmortem-spans" && d.message.contains("begin_seq")));
    }

    #[test]
    fn event_count_mismatch_is_reported() {
        let doc = valid_doc().replace("events=2", "events=5");
        let findings = verify_postmortem(&doc);
        assert!(findings
            .iter()
            .any(|d| d.rule == "postmortem-consistent" && d.message.contains("events=5")));
    }

    #[test]
    fn non_monotone_generation_table_is_reported() {
        let doc = valid_doc().replace("2,6,9,40,310", "1,6,9,40,310");
        let findings = verify_postmortem(&doc);
        assert!(findings
            .iter()
            .any(|d| d.rule == "postmortem-consistent" && d.message.contains("strictly")));
    }

    #[test]
    fn generation_table_ahead_of_header_is_reported() {
        let doc = valid_doc().replace("generation=2", "generation=1");
        let findings = verify_postmortem(&doc);
        assert!(findings
            .iter()
            .any(|d| d.rule == "postmortem-consistent" && d.message.contains("captured")));
    }

    /// A dump produced by the live engine validates clean end to end.
    #[test]
    fn engine_forced_dump_round_trips() {
        use dacce::{DacceConfig, DacceEngine};
        use dacce_callgraph::{CallSiteId, FunctionId};
        use dacce_program::runtime::CallDispatch;
        use dacce_program::{CostModel, ThreadId};
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            profiler_stride: 3,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(FunctionId::new(0));
        e.thread_start(ThreadId::MAIN, FunctionId::new(0), None);
        for _round in 0..6u32 {
            for i in 0..4u32 {
                let caller = if i == 0 { 0 } else { i };
                let _ = e.call(
                    ThreadId::MAIN,
                    CallSiteId::new(i),
                    FunctionId::new(caller),
                    FunctionId::new(i + 1),
                    CallDispatch::Direct,
                    false,
                );
            }
            for i in (0..4u32).rev() {
                let caller = if i == 0 { 0 } else { i };
                let _ = e.ret(
                    ThreadId::MAIN,
                    CallSiteId::new(i),
                    FunctionId::new(caller),
                    FunctionId::new(i + 1),
                );
            }
        }
        assert!(e.force_postmortem("unit-test"));
        let doc = e.postmortem().expect("dump captured").to_string();
        let pm = parse_postmortem(&doc).expect("engine dump parses");
        assert_eq!(pm.reason, "unit-test");
        let findings = verify_postmortem(&doc);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}
