//! Offline encoding verifier ("model checker" for Ball–Larus/DACCE
//! invariants).
//!
//! Given decode dictionaries plus the site-owner table, the verifier proves
//! the encoding invariants the runtime relies on and reports violations as
//! structured [`Diagnostic`]s. Rule catalogue:
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | `dict-monotone` | error | dictionary timestamps equal their store index (append-only `gTimeStamp`) |
//! | `owner-consistent` | error | every dictionary edge's caller owns its call site |
//! | `encoding-partition` | error | per node, the non-back incoming encodings partition `[0, numCC)` into caller-sized intervals (implies root-to-node path-id uniqueness and density) |
//! | `path-id-unique` | error | bounded exhaustive path enumeration finds no two acyclic paths with equal ids at a node |
//! | `unencoded-range` | error | `maxID = max numCC - 1`, so unencoded-edge ids land in `[maxID+1, 2*maxID+1]` without colliding with encoded ids |
//! | `hottest-zero` | warning | every join node has an incoming edge encoded 0 (the hottest edge after adaptive re-encoding) |
//! | `overflow-budget` | error | `2*maxID+1` and every path sum fit in 64 bits |
//! | `dispatch-table` | error | the exported compiled dispatch table agrees edge-for-edge with the latest dictionary (opt-in via [`verify_dispatch`] / `dacce-lint --dispatch`) |
//! | `superop-net-effect` | error | every exported superop re-folds — event-by-event over the compiled dispatch actions — to exactly the net effect it memoizes, and its window passes every compile-time refusal rule (opt-in via [`verify_superops`] / `dacce-lint --superops`) |
//! | `degraded-state` | error | the exported [`DegradedState`] arithmetic is internally consistent — traps recorded imply degraded mode, the trap counter covers every trap node, spill events and the spilled peak move together (opt-in via [`verify_degraded`] / `dacce-lint --degraded`) |
//! | `fleet-twin` | error | a shared-lineage tenant's export is identical — dictionaries, owners, compiled dispatch — to a standalone twin of the same program (opt-in via [`verify_fleet_twin`] / `dacce-lint --fleet`) |
//!
//! The partition check is the workhorse: if at every node the sorted
//! non-back incoming encodings are exactly the prefix sums of their
//! callers' `numCC` values and total `numCC(n)`, then by induction over the
//! acyclic (non-back) subgraph every root-to-node path has a distinct id in
//! `[0, numCC(n))` and every id is reachable — Ball–Larus minimality. The
//! path enumeration is a bounded secondary check that does not rely on that
//! induction.

use std::collections::HashMap;

use dacce::patch::EdgeAction;
use dacce::{DacceEngine, DispatchKind, OfflineDecoder, WindowOp};
use dacce_callgraph::encode::MAX_ENCODABLE_ID;
use dacce_callgraph::{CallSiteId, DecodeDict, DictEdge, DictStore, FunctionId, TimeStamp};

use crate::lint::{Diagnostic, Severity};

/// Cap on enumerated paths per dictionary in the `path-id-unique` check.
const MAX_PATHS: usize = 10_000;
/// Cap on DFS steps per dictionary in the `path-id-unique` check.
const MAX_STEPS: usize = 50_000;

/// Verifies every dictionary in `dicts` against `owners`.
///
/// Returns all findings, most severe first; an empty vector means every
/// invariant holds.
pub fn verify_dicts(
    dicts: &DictStore,
    owners: &HashMap<CallSiteId, FunctionId>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..dicts.len() {
        let ts = TimeStamp::new(u32::try_from(i).expect("dictionary count fits u32"));
        let Some(dict) = dicts.get(ts) else {
            out.push(Diagnostic {
                rule: "dict-monotone",
                severity: Severity::Error,
                ts: Some(ts),
                message: format!(
                    "store of length {} has no dictionary at index {i}",
                    dicts.len()
                ),
                witness: Vec::new(),
            });
            continue;
        };
        if dict.timestamp() != ts {
            out.push(Diagnostic {
                rule: "dict-monotone",
                severity: Severity::Error,
                ts: Some(ts),
                message: format!(
                    "dictionary at store index {i} is stamped ts={}",
                    dict.timestamp().raw()
                ),
                witness: Vec::new(),
            });
        }
        verify_dict(dict, owners, &mut out);
    }
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// Verifies an imported engine-state export.
pub fn verify_export(decoder: &OfflineDecoder) -> Vec<Diagnostic> {
    verify_dicts(decoder.dicts(), decoder.owners())
}

/// Verifies a live engine's dictionaries.
pub fn verify_engine(engine: &DacceEngine) -> Vec<Diagnostic> {
    verify_dicts(engine.dicts(), engine.site_owner_map())
}

/// Cross-checks the export's compiled dispatch table (the flat slot-indexed
/// fast path) against the latest dictionary (the logical encoding), rule
/// `dispatch-table`:
///
/// * each compiled site uses exactly one slot, and no two sites share one;
/// * every latest-dictionary edge has a compiled record for its
///   `(site, callee)` pair — non-back edges must be compiled
///   `Encoded { delta }` with `delta` equal to the edge's encoding, back
///   edges must be compiled with a ccStack action;
/// * every compiled `Encoded` record corresponds to a latest-dictionary
///   non-back edge with the same encoding (stale deltas from an earlier
///   generation are the bug this rule exists to catch). Extra ccStack
///   records without a dictionary edge are allowed: traps patch sites
///   before the edge is frozen into a dictionary.
///
/// Exports produced before the flat dispatch table carry no records;
/// those return no findings.
pub fn verify_dispatch(decoder: &OfflineDecoder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let records = decoder.dispatch();
    if records.is_empty() {
        return out;
    }
    let ts = decoder.dicts().latest().map(DecodeDict::timestamp);
    let err = |message: String, witness: Vec<String>| Diagnostic {
        rule: "dispatch-table",
        severity: Severity::Error,
        ts,
        message,
        witness,
    };

    // Slot discipline: one slot per site, one site per slot.
    let mut slot_of: HashMap<CallSiteId, u32> = HashMap::new();
    let mut site_of: HashMap<u32, CallSiteId> = HashMap::new();
    for r in records {
        match slot_of.insert(r.site, r.slot) {
            Some(prev) if prev != r.slot => out.push(err(
                format!(
                    "site {} compiled with two slots ({prev} and {})",
                    r.site, r.slot
                ),
                Vec::new(),
            )),
            _ => {}
        }
        match site_of.insert(r.slot, r.site) {
            Some(prev) if prev != r.site => out.push(err(
                format!("slot {} shared by sites {prev} and {}", r.slot, r.site),
                Vec::new(),
            )),
            _ => {}
        }
    }

    // Index compiled actions by (site, target); trap records carry none.
    let mut compiled: HashMap<(CallSiteId, FunctionId), EdgeAction> = HashMap::new();
    for r in records {
        if let (Some(target), Some(action)) = (r.target, r.action) {
            if compiled.insert((r.site, target), action).is_some() {
                out.push(err(
                    format!("duplicate dispatch record for ({}, {target})", r.site),
                    Vec::new(),
                ));
            }
        } else if r.kind != DispatchKind::Trap {
            out.push(err(
                format!("non-trap record for {} lacks target/action", r.site),
                Vec::new(),
            ));
        }
    }

    let Some(latest) = decoder.dicts().latest() else {
        out.push(err(
            "dispatch records present but no dictionary to check against".into(),
            Vec::new(),
        ));
        return out;
    };

    // Edge-for-edge agreement with the latest (current-generation)
    // dictionary.
    let mut edge_of: HashMap<(CallSiteId, FunctionId), &DictEdge> = HashMap::new();
    for e in latest.edges() {
        edge_of.insert((e.site, e.callee), e);
        let Some(&action) = compiled.get(&(e.site, e.callee)) else {
            out.push(err(
                format!(
                    "dictionary edge {} --{}--> {} has no compiled dispatch record",
                    e.caller, e.site, e.callee
                ),
                Vec::new(),
            ));
            continue;
        };
        if e.back {
            if !action.uses_ccstack() {
                out.push(err(
                    format!(
                        "back edge {} --{}--> {} compiled as {action:?} instead of a \
                         ccStack action",
                        e.caller, e.site, e.callee
                    ),
                    Vec::new(),
                ));
            }
        } else if action != (EdgeAction::Encoded { delta: e.encoding }) {
            out.push(err(
                format!(
                    "edge {} --{}--> {} is encoded {} in the dictionary but compiled \
                     as {action:?}",
                    e.caller, e.site, e.callee, e.encoding
                ),
                Vec::new(),
            ));
        }
    }
    for (&(site, target), &action) in &compiled {
        if let EdgeAction::Encoded { delta } = action {
            if !edge_of.contains_key(&(site, target)) {
                out.push(err(
                    format!(
                        "compiled record ({site}, {target}) adds {delta} but the latest \
                         dictionary has no such edge"
                    ),
                    Vec::new(),
                ));
            }
        }
    }
    out
}

/// Validates the export's [`DegradedState`] arithmetic, rule
/// `degraded-state`:
///
/// * trap nodes or degraded traps recorded ⇒ degraded mode is active
///   (degradation accounting only runs once the engine entered degraded
///   mode);
/// * `degraded_traps >= trap_nodes.len()` — every demoted function was
///   recorded by at least one trap;
/// * `cc_spill_events` and `cc_spilled_peak` are zero or non-zero
///   together — a shed entry is resident in the heap region, and the
///   region only fills by shedding.
///
/// Exports from runs that never degraded return no findings.
///
/// [`DegradedState`]: dacce::DegradedState
pub fn verify_degraded(decoder: &OfflineDecoder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let d = decoder.degraded();
    let err = |message: String| Diagnostic {
        rule: "degraded-state",
        severity: Severity::Error,
        ts: None,
        message,
        witness: Vec::new(),
    };

    if !d.active && (!d.trap_nodes.is_empty() || d.degraded_traps > 0) {
        out.push(err(format!(
            "{} trap node(s) and {} degraded trap(s) recorded but degraded \
             mode is not active",
            d.trap_nodes.len(),
            d.degraded_traps
        )));
    }
    if d.degraded_traps < d.trap_nodes.len() as u64 {
        out.push(err(format!(
            "{} functions demoted to trap-everything but only {} degraded \
             trap(s) counted; each demotion is recorded by a trap",
            d.trap_nodes.len(),
            d.degraded_traps
        )));
    }
    if (d.cc_spill_events == 0) != (d.cc_spilled_peak == 0) {
        out.push(err(format!(
            "ccStack spill counters disagree: {} spill event(s) but a \
             spilled peak of {} entries",
            d.cc_spill_events, d.cc_spilled_peak
        )));
    }
    out
}

/// Symbolic context id used by the superop re-fold: the unknown id at
/// window entry plus a wrapping offset, or a concrete constant (a ccStack
/// push resets the id to `maxID + 1`). Mirrors the runtime compiler's
/// symbolic domain so the lint proves the same identity independently.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SymId {
    /// `entry + off` (wrapping).
    Entry(u64),
    /// The concrete value `off`.
    Const(u64),
}

impl SymId {
    fn add(self, d: u64) -> SymId {
        match self {
            SymId::Entry(off) => SymId::Entry(off.wrapping_add(d)),
            SymId::Const(off) => SymId::Const(off.wrapping_add(d)),
        }
    }

    fn sub(self, d: u64) -> SymId {
        match self {
            SymId::Entry(off) => SymId::Entry(off.wrapping_sub(d)),
            SymId::Const(off) => SymId::Const(off.wrapping_sub(d)),
        }
    }

    /// Value equality when decidable for every possible entry id: same
    /// variant compares offsets, mixed variants are undecidable.
    fn eq_decidable(self, other: SymId) -> Option<bool> {
        match (self, other) {
            (SymId::Entry(a), SymId::Entry(b)) | (SymId::Const(a), SymId::Const(b)) => Some(a == b),
            _ => None,
        }
    }
}

/// The bookkeeping deltas a superop window folds to.
struct SuperOpFold {
    calls: u64,
    cc_ops: u64,
    compress_hits: u64,
    cc_peak: usize,
}

/// Re-folds one exported window over the compiled dispatch actions,
/// applying the runtime compiler's refusal rules. `Err` carries the rule
/// that fired.
fn refold_window(
    actions: &HashMap<(CallSiteId, FunctionId), (EdgeAction, bool)>,
    max_id: u64,
    window: &[WindowOp],
) -> Result<SuperOpFold, String> {
    if window.len() < 2 {
        return Err("window is shorter than one call/return pair".into());
    }
    if !matches!(window[0], WindowOp::Call { .. }) {
        return Err("window does not start with a call".into());
    }

    // One symbolically pushed ccStack entry: (id, site, target, folded
    // compressed repetitions).
    let mut id = SymId::Entry(0);
    let mut cc: Vec<(SymId, CallSiteId, FunctionId, u64)> = Vec::new();
    let mut open: Vec<EdgeAction> = Vec::new();
    let mut fold = SuperOpFold {
        calls: 0,
        cc_ops: 0,
        compress_hits: 0,
        cc_peak: 0,
    };

    for &op in window {
        match op {
            WindowOp::Call { site, target } => {
                let Some(&(action, tc_wrap)) = actions.get(&(site, target)) else {
                    return Err(format!(
                        "site {site} -> {target} has no compiled dispatch action \
                         (the runtime never publishes a superop over a trapping site)"
                    ));
                };
                if tc_wrap {
                    return Err(format!("site {site} -> {target} is TcStack-wrapped"));
                }
                match action {
                    EdgeAction::Encoded { delta } => id = id.add(delta),
                    EdgeAction::Unencoded => {
                        fold.cc_ops += 1;
                        cc.push((id, site, target, 0));
                        fold.cc_peak = fold.cc_peak.max(cc.len());
                        id = SymId::Const(max_id + 1);
                    }
                    EdgeAction::UnencodedCompressed => {
                        fold.cc_ops += 1;
                        let Some(top) = cc.last_mut() else {
                            return Err("compressed push at relative ccStack depth 0".into());
                        };
                        let hit = if top.1 == site && top.2 == target {
                            top.0.eq_decidable(id).ok_or_else(|| {
                                "compressed-push id compare crosses symbolic bases".to_string()
                            })?
                        } else {
                            false
                        };
                        if hit {
                            top.3 += 1;
                            fold.compress_hits += 1;
                        } else {
                            cc.push((id, site, target, 0));
                            fold.cc_peak = fold.cc_peak.max(cc.len());
                        }
                        id = SymId::Const(max_id + 1);
                    }
                }
                open.push(action);
                fold.calls += 1;
            }
            WindowOp::Ret => {
                let Some(action) = open.pop() else {
                    return Err("unbalanced window: return without an open call".into());
                };
                match action {
                    EdgeAction::Encoded { delta } => id = id.sub(delta),
                    EdgeAction::Unencoded => {
                        fold.cc_ops += 1;
                        let Some(e) = cc.pop() else {
                            return Err("plain pop on an empty folded ccStack".into());
                        };
                        if e.3 != 0 {
                            return Err(
                                "plain pop would discard folded compressed repetitions".into()
                            );
                        }
                        id = e.0;
                    }
                    EdgeAction::UnencodedCompressed => {
                        fold.cc_ops += 1;
                        let Some(top) = cc.last_mut() else {
                            return Err("compressed pop on an empty folded ccStack".into());
                        };
                        id = top.0;
                        if top.3 > 0 {
                            top.3 -= 1;
                        } else {
                            cc.pop();
                        }
                    }
                }
            }
        }
    }

    if !open.is_empty() {
        return Err(format!(
            "unbalanced window: {} call(s) left open",
            open.len()
        ));
    }
    if !cc.is_empty() || id != SymId::Entry(0) {
        return Err("folded final state is not the identity".into());
    }
    Ok(fold)
}

/// Renders a window as the export's token sequence, the witness shape of
/// every `superop-net-effect` finding.
fn render_window(window: &[WindowOp]) -> String {
    let mut out = String::new();
    for op in window {
        if !out.is_empty() {
            out.push(' ');
        }
        match *op {
            WindowOp::Call { site, target } => {
                use std::fmt::Write as _;
                let _ = write!(out, "c:{}:{}", site.raw(), target.raw());
            }
            WindowOp::Ret => out.push('r'),
        }
    }
    out
}

/// Cross-checks the export's compiled superop table against the compiled
/// dispatch table (rule `superop-net-effect`, opt-in via
/// [`verify_superops`] / `dacce-lint --superops`).
///
/// Every exported superop is re-folded event-by-event over the dispatch
/// actions of its window, with an independent implementation of the
/// runtime compiler's symbolic fold. A record fails when
///
/// * any refusal rule fires — an unresolved or TcStack-wrapped site, a
///   compressed push at relative depth 0, an undecidable id compare, an
///   unbalanced window, or a folded final state that is not the identity.
///   The runtime never publishes such a window, so an exported one means
///   the table and the dispatch state are from different generations (the
///   stale-superop bug this rule exists to catch);
/// * the re-folded net effect (calls, ccStack ops, compression hits,
///   ccStack peak) disagrees with the memoized counters the record
///   carries — a tampered or bit-rotted net delta.
///
/// Each finding's witness is the offending window in the export's own
/// token syntax. Exports without superop lines return no findings.
pub fn verify_superops(decoder: &OfflineDecoder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let records = decoder.superops();
    if records.is_empty() {
        return out;
    }
    let ts = decoder.dicts().latest().map(DecodeDict::timestamp);
    // The concrete maxID only parameterises the post-push constant; every
    // decidable compare is between offsets of the same constant, so a
    // missing dictionary (maxID 0) cannot flip a hit/miss outcome.
    let max_id = decoder.dicts().latest().map_or(0, DecodeDict::max_id);
    let err = |message: String, witness: Vec<String>| Diagnostic {
        rule: "superop-net-effect",
        severity: Severity::Error,
        ts,
        message,
        witness,
    };

    let mut actions: HashMap<(CallSiteId, FunctionId), (EdgeAction, bool)> = HashMap::new();
    for r in decoder.dispatch() {
        if let (Some(target), Some(action)) = (r.target, r.action) {
            actions.insert((r.site, target), (action, r.tc_wrap));
        }
    }

    for (i, rec) in records.iter().enumerate() {
        let witness = vec![render_window(&rec.window)];
        match refold_window(&actions, max_id, &rec.window) {
            Err(why) => out.push(err(
                format!("superop {i} is not compilable under the exported dispatch table: {why}"),
                witness,
            )),
            Ok(fold) => {
                let recorded = (rec.calls, rec.cc_ops, rec.compress_hits, rec.cc_peak);
                let refolded = (fold.calls, fold.cc_ops, fold.compress_hits, fold.cc_peak);
                if recorded != refolded {
                    out.push(err(
                        format!(
                            "superop {i} memoizes calls={}/ccOps={}/compressHits={}/ccPeak={} \
                             but its window re-folds to calls={}/ccOps={}/compressHits={}/ccPeak={}",
                            recorded.0,
                            recorded.1,
                            recorded.2,
                            recorded.3,
                            refolded.0,
                            refolded.1,
                            refolded.2,
                            refolded.3,
                        ),
                        witness,
                    ));
                }
            }
        }
    }
    out
}

/// Cross-checks a shared-lineage tenant's export against its standalone
/// twin (rule `fleet-twin`, opt-in via `dacce-lint --fleet`).
///
/// A tenant that attached to an encoding lineage must be observationally
/// identical to a tracker that built the same program on its own: same
/// dictionary chain (per generation: `maxID`, every `numCC`, every frozen
/// edge with its encoding), same site-owner table, same compiled dispatch
/// table. Any drift means the shared snapshot and the standalone encode
/// path disagree — the copy-on-write machinery leaked state between
/// tenants or adopted a generation it should not have.
pub fn verify_fleet_twin(tenant: &OfflineDecoder, twin: &OfflineDecoder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut err = |ts: Option<TimeStamp>, message: String| {
        out.push(Diagnostic {
            rule: "fleet-twin",
            severity: Severity::Error,
            ts,
            message,
            witness: Vec::new(),
        });
    };

    if tenant.dicts().len() != twin.dicts().len() {
        err(
            None,
            format!(
                "tenant has {} dictionary generation(s), twin has {}",
                tenant.dicts().len(),
                twin.dicts().len()
            ),
        );
    }
    // Functions whose numCC must agree: every edge endpoint or site owner
    // either side knows (covers isolated nodes such as a pre-edge `main`).
    let mut funcs: Vec<FunctionId> = tenant
        .owners()
        .values()
        .chain(twin.owners().values())
        .copied()
        .collect();
    for dec in [tenant, twin] {
        for i in 0..dec.dicts().len() {
            let ts = TimeStamp::new(u32::try_from(i).expect("dictionary count fits u32"));
            if let Some(dict) = dec.dicts().get(ts) {
                funcs.extend(dict.edges().iter().flat_map(|e| [e.caller, e.callee]));
            }
        }
    }
    funcs.sort_unstable();
    funcs.dedup();

    for i in 0..tenant.dicts().len().min(twin.dicts().len()) {
        let ts = TimeStamp::new(u32::try_from(i).expect("dictionary count fits u32"));
        let (Some(a), Some(b)) = (tenant.dicts().get(ts), twin.dicts().get(ts)) else {
            continue;
        };
        if a.max_id() != b.max_id() {
            err(
                Some(ts),
                format!(
                    "maxID {} on the tenant, {} on the twin",
                    a.max_id(),
                    b.max_id()
                ),
            );
        }
        for &f in &funcs {
            if a.num_cc(f) != b.num_cc(f) {
                err(
                    Some(ts),
                    format!(
                        "numCC({f}) is {:?} on the tenant, {:?} on the twin",
                        a.num_cc(f),
                        b.num_cc(f)
                    ),
                );
            }
        }
        let key = |e: &DictEdge| (e.site, e.callee);
        let mut a_edges: Vec<&DictEdge> = a.edges().iter().collect();
        let mut b_edges: Vec<&DictEdge> = b.edges().iter().collect();
        a_edges.sort_by_key(|e| key(e));
        b_edges.sort_by_key(|e| key(e));
        let b_by_key: HashMap<(CallSiteId, FunctionId), &DictEdge> =
            b_edges.iter().map(|e| (key(e), *e)).collect();
        for e in &a_edges {
            match b_by_key.get(&key(e)) {
                None => err(
                    Some(ts),
                    format!(
                        "edge {} -> {} at {} frozen on the tenant but absent on the twin",
                        e.caller, e.callee, e.site
                    ),
                ),
                Some(t) if (t.caller, t.encoding, t.back) != (e.caller, e.encoding, e.back) => {
                    err(
                        Some(ts),
                        format!(
                            "edge {} -> {} at {} encodes {} (back={}) on the tenant \
                             but {} (back={}) on the twin",
                            e.caller, e.callee, e.site, e.encoding, e.back, t.encoding, t.back
                        ),
                    );
                }
                Some(_) => {}
            }
        }
        if b_edges.len() != a_edges.len() {
            err(
                Some(ts),
                format!(
                    "{} frozen edge(s) on the tenant, {} on the twin",
                    a_edges.len(),
                    b_edges.len()
                ),
            );
        }
    }

    if tenant.owners() != twin.owners() {
        err(
            None,
            format!(
                "site-owner tables differ: {} entries on the tenant, {} on the twin",
                tenant.owners().len(),
                twin.owners().len()
            ),
        );
    }

    // Slot indices are fast-path allocation order, which depends on compile
    // timing, not on the encoding — compare the semantic content only.
    let semantic = |dec: &OfflineDecoder| {
        let mut v: Vec<_> = dec
            .dispatch()
            .iter()
            .map(|r| (r.site, r.target, r.kind, r.action, r.tc_wrap))
            .collect();
        v.sort_by_key(|&(site, target, ..)| (site, target.map(FunctionId::raw)));
        v
    };
    let (a_disp, b_disp) = (semantic(tenant), semantic(twin));
    if a_disp != b_disp {
        err(
            None,
            format!(
                "compiled dispatch tables differ: {} record(s) on the tenant, {} on the twin",
                a_disp.len(),
                b_disp.len()
            ),
        );
    }
    out
}

fn verify_dict(
    dict: &DecodeDict,
    owners: &HashMap<CallSiteId, FunctionId>,
    out: &mut Vec<Diagnostic>,
) {
    let ts = Some(dict.timestamp());

    // owner-consistent: every frozen edge agrees with the owner table.
    for e in dict.edges() {
        if owners.get(&e.site) != Some(&e.caller) {
            out.push(Diagnostic {
                rule: "owner-consistent",
                severity: Severity::Error,
                ts,
                message: format!(
                    "edge {} -> {} at {} but site owner table says {}",
                    e.caller,
                    e.callee,
                    e.site,
                    owners
                        .get(&e.site)
                        .map_or_else(|| "<missing>".to_string(), ToString::to_string)
                ),
                witness: Vec::new(),
            });
        }
    }

    // Group non-back incoming edges per callee once.
    let mut nodes: Vec<FunctionId> = Vec::new();
    let mut incoming: HashMap<FunctionId, Vec<&DictEdge>> = HashMap::new();
    for e in dict.edges() {
        if incoming.entry(e.callee).or_default().is_empty() {
            nodes.push(e.callee);
        }
        if !e.back {
            incoming.get_mut(&e.callee).expect("just inserted").push(e);
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = incoming.entry(e.caller) {
            slot.insert(Vec::new());
            nodes.push(e.caller);
        }
    }
    nodes.sort_by_key(|n| n.raw());
    nodes.dedup();

    let mut max_cc: u64 = 0;
    for &n in &nodes {
        let Some(cc) = dict.num_cc(n) else {
            out.push(Diagnostic {
                rule: "encoding-partition",
                severity: Severity::Error,
                ts,
                message: format!("node {n} appears in edges but has no numCC"),
                witness: Vec::new(),
            });
            continue;
        };
        max_cc = max_cc.max(cc);
        check_partition(dict, n, cc, &incoming, ts, out);
    }

    // unencoded-range: maxID must equal max numCC - 1 so the unencoded band
    // [maxID+1, 2*maxID+1] starts right above the greatest encodable id.
    let expected_max_id = max_cc.saturating_sub(1);
    if !nodes.is_empty() && dict.max_id() != expected_max_id {
        out.push(Diagnostic {
            rule: "unencoded-range",
            severity: Severity::Error,
            ts,
            message: format!(
                "maxID is {} but the greatest numCC is {max_cc}; unencoded ids in \
                 [{}, {}] would not sit flush above the encodable range",
                dict.max_id(),
                dict.max_id() + 1,
                2 * dict.max_id() + 1
            ),
            witness: Vec::new(),
        });
    }

    // overflow-budget: 2*maxID+1 must fit in u64.
    if u128::from(dict.max_id()) > MAX_ENCODABLE_ID {
        out.push(Diagnostic {
            rule: "overflow-budget",
            severity: Severity::Error,
            ts,
            message: format!(
                "maxID {} exceeds the 64-bit budget ({MAX_ENCODABLE_ID}); \
                 2*maxID+1 overflows",
                dict.max_id()
            ),
            witness: Vec::new(),
        });
    }

    enumerate_paths(dict, &nodes, &incoming, ts, out);
}

/// Per-node interval-partition check: sorted non-back incoming encodings
/// must be the exact prefix sums of their callers' `numCC` values, summing
/// to `numCC(n)`.
fn check_partition(
    dict: &DecodeDict,
    n: FunctionId,
    cc: u64,
    incoming: &HashMap<FunctionId, Vec<&DictEdge>>,
    ts: Option<TimeStamp>,
    out: &mut Vec<Diagnostic>,
) {
    let mut ins: Vec<&DictEdge> = incoming.get(&n).cloned().unwrap_or_default();
    if ins.is_empty() {
        // Heads (and nodes whose every incoming edge is a back edge) carry
        // exactly one context.
        if cc != 1 {
            out.push(Diagnostic {
                rule: "encoding-partition",
                severity: Severity::Error,
                ts,
                message: format!("{n} has no non-back incoming edges but numCC {cc} != 1"),
                witness: Vec::new(),
            });
        }
        return;
    }
    ins.sort_by_key(|e| e.encoding);
    if ins[0].encoding != 0 {
        out.push(Diagnostic {
            rule: "hottest-zero",
            severity: Severity::Warning,
            ts,
            message: format!(
                "{n} has no incoming edge encoded 0; the hottest incoming edge \
                 should be zero-weight after re-encoding"
            ),
            witness: witness_path(dict, incoming, ins[0]),
        });
    }
    let mut expect: u128 = 0;
    for e in &ins {
        if u128::from(e.encoding) != expect {
            out.push(Diagnostic {
                rule: "encoding-partition",
                severity: Severity::Error,
                ts,
                message: format!(
                    "incoming encodings of {n} do not partition [0, {cc}): edge \
                     from {} at {} is encoded {} where {expect} was expected",
                    e.caller, e.site, e.encoding
                ),
                witness: witness_path(dict, incoming, e),
            });
            return;
        }
        expect += u128::from(dict.num_cc(e.caller).unwrap_or(1));
    }
    if expect != u128::from(cc) {
        out.push(Diagnostic {
            rule: "encoding-partition",
            severity: Severity::Error,
            ts,
            message: format!("incoming intervals of {n} cover [0, {expect}) but numCC is {cc}"),
            witness: witness_path(dict, incoming, ins[ins.len() - 1]),
        });
    }
}

/// Bounded exhaustive enumeration of acyclic (non-back) root-to-node paths,
/// asserting no two distinct paths reach a node with the same id and that
/// no path sum overflows.
fn enumerate_paths(
    dict: &DecodeDict,
    nodes: &[FunctionId],
    incoming: &HashMap<FunctionId, Vec<&DictEdge>>,
    ts: Option<TimeStamp>,
    out: &mut Vec<Diagnostic>,
) {
    let mut outgoing: HashMap<FunctionId, Vec<&DictEdge>> = HashMap::new();
    for e in dict.edges() {
        if !e.back {
            outgoing.entry(e.caller).or_default().push(e);
        }
    }
    let heads: Vec<FunctionId> = nodes
        .iter()
        .copied()
        .filter(|n| incoming.get(n).is_none_or(Vec::is_empty))
        .collect();

    let mut seen: HashMap<(FunctionId, u128), Vec<String>> = HashMap::new();
    let mut paths = 0usize;
    let mut steps = 0usize;
    for &head in &heads {
        // DFS stack of (node, id-so-far, rendered path).
        let mut stack: Vec<(FunctionId, u128, Vec<String>)> =
            vec![(head, 0, vec![head.to_string()])];
        while let Some((node, id, path)) = stack.pop() {
            steps += 1;
            if paths >= MAX_PATHS || steps >= MAX_STEPS {
                return; // bounded check: silently stop past the cap
            }
            paths += 1;
            if id > u128::from(u64::MAX) {
                out.push(Diagnostic {
                    rule: "overflow-budget",
                    severity: Severity::Error,
                    ts,
                    message: format!("path id {id} at {node} overflows 64 bits"),
                    witness: path,
                });
                continue;
            }
            if let Some(prev) = seen.get(&(node, id)) {
                if *prev != path {
                    out.push(Diagnostic {
                        rule: "path-id-unique",
                        severity: Severity::Error,
                        ts,
                        message: format!("two distinct paths reach {node} with id {id}"),
                        witness: vec![prev.join(" "), path.join(" ")],
                    });
                    continue;
                }
            } else {
                seen.insert((node, id), path.clone());
            }
            for e in outgoing.get(&node).into_iter().flatten() {
                let mut next = path.clone();
                next.push(format!("--{}/+{}--> {}", e.site, e.encoding, e.callee));
                stack.push((e.callee, id + u128::from(e.encoding), next));
            }
        }
    }
}

/// Verifies a recorded decode journal (`dacce-journal v1`, see
/// `dacce::fragment`) for fragment-parallel decodability:
///
/// * the document parses (rule `fragment-journal`);
/// * every seam seed equals the replayed exit state of the preceding
///   fragment, so the parallel decoder's stitch pass proves every seam
///   without serial fallbacks (rule `fragment-seam`).
///
/// Seam verification is self-contained — effects replay without the
/// dictionaries — so no export file is needed.
#[must_use]
pub fn verify_fragments(text: &str) -> Vec<Diagnostic> {
    let journal = match dacce::DecodeJournal::parse(text) {
        Ok(j) => j,
        Err(e) => {
            return vec![Diagnostic {
                rule: "fragment-journal",
                severity: Severity::Error,
                ts: None,
                message: format!("malformed decode journal: {e}"),
                witness: Vec::new(),
            }]
        }
    };
    dacce::verify_seams(&journal)
        .into_iter()
        .map(|message| Diagnostic {
            rule: "fragment-seam",
            severity: Severity::Error,
            ts: None,
            message,
            witness: Vec::new(),
        })
        .collect()
}

/// Builds a root-to-node witness path ending in `last` by walking up the
/// first non-back incoming edge of each caller.
fn witness_path(
    dict: &DecodeDict,
    incoming: &HashMap<FunctionId, Vec<&DictEdge>>,
    last: &DictEdge,
) -> Vec<String> {
    let mut hops: Vec<&DictEdge> = vec![last];
    let mut at = last.caller;
    let mut guard = 0usize;
    while let Some(e) = incoming.get(&at).and_then(|v| v.first()) {
        hops.push(e);
        at = e.caller;
        guard += 1;
        if guard > dict.edge_count() {
            break; // corrupted dictionaries may cycle through "non-back" edges
        }
    }
    let mut rendered = vec![at.to_string()];
    for e in hops.iter().rev() {
        rendered.push(format!("--{}/+{}--> {}", e.site, e.encoding, e.callee));
    }
    vec![rendered.join(" ")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_callgraph::analysis::classify_back_edges;
    use dacce_callgraph::encode::encode_graph;
    use dacce_callgraph::{CallGraph, Dispatch, EncodeOptions};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn diamond_store() -> (DictStore, HashMap<CallSiteId, FunctionId>) {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(2), s(1), Dispatch::Direct);
        g.add_edge(f(1), f(3), s(2), Dispatch::Direct);
        g.add_edge(f(2), f(3), s(3), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(0)), (s(2), f(1)), (s(3), f(2))]);
        (store, owners)
    }

    #[test]
    fn valid_diamond_is_clean() {
        let (store, owners) = diamond_store();
        let diags = verify_dicts(&store, &owners);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn wrong_owner_is_reported() {
        let (store, mut owners) = diamond_store();
        owners.insert(s(3), f(1));
        let diags = verify_dicts(&store, &owners);
        assert!(diags
            .iter()
            .any(|d| d.rule == "owner-consistent" && d.is_error()));
    }

    #[test]
    fn duplicated_encoding_yields_partition_error_with_witness() {
        // Hand-build a dictionary where both edges into f3 are encoded 0 —
        // the classic duplicated-weight corruption. numCC(f3) stays 2, so
        // id 0 is ambiguous.
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(2), s(1), Dispatch::Direct);
        g.add_edge(f(1), f(3), s(2), Dispatch::Direct);
        g.add_edge(f(2), f(3), s(3), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let dup = g.edge_id(s(3), f(3)).unwrap();
        enc.edge_encoding.insert(dup, 0);
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(0)), (s(2), f(1)), (s(3), f(2))]);
        let diags = verify_dicts(&store, &owners);
        let partition = diags
            .iter()
            .find(|d| d.rule == "encoding-partition")
            .expect("partition violation detected");
        assert!(partition.is_error());
        assert!(!partition.witness.is_empty(), "witness path expected");
        assert!(partition.witness[0].contains("f3"));
        assert!(
            diags.iter().any(|d| d.rule == "path-id-unique"),
            "path enumeration should also find the id collision: {diags:?}"
        );
    }

    #[test]
    fn missing_zero_encoding_is_a_warning() {
        // Single edge into f1 encoded 1 instead of 0: partition error and
        // hottest-zero warning.
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let eid = g.edge_id(s(0), f(1)).unwrap();
        enc.edge_encoding.insert(eid, 1);
        enc.num_cc.insert(f(1), 2);
        enc.max_id = 1;
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0))]);
        let diags = verify_dicts(&store, &owners);
        assert!(diags
            .iter()
            .any(|d| d.rule == "hottest-zero" && d.severity == Severity::Warning));
        assert!(diags.iter().any(|d| d.rule == "encoding-partition"));
        // Errors sort before warnings.
        assert!(diags[0].is_error());
    }

    #[test]
    fn wrong_max_id_breaks_unencoded_range() {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(1), s(1), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert_eq!(enc.max_id, 1);
        enc.max_id = 7; // unencoded band shifted away from the encodable range
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(0))]);
        let diags = verify_dicts(&store, &owners);
        assert!(diags
            .iter()
            .any(|d| d.rule == "unencoded-range" && d.is_error()));
    }

    fn exported_engine_text() -> String {
        use dacce::{export_state, DacceConfig};
        use dacce_program::runtime::CallDispatch;
        use dacce_program::{CostModel, ThreadId};
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        for i in 0..4u32 {
            let caller = if i == 0 { f(0) } else { f(i) };
            let _ = e.call(
                ThreadId::MAIN,
                s(i),
                caller,
                f(i + 1),
                CallDispatch::Direct,
                false,
            );
        }
        // An indirect site with two targets exercises poly records.
        let _ = e.call(
            ThreadId::MAIN,
            s(9),
            f(4),
            f(6),
            CallDispatch::Indirect,
            false,
        );
        let _ = e.ret(ThreadId::MAIN, s(9), f(4), f(6));
        let _ = e.call(
            ThreadId::MAIN,
            s(9),
            f(4),
            f(7),
            CallDispatch::Indirect,
            false,
        );
        export_state(&e)
    }

    #[test]
    fn dispatch_table_agreement_is_clean() {
        let text = exported_engine_text();
        let decoder = dacce::import(&text).expect("imports");
        assert!(
            !decoder.dispatch().is_empty(),
            "export must carry dispatch records"
        );
        let diags = verify_dispatch(&decoder);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn stale_dispatch_delta_is_detected() {
        let text = exported_engine_text();
        let mut done = false;
        let corrupted: String = text
            .lines()
            .map(|l| {
                if !done && l.starts_with("dispatch") && l.contains("enc:") {
                    done = true;
                    let pos = l.find("enc:").unwrap();
                    let rest = &l[pos + 4..];
                    let end = rest.find(' ').unwrap_or(rest.len());
                    let delta: u64 = rest[..end].parse().unwrap();
                    format!("{}enc:{}{}", &l[..pos], delta + 17, &rest[end..])
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(done, "export must contain an encoded dispatch record");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_dispatch(&decoder);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "dispatch-table" && d.is_error()),
            "stale delta must be reported: {diags:?}"
        );
    }

    #[test]
    fn shared_dispatch_slot_is_detected() {
        let text = exported_engine_text();
        // Rewrite every dispatch slot to 0 so distinct sites collide.
        let corrupted: String = text
            .lines()
            .map(|l| {
                if l.starts_with("dispatch") {
                    let mut parts: Vec<&str> = l.split(' ').collect();
                    parts[2] = "0";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_dispatch(&decoder);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "dispatch-table" && d.message.contains("shared by sites")),
            "slot collision must be reported: {diags:?}"
        );
    }

    fn degraded_engine_text() -> String {
        use dacce::{export_state, DacceConfig, FaultPlan};
        use dacce_program::runtime::CallDispatch;
        use dacce_program::{CostModel, ThreadId};
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            fault: FaultPlan {
                max_id_cap: Some(0),
                ..FaultPlan::default()
            },
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // A diamond gives f3 two contexts, so maxID >= 1 exceeds the cap
        // and the first re-encode degrades; the extra edges afterwards
        // become degraded trap nodes.
        for &(site, caller, callee) in &[(0, 0, 1), (1, 1, 3), (2, 0, 2), (3, 2, 3)] {
            let _ = e.call(
                ThreadId::MAIN,
                s(site),
                f(caller),
                f(callee),
                CallDispatch::Direct,
                false,
            );
            let _ = e.ret(ThreadId::MAIN, s(site), f(caller), f(callee));
        }
        for i in 4..6u32 {
            let _ = e.call(
                ThreadId::MAIN,
                s(i),
                f(0),
                f(i),
                CallDispatch::Direct,
                false,
            );
            let _ = e.ret(ThreadId::MAIN, s(i), f(0), f(i));
        }
        let text = export_state(&e);
        assert!(
            text.lines().any(|l| l.starts_with("degraded ")),
            "run must actually degrade"
        );
        text
    }

    #[test]
    fn consistent_degraded_state_is_clean() {
        let decoder = dacce::import(&degraded_engine_text()).expect("imports");
        assert!(decoder.degraded().active, "degraded state roundtrips");
        let diags = verify_degraded(&decoder);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn inactive_degraded_state_with_traps_is_reported() {
        // Flip the `active` flag off while trap nodes remain exported.
        let corrupted: String = degraded_engine_text()
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("degraded 1 ") {
                    format!("degraded 0 {rest}")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_degraded(&decoder);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "degraded-state" && d.message.contains("not active")),
            "inactive-with-traps must be reported: {diags:?}"
        );
    }

    #[test]
    fn undercounted_degraded_traps_are_reported() {
        // Zero the degraded-trap counter while trap nodes remain.
        let corrupted: String = degraded_engine_text()
            .lines()
            .map(|l| {
                if l.starts_with("degraded ") {
                    let mut parts: Vec<&str> = l.split(' ').collect();
                    parts[2] = "0";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_degraded(&decoder);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "degraded-state" && d.message.contains("demoted")),
            "undercounted traps must be reported: {diags:?}"
        );
    }

    #[test]
    fn mismatched_spill_counters_are_reported() {
        // Events without a peak: peak is field 5 (0-indexed) after the rule
        // name — degraded <active> <traps> <retries> <spills> <peak> ...
        let corrupted: String = degraded_engine_text()
            .lines()
            .map(|l| {
                if l.starts_with("degraded ") {
                    let mut parts: Vec<&str> = l.split(' ').collect();
                    parts[4] = "3";
                    parts[5] = "0";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_degraded(&decoder);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "degraded-state" && d.message.contains("spill")),
            "spill-counter mismatch must be reported: {diags:?}"
        );
    }

    fn fleet_chain_def() -> dacce_fleet::ProgramDef {
        use dacce_fleet::DefEdge;
        dacce_fleet::ProgramDef {
            functions: vec!["main".into(), "a".into(), "b".into(), "c".into()],
            main: 0,
            call_sites: 3,
            edges: (0..3)
                .map(|d| DefEdge {
                    caller: d,
                    callee: d + 1,
                    site: d,
                    indirect: false,
                })
                .collect(),
            tail_fns: vec![],
            extra_roots: vec![],
        }
    }

    fn fleet_config() -> dacce::DacceConfig {
        dacce::DacceConfig {
            edge_threshold: 1,
            min_events_between_reencodes: 1,
            ..dacce::DacceConfig::default()
        }
    }

    /// The standalone twin of a fleet founder: same declarations, same warm
    /// seed, no lineage attached.
    fn standalone_twin(def: &dacce_fleet::ProgramDef) -> dacce::Tracker {
        let twin = dacce::Tracker::with_config(fleet_config());
        for name in &def.functions {
            let _ = twin.define_function(name);
        }
        for _ in 0..def.call_sites {
            let _ = twin.define_call_site();
        }
        let _ = twin.warm_start(def.main_fn(), &def.seed());
        twin
    }

    #[test]
    fn fleet_tenant_export_matches_standalone_twin() {
        use dacce::export_tracker_state;
        use dacce_fleet::Fleet;
        let def = fleet_chain_def();
        let fleet = Fleet::with_config(fleet_config());
        let _founder = fleet.register("svc-0", &def);
        let attached = fleet.register("svc-1", &def);
        let tenant = fleet.tracker(attached).expect("registered");

        let tenant_dec =
            dacce::import(&export_tracker_state(&tenant)).expect("tenant export imports");
        let twin_dec = dacce::import(&export_tracker_state(&standalone_twin(&def)))
            .expect("twin export imports");
        let diags = verify_fleet_twin(&tenant_dec, &twin_dec);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
        // The shared-lineage export also passes the full per-file audit.
        let own = verify_export(&tenant_dec);
        assert!(own.is_empty(), "tenant export unsound: {own:?}");
    }

    #[test]
    fn fleet_twin_flags_a_diverged_tenant() {
        use dacce::export_tracker_state;
        use dacce_fleet::Fleet;
        let def = fleet_chain_def();
        let fleet = Fleet::with_config(fleet_config());
        let _founder = fleet.register("svc-0", &def);
        let attached = fleet.register("svc-1", &def);
        let tenant = fleet.tracker(attached).expect("registered");

        // Diverge the tenant: discover an edge the twin never sees, then
        // let the fleet run the tenant's re-encode so the new edge freezes.
        let wild = tenant.define_function("wild");
        let wild_site = tenant.define_call_site();
        {
            let thread = tenant.register_thread(def.main_fn());
            drop(thread.call(wild_site, wild));
        }
        let _ = fleet.reencode(attached);
        fleet.poll();

        let tenant_dec =
            dacce::import(&export_tracker_state(&tenant)).expect("tenant export imports");
        let twin_dec = dacce::import(&export_tracker_state(&standalone_twin(&def)))
            .expect("twin export imports");
        let diags = verify_fleet_twin(&tenant_dec, &twin_dec);
        assert!(
            diags.iter().any(|d| d.rule == "fleet-twin" && d.is_error()),
            "diverged tenant must not pass the twin check: {diags:?}"
        );
    }

    /// Exports a tracker whose published snapshot carries a compiled
    /// superop (a nested two-call round plus a recursive self-call) so
    /// the superop lines sit next to the dispatch records they were
    /// compiled under.
    fn superop_tracker_text() -> String {
        use dacce::{export_tracker_state, BatchOp, Tracker};
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let a = tracker.define_function("a");
        let b = tracker.define_function("b");
        let sa = tracker.define_call_site();
        let sb = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        th.run_batch(&[
            BatchOp::Call {
                site: sa,
                target: a,
            },
            BatchOp::Call {
                site: sb,
                target: b,
            },
            BatchOp::Ret,
            BatchOp::Ret,
        ])
        .expect("warm batch runs");
        let window = vec![
            WindowOp::Call {
                site: sa,
                target: a,
            },
            WindowOp::Call {
                site: sb,
                target: b,
            },
            WindowOp::Ret,
            WindowOp::Ret,
        ];
        assert_eq!(tracker.install_superops(&[window]), 1, "window compiles");
        export_tracker_state(&tracker)
    }

    #[test]
    fn superop_table_agreement_is_clean() {
        let text = superop_tracker_text();
        let decoder = dacce::import(&text).expect("imports");
        assert!(
            !decoder.superops().is_empty(),
            "export must carry superop records"
        );
        let diags = verify_superops(&decoder);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn tampered_superop_net_delta_is_detected() {
        let text = superop_tracker_text();
        // Bump the memoized call count of the first superop line: the
        // window still folds, but to different counters.
        let mut done = false;
        let corrupted: String = text
            .lines()
            .map(|l| {
                if !done && l.starts_with("superop ") {
                    done = true;
                    let mut parts: Vec<String> = l.split(' ').map(str::to_string).collect();
                    let calls: u64 = parts[1].parse().unwrap();
                    parts[1] = (calls + 7).to_string();
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(done, "export must contain a superop line");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_superops(&decoder);
        let hit = diags
            .iter()
            .find(|d| d.rule == "superop-net-effect" && d.is_error())
            .expect("tampered net delta must be reported");
        assert!(
            hit.message.contains("re-folds to"),
            "finding names the counter disagreement: {hit:?}"
        );
        assert!(
            hit.witness
                .iter()
                .any(|w| w.contains("c:") && w.contains('r')),
            "finding carries the witness window: {hit:?}"
        );
    }

    #[test]
    fn superop_over_unresolved_site_is_detected() {
        let text = superop_tracker_text();
        // Rewrite the first call token of the first superop window to a
        // site/target pair the dispatch table never compiled: the re-fold
        // must refuse, which on an exported record means the table is
        // stale relative to the dispatch state.
        let mut done = false;
        let corrupted: String = text
            .lines()
            .map(|l| {
                if !done && l.starts_with("superop ") {
                    done = true;
                    let mut parts: Vec<String> = l.split(' ').map(str::to_string).collect();
                    parts[5] = "c:97:97".to_string();
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(done, "export must contain a superop line");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_superops(&decoder);
        assert!(
            diags.iter().any(|d| d.rule == "superop-net-effect"
                && d.is_error()
                && d.message.contains("not compilable")),
            "stale superop must be reported: {diags:?}"
        );
    }

    #[test]
    fn unbalanced_superop_window_is_detected() {
        let text = superop_tracker_text();
        // Append an extra return to the first superop window: the fold
        // pops past the window's own calls, a refusal the runtime
        // compiler would never let through.
        let mut done = false;
        let corrupted: String = text
            .lines()
            .map(|l| {
                if !done && l.starts_with("superop ") {
                    done = true;
                    format!("{l} r")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(done, "export must contain a superop line");
        let decoder = dacce::import(&corrupted).expect("still imports");
        let diags = verify_superops(&decoder);
        assert!(
            diags.iter().any(|d| d.rule == "superop-net-effect"
                && d.is_error()
                && d.message.contains("not compilable")),
            "unbalanced window must be reported: {diags:?}"
        );
    }

    #[test]
    fn export_without_superops_has_no_superop_findings() {
        let text = exported_engine_text();
        let decoder = dacce::import(&text).expect("imports");
        assert!(decoder.superops().is_empty());
        assert!(verify_superops(&decoder).is_empty());
    }

    #[test]
    fn back_edges_are_exempt_from_partition() {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(1), f(1), s(1), Dispatch::Direct); // self recursion
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(1))]);
        let diags = verify_dicts(&store, &owners);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    /// A hand-built two-fragment journal: the seam falls at op 3, where
    /// the replayed state is back to the entry state.
    fn fragment_journal(seam_id: u64) -> dacce::DecodeJournal {
        use dacce::{
            CallEffect, DecodeJournal, EncodedContext, JournalOp, JournalThread, RetEffect,
            SeamSeed,
        };
        let entry = EncodedContext {
            ts: TimeStamp::ZERO,
            id: 0,
            leaf: f(0),
            root: f(0),
            cc: Vec::new(),
            spawn: None,
        };
        let seam_ctx = EncodedContext {
            id: seam_id,
            ..entry.clone()
        };
        DecodeJournal {
            threads: vec![JournalThread {
                tid: 0,
                entry,
                ops: vec![
                    JournalOp::Call {
                        site: s(0),
                        target: f(1),
                        effect: CallEffect::Arith { delta: 5 },
                    },
                    JournalOp::Sample,
                    JournalOp::Ret {
                        caller: f(0),
                        effect: RetEffect::Arith { delta: 5 },
                    },
                    JournalOp::Call {
                        site: s(0),
                        target: f(1),
                        effect: CallEffect::Arith { delta: 5 },
                    },
                    JournalOp::Sample,
                    JournalOp::Ret {
                        caller: f(0),
                        effect: RetEffect::Arith { delta: 5 },
                    },
                ],
                seams: vec![SeamSeed {
                    at: 3,
                    ctx: seam_ctx,
                }],
            }],
        }
    }

    #[test]
    fn clean_journal_has_no_fragment_findings() {
        let text = fragment_journal(0).to_text();
        let diags = verify_fragments(&text);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn corrupt_seam_seed_is_flagged() {
        let text = fragment_journal(99).to_text();
        let diags = verify_fragments(&text);
        assert!(!diags.is_empty(), "corrupt seed must be reported");
        for d in &diags {
            assert_eq!(d.rule, "fragment-seam");
            assert!(d.is_error());
        }
    }

    #[test]
    fn malformed_journal_is_flagged() {
        let diags = verify_fragments("not a journal");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "fragment-journal");
        assert!(diags[0].is_error());
    }
}
