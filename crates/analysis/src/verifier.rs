//! Offline encoding verifier ("model checker" for Ball–Larus/DACCE
//! invariants).
//!
//! Given decode dictionaries plus the site-owner table, the verifier proves
//! the encoding invariants the runtime relies on and reports violations as
//! structured [`Diagnostic`]s. Rule catalogue:
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | `dict-monotone` | error | dictionary timestamps equal their store index (append-only `gTimeStamp`) |
//! | `owner-consistent` | error | every dictionary edge's caller owns its call site |
//! | `encoding-partition` | error | per node, the non-back incoming encodings partition `[0, numCC)` into caller-sized intervals (implies root-to-node path-id uniqueness and density) |
//! | `path-id-unique` | error | bounded exhaustive path enumeration finds no two acyclic paths with equal ids at a node |
//! | `unencoded-range` | error | `maxID = max numCC - 1`, so unencoded-edge ids land in `[maxID+1, 2*maxID+1]` without colliding with encoded ids |
//! | `hottest-zero` | warning | every join node has an incoming edge encoded 0 (the hottest edge after adaptive re-encoding) |
//! | `overflow-budget` | error | `2*maxID+1` and every path sum fit in 64 bits |
//!
//! The partition check is the workhorse: if at every node the sorted
//! non-back incoming encodings are exactly the prefix sums of their
//! callers' `numCC` values and total `numCC(n)`, then by induction over the
//! acyclic (non-back) subgraph every root-to-node path has a distinct id in
//! `[0, numCC(n))` and every id is reachable — Ball–Larus minimality. The
//! path enumeration is a bounded secondary check that does not rely on that
//! induction.

use std::collections::HashMap;

use dacce::{DacceEngine, OfflineDecoder};
use dacce_callgraph::encode::MAX_ENCODABLE_ID;
use dacce_callgraph::{CallSiteId, DecodeDict, DictEdge, DictStore, FunctionId, TimeStamp};

use crate::lint::{Diagnostic, Severity};

/// Cap on enumerated paths per dictionary in the `path-id-unique` check.
const MAX_PATHS: usize = 10_000;
/// Cap on DFS steps per dictionary in the `path-id-unique` check.
const MAX_STEPS: usize = 50_000;

/// Verifies every dictionary in `dicts` against `owners`.
///
/// Returns all findings, most severe first; an empty vector means every
/// invariant holds.
pub fn verify_dicts(
    dicts: &DictStore,
    owners: &HashMap<CallSiteId, FunctionId>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..dicts.len() {
        let ts = TimeStamp::new(u32::try_from(i).expect("dictionary count fits u32"));
        let Some(dict) = dicts.get(ts) else {
            out.push(Diagnostic {
                rule: "dict-monotone",
                severity: Severity::Error,
                ts: Some(ts),
                message: format!(
                    "store of length {} has no dictionary at index {i}",
                    dicts.len()
                ),
                witness: Vec::new(),
            });
            continue;
        };
        if dict.timestamp() != ts {
            out.push(Diagnostic {
                rule: "dict-monotone",
                severity: Severity::Error,
                ts: Some(ts),
                message: format!(
                    "dictionary at store index {i} is stamped ts={}",
                    dict.timestamp().raw()
                ),
                witness: Vec::new(),
            });
        }
        verify_dict(dict, owners, &mut out);
    }
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// Verifies an imported engine-state export.
pub fn verify_export(decoder: &OfflineDecoder) -> Vec<Diagnostic> {
    verify_dicts(decoder.dicts(), decoder.owners())
}

/// Verifies a live engine's dictionaries.
pub fn verify_engine(engine: &DacceEngine) -> Vec<Diagnostic> {
    verify_dicts(engine.dicts(), engine.site_owner_map())
}

fn verify_dict(
    dict: &DecodeDict,
    owners: &HashMap<CallSiteId, FunctionId>,
    out: &mut Vec<Diagnostic>,
) {
    let ts = Some(dict.timestamp());

    // owner-consistent: every frozen edge agrees with the owner table.
    for e in dict.edges() {
        if owners.get(&e.site) != Some(&e.caller) {
            out.push(Diagnostic {
                rule: "owner-consistent",
                severity: Severity::Error,
                ts,
                message: format!(
                    "edge {} -> {} at {} but site owner table says {}",
                    e.caller,
                    e.callee,
                    e.site,
                    owners
                        .get(&e.site)
                        .map_or_else(|| "<missing>".to_string(), ToString::to_string)
                ),
                witness: Vec::new(),
            });
        }
    }

    // Group non-back incoming edges per callee once.
    let mut nodes: Vec<FunctionId> = Vec::new();
    let mut incoming: HashMap<FunctionId, Vec<&DictEdge>> = HashMap::new();
    for e in dict.edges() {
        if incoming.entry(e.callee).or_default().is_empty() {
            nodes.push(e.callee);
        }
        if !e.back {
            incoming.get_mut(&e.callee).expect("just inserted").push(e);
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = incoming.entry(e.caller) {
            slot.insert(Vec::new());
            nodes.push(e.caller);
        }
    }
    nodes.sort_by_key(|n| n.raw());
    nodes.dedup();

    let mut max_cc: u64 = 0;
    for &n in &nodes {
        let Some(cc) = dict.num_cc(n) else {
            out.push(Diagnostic {
                rule: "encoding-partition",
                severity: Severity::Error,
                ts,
                message: format!("node {n} appears in edges but has no numCC"),
                witness: Vec::new(),
            });
            continue;
        };
        max_cc = max_cc.max(cc);
        check_partition(dict, n, cc, &incoming, ts, out);
    }

    // unencoded-range: maxID must equal max numCC - 1 so the unencoded band
    // [maxID+1, 2*maxID+1] starts right above the greatest encodable id.
    let expected_max_id = max_cc.saturating_sub(1);
    if !nodes.is_empty() && dict.max_id() != expected_max_id {
        out.push(Diagnostic {
            rule: "unencoded-range",
            severity: Severity::Error,
            ts,
            message: format!(
                "maxID is {} but the greatest numCC is {max_cc}; unencoded ids in \
                 [{}, {}] would not sit flush above the encodable range",
                dict.max_id(),
                dict.max_id() + 1,
                2 * dict.max_id() + 1
            ),
            witness: Vec::new(),
        });
    }

    // overflow-budget: 2*maxID+1 must fit in u64.
    if u128::from(dict.max_id()) > MAX_ENCODABLE_ID {
        out.push(Diagnostic {
            rule: "overflow-budget",
            severity: Severity::Error,
            ts,
            message: format!(
                "maxID {} exceeds the 64-bit budget ({MAX_ENCODABLE_ID}); \
                 2*maxID+1 overflows",
                dict.max_id()
            ),
            witness: Vec::new(),
        });
    }

    enumerate_paths(dict, &nodes, &incoming, ts, out);
}

/// Per-node interval-partition check: sorted non-back incoming encodings
/// must be the exact prefix sums of their callers' `numCC` values, summing
/// to `numCC(n)`.
fn check_partition(
    dict: &DecodeDict,
    n: FunctionId,
    cc: u64,
    incoming: &HashMap<FunctionId, Vec<&DictEdge>>,
    ts: Option<TimeStamp>,
    out: &mut Vec<Diagnostic>,
) {
    let mut ins: Vec<&DictEdge> = incoming.get(&n).cloned().unwrap_or_default();
    if ins.is_empty() {
        // Heads (and nodes whose every incoming edge is a back edge) carry
        // exactly one context.
        if cc != 1 {
            out.push(Diagnostic {
                rule: "encoding-partition",
                severity: Severity::Error,
                ts,
                message: format!("{n} has no non-back incoming edges but numCC {cc} != 1"),
                witness: Vec::new(),
            });
        }
        return;
    }
    ins.sort_by_key(|e| e.encoding);
    if ins[0].encoding != 0 {
        out.push(Diagnostic {
            rule: "hottest-zero",
            severity: Severity::Warning,
            ts,
            message: format!(
                "{n} has no incoming edge encoded 0; the hottest incoming edge \
                 should be zero-weight after re-encoding"
            ),
            witness: witness_path(dict, incoming, ins[0]),
        });
    }
    let mut expect: u128 = 0;
    for e in &ins {
        if u128::from(e.encoding) != expect {
            out.push(Diagnostic {
                rule: "encoding-partition",
                severity: Severity::Error,
                ts,
                message: format!(
                    "incoming encodings of {n} do not partition [0, {cc}): edge \
                     from {} at {} is encoded {} where {expect} was expected",
                    e.caller, e.site, e.encoding
                ),
                witness: witness_path(dict, incoming, e),
            });
            return;
        }
        expect += u128::from(dict.num_cc(e.caller).unwrap_or(1));
    }
    if expect != u128::from(cc) {
        out.push(Diagnostic {
            rule: "encoding-partition",
            severity: Severity::Error,
            ts,
            message: format!("incoming intervals of {n} cover [0, {expect}) but numCC is {cc}"),
            witness: witness_path(dict, incoming, ins[ins.len() - 1]),
        });
    }
}

/// Bounded exhaustive enumeration of acyclic (non-back) root-to-node paths,
/// asserting no two distinct paths reach a node with the same id and that
/// no path sum overflows.
fn enumerate_paths(
    dict: &DecodeDict,
    nodes: &[FunctionId],
    incoming: &HashMap<FunctionId, Vec<&DictEdge>>,
    ts: Option<TimeStamp>,
    out: &mut Vec<Diagnostic>,
) {
    let mut outgoing: HashMap<FunctionId, Vec<&DictEdge>> = HashMap::new();
    for e in dict.edges() {
        if !e.back {
            outgoing.entry(e.caller).or_default().push(e);
        }
    }
    let heads: Vec<FunctionId> = nodes
        .iter()
        .copied()
        .filter(|n| incoming.get(n).is_none_or(Vec::is_empty))
        .collect();

    let mut seen: HashMap<(FunctionId, u128), Vec<String>> = HashMap::new();
    let mut paths = 0usize;
    let mut steps = 0usize;
    for &head in &heads {
        // DFS stack of (node, id-so-far, rendered path).
        let mut stack: Vec<(FunctionId, u128, Vec<String>)> =
            vec![(head, 0, vec![head.to_string()])];
        while let Some((node, id, path)) = stack.pop() {
            steps += 1;
            if paths >= MAX_PATHS || steps >= MAX_STEPS {
                return; // bounded check: silently stop past the cap
            }
            paths += 1;
            if id > u128::from(u64::MAX) {
                out.push(Diagnostic {
                    rule: "overflow-budget",
                    severity: Severity::Error,
                    ts,
                    message: format!("path id {id} at {node} overflows 64 bits"),
                    witness: path,
                });
                continue;
            }
            if let Some(prev) = seen.get(&(node, id)) {
                if *prev != path {
                    out.push(Diagnostic {
                        rule: "path-id-unique",
                        severity: Severity::Error,
                        ts,
                        message: format!("two distinct paths reach {node} with id {id}"),
                        witness: vec![prev.join(" "), path.join(" ")],
                    });
                    continue;
                }
            } else {
                seen.insert((node, id), path.clone());
            }
            for e in outgoing.get(&node).into_iter().flatten() {
                let mut next = path.clone();
                next.push(format!("--{}/+{}--> {}", e.site, e.encoding, e.callee));
                stack.push((e.callee, id + u128::from(e.encoding), next));
            }
        }
    }
}

/// Builds a root-to-node witness path ending in `last` by walking up the
/// first non-back incoming edge of each caller.
fn witness_path(
    dict: &DecodeDict,
    incoming: &HashMap<FunctionId, Vec<&DictEdge>>,
    last: &DictEdge,
) -> Vec<String> {
    let mut hops: Vec<&DictEdge> = vec![last];
    let mut at = last.caller;
    let mut guard = 0usize;
    while let Some(e) = incoming.get(&at).and_then(|v| v.first()) {
        hops.push(e);
        at = e.caller;
        guard += 1;
        if guard > dict.edge_count() {
            break; // corrupted dictionaries may cycle through "non-back" edges
        }
    }
    let mut rendered = vec![at.to_string()];
    for e in hops.iter().rev() {
        rendered.push(format!("--{}/+{}--> {}", e.site, e.encoding, e.callee));
    }
    vec![rendered.join(" ")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_callgraph::analysis::classify_back_edges;
    use dacce_callgraph::encode::encode_graph;
    use dacce_callgraph::{CallGraph, Dispatch, EncodeOptions};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn diamond_store() -> (DictStore, HashMap<CallSiteId, FunctionId>) {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(2), s(1), Dispatch::Direct);
        g.add_edge(f(1), f(3), s(2), Dispatch::Direct);
        g.add_edge(f(2), f(3), s(3), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(0)), (s(2), f(1)), (s(3), f(2))]);
        (store, owners)
    }

    #[test]
    fn valid_diamond_is_clean() {
        let (store, owners) = diamond_store();
        let diags = verify_dicts(&store, &owners);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn wrong_owner_is_reported() {
        let (store, mut owners) = diamond_store();
        owners.insert(s(3), f(1));
        let diags = verify_dicts(&store, &owners);
        assert!(diags
            .iter()
            .any(|d| d.rule == "owner-consistent" && d.is_error()));
    }

    #[test]
    fn duplicated_encoding_yields_partition_error_with_witness() {
        // Hand-build a dictionary where both edges into f3 are encoded 0 —
        // the classic duplicated-weight corruption. numCC(f3) stays 2, so
        // id 0 is ambiguous.
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(2), s(1), Dispatch::Direct);
        g.add_edge(f(1), f(3), s(2), Dispatch::Direct);
        g.add_edge(f(2), f(3), s(3), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let dup = g.edge_id(s(3), f(3)).unwrap();
        enc.edge_encoding.insert(dup, 0);
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(0)), (s(2), f(1)), (s(3), f(2))]);
        let diags = verify_dicts(&store, &owners);
        let partition = diags
            .iter()
            .find(|d| d.rule == "encoding-partition")
            .expect("partition violation detected");
        assert!(partition.is_error());
        assert!(!partition.witness.is_empty(), "witness path expected");
        assert!(partition.witness[0].contains("f3"));
        assert!(
            diags.iter().any(|d| d.rule == "path-id-unique"),
            "path enumeration should also find the id collision: {diags:?}"
        );
    }

    #[test]
    fn missing_zero_encoding_is_a_warning() {
        // Single edge into f1 encoded 1 instead of 0: partition error and
        // hottest-zero warning.
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let eid = g.edge_id(s(0), f(1)).unwrap();
        enc.edge_encoding.insert(eid, 1);
        enc.num_cc.insert(f(1), 2);
        enc.max_id = 1;
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0))]);
        let diags = verify_dicts(&store, &owners);
        assert!(diags
            .iter()
            .any(|d| d.rule == "hottest-zero" && d.severity == Severity::Warning));
        assert!(diags.iter().any(|d| d.rule == "encoding-partition"));
        // Errors sort before warnings.
        assert!(diags[0].is_error());
    }

    #[test]
    fn wrong_max_id_breaks_unencoded_range() {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(0), f(1), s(1), Dispatch::Direct);
        classify_back_edges(&mut g, &[f(0)]);
        let mut enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        assert_eq!(enc.max_id, 1);
        enc.max_id = 7; // unencoded band shifted away from the encodable range
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(0))]);
        let diags = verify_dicts(&store, &owners);
        assert!(diags
            .iter()
            .any(|d| d.rule == "unencoded-range" && d.is_error()));
    }

    #[test]
    fn back_edges_are_exempt_from_partition() {
        let mut g = CallGraph::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        g.add_edge(f(1), f(1), s(1), Dispatch::Direct); // self recursion
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut store = DictStore::new();
        store.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());
        let owners = HashMap::from([(s(0), f(0)), (s(1), f(1))]);
        let diags = verify_dicts(&store, &owners);
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }
}
