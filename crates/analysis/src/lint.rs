//! Structured lint diagnostics emitted by the encoding verifier.
//!
//! Each finding carries a stable rule id, a severity, the dictionary
//! timestamp it applies to, a human-readable message and (where it makes
//! sense) a witness path demonstrating the violation — rather than a bare
//! `Err(String)` that the caller can only print.

use dacce_callgraph::TimeStamp;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a soundness violation (e.g. the hottest incoming
    /// edge of a node not being encoded as zero costs compactness, not
    /// correctness).
    Warning,
    /// A violated invariant: decoding may be ambiguous or ids may collide.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One verifier finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `encoding-partition`.
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Dictionary timestamp the finding applies to, if any.
    pub ts: Option<TimeStamp>,
    /// Human-readable description of the violation.
    pub message: String,
    /// Witness: a rendered root-to-node path (or pair of paths) showing the
    /// violation. Empty when no path witness applies.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// True when the finding is an [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(ts) = self.ts {
            write!(f, " ts={}", ts.raw())?;
        }
        write!(f, ": {}", self.message)?;
        for w in &self.witness {
            write!(f, "\n    witness: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_with_witnesses() {
        let d = Diagnostic {
            rule: "encoding-partition",
            severity: Severity::Error,
            ts: Some(TimeStamp::new(2)),
            message: "bad partition at f3".into(),
            witness: vec!["f0 --cs0/+0--> f3".into()],
        };
        let s = d.to_string();
        assert!(s.contains("error[encoding-partition]"));
        assert!(s.contains("ts=2"));
        assert!(s.contains("witness: f0"));
        assert!(d.is_error());
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }
}
