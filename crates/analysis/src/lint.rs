//! Structured lint diagnostics emitted by the encoding verifier.
//!
//! Each finding carries a stable rule id, a severity, the dictionary
//! timestamp it applies to, a human-readable message and (where it makes
//! sense) a witness path demonstrating the violation — rather than a bare
//! `Err(String)` that the caller can only print.

use dacce_callgraph::TimeStamp;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a soundness violation (e.g. the hottest incoming
    /// edge of a node not being encoded as zero costs compactness, not
    /// correctness).
    Warning,
    /// A violated invariant: decoding may be ambiguous or ids may collide.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One verifier finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `encoding-partition`.
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Dictionary timestamp the finding applies to, if any.
    pub ts: Option<TimeStamp>,
    /// Human-readable description of the violation.
    pub message: String,
    /// Witness: a rendered root-to-node path (or pair of paths) showing the
    /// violation. Empty when no path witness applies.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// True when the finding is an [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(ts) = self.ts {
            write!(f, " ts={}", ts.raw())?;
        }
        write!(f, ": {}", self.message)?;
        for w in &self.witness {
            write!(f, "\n    witness: {w}")?;
        }
        Ok(())
    }
}

/// One entry of the lint rule catalogue (`dacce-lint --list-rules`).
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule identifier, as stamped on [`Diagnostic::rule`].
    pub id: &'static str,
    /// Severity every finding of this rule carries.
    pub severity: Severity,
    /// One-line statement of the invariant the rule checks.
    pub summary: &'static str,
    /// How the rule is enabled: `"always"`, or the opt-in flag.
    pub enabled_by: &'static str,
}

/// Every rule `dacce-lint` can report, with its severity and the flag
/// that enables it. Kept in sync with the verifier by
/// `catalogue_covers_every_emitted_rule` in `tests/lint_rules.rs`.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "dict-monotone",
        severity: Severity::Error,
        summary: "dictionary timestamps equal their store index (append-only gTimeStamp)",
        enabled_by: "always",
    },
    RuleInfo {
        id: "owner-consistent",
        severity: Severity::Error,
        summary: "every dictionary edge's caller owns its call site",
        enabled_by: "always",
    },
    RuleInfo {
        id: "encoding-partition",
        severity: Severity::Error,
        summary:
            "per node, non-back incoming encodings partition [0, numCC) into caller-sized intervals",
        enabled_by: "always",
    },
    RuleInfo {
        id: "path-id-unique",
        severity: Severity::Error,
        summary: "bounded path enumeration finds no two acyclic paths with equal ids at a node",
        enabled_by: "always",
    },
    RuleInfo {
        id: "unencoded-range",
        severity: Severity::Error,
        summary: "maxID = max numCC - 1, so unencoded-edge ids land in [maxID+1, 2*maxID+1]",
        enabled_by: "always",
    },
    RuleInfo {
        id: "hottest-zero",
        severity: Severity::Warning,
        summary:
            "every join node has an incoming edge encoded 0 (the hottest edge after re-encoding)",
        enabled_by: "always",
    },
    RuleInfo {
        id: "overflow-budget",
        severity: Severity::Error,
        summary: "2*maxID+1 and every path sum fit in 64 bits",
        enabled_by: "always",
    },
    RuleInfo {
        id: "dispatch-table",
        severity: Severity::Error,
        summary:
            "the exported compiled dispatch table agrees edge-for-edge with the latest dictionary",
        enabled_by: "--dispatch",
    },
    RuleInfo {
        id: "superop-net-effect",
        severity: Severity::Error,
        summary: "every exported superop re-folds to exactly the net effect it memoizes",
        enabled_by: "--superops",
    },
    RuleInfo {
        id: "degraded-state",
        severity: Severity::Error,
        summary: "exported DegradedState arithmetic is internally consistent",
        enabled_by: "--degraded",
    },
    RuleInfo {
        id: "fragment-journal",
        severity: Severity::Error,
        summary: "a decode journal is a well-formed `dacce-journal v1` document",
        enabled_by: "--fragments",
    },
    RuleInfo {
        id: "fragment-seam",
        severity: Severity::Error,
        summary:
            "every seam seed equals the replayed exit state of the preceding fragment (parallel \
             decode needs no serial fallback)",
        enabled_by: "--fragments",
    },
    RuleInfo {
        id: "fleet-twin",
        severity: Severity::Error,
        summary: "a shared-lineage tenant's export is identical to its standalone twin",
        enabled_by: "--fleet",
    },
    RuleInfo {
        id: "metrics-missing",
        severity: Severity::Error,
        summary: "every series the runtime always exports is present in the Prometheus document",
        enabled_by: "--metrics",
    },
    RuleInfo {
        id: "metrics-dictionaries",
        severity: Severity::Error,
        summary: "dacce_dictionaries equals the number of exported dictionaries",
        enabled_by: "--metrics",
    },
    RuleInfo {
        id: "metrics-reencodes",
        severity: Severity::Error,
        summary: "applied re-encodings reconcile with the dictionary count",
        enabled_by: "--metrics",
    },
    RuleInfo {
        id: "metrics-generation",
        severity: Severity::Error,
        summary: "each dictionary's generation row exists with the right maxID",
        enabled_by: "--metrics",
    },
    RuleInfo {
        id: "metrics-edges",
        severity: Severity::Error,
        summary: "every dictionary edge was warm-seeded or trap-discovered",
        enabled_by: "--metrics",
    },
    RuleInfo {
        id: "postmortem-format",
        severity: Severity::Error,
        summary: "a flight-recorder dump is a well-formed `dacce-postmortem v1` document",
        enabled_by: "--postmortem",
    },
    RuleInfo {
        id: "postmortem-spans",
        severity: Severity::Error,
        summary: "the dump's span table matches its declared count and every span is valid",
        enabled_by: "--postmortem",
    },
    RuleInfo {
        id: "postmortem-consistent",
        severity: Severity::Error,
        summary: "declared totals match the dump body and the generation table is monotone",
        enabled_by: "--postmortem",
    },
];

/// Maps finding counts to the `dacce-lint` process exit code.
///
/// **Every** reported finding — warnings included — must produce a
/// nonzero exit: a rule that prints but exits 0 is invisible to CI, which
/// is how the warning-severity `hottest-zero` rule silently passed before
/// this was factored out and pinned by a regression test. Usage and
/// parse/IO problems use exit code 2 (handled by the binary before
/// findings are counted).
#[must_use]
pub fn exit_code(errors: usize, warnings: usize) -> u8 {
    u8::from(errors > 0 || warnings > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_with_witnesses() {
        let d = Diagnostic {
            rule: "encoding-partition",
            severity: Severity::Error,
            ts: Some(TimeStamp::new(2)),
            message: "bad partition at f3".into(),
            witness: vec!["f0 --cs0/+0--> f3".into()],
        };
        let s = d.to_string();
        assert!(s.contains("error[encoding-partition]"));
        assert!(s.contains("ts=2"));
        assert!(s.contains("witness: f0"));
        assert!(d.is_error());
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }
}
