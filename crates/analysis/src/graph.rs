//! Sound whole-program static call-graph construction.
//!
//! PCCE needs the complete call graph before encoding (§2.2, Issue 1 of the
//! DACCE paper). For direct calls the target is syntactic; for indirect
//! calls a conservative points-to analysis over-approximates the target set
//! — modelled here by each table's real targets plus its `pointsto_extra`
//! false positives; PLT calls are resolved post-link to their library
//! function. Spawn targets become additional graph roots and produce no
//! call edge (a spawned root starts a fresh context, §5.3).
//!
//! The resulting graph is a sound over-approximation of anything the
//! dynamic engine can discover: every runtime call event resolves its
//! callee from the same `CalleeSpec` the static pass enumerates, so every
//! dynamically discovered `(site, callee)` pair is present here.

use std::collections::{HashMap, HashSet};

use dacce_callgraph::{CallGraph, CallSiteId, Dispatch, FunctionId};
use dacce_program::{CalleeSpec, Program};

/// The static graph together with the side tables the encoder, runtime and
/// warm-start seeding need.
#[derive(Clone, Debug, Default)]
pub struct StaticGraph {
    /// The complete call graph (cold code and false positives included).
    pub graph: CallGraph,
    /// Function containing each call site.
    pub site_owner: HashMap<CallSiteId, FunctionId>,
    /// Entry functions: `main` plus every spawn target, in discovery order.
    pub roots: Vec<FunctionId>,
    /// Conservative target list per indirect site, real targets first.
    pub indirect_targets: HashMap<CallSiteId, Vec<FunctionId>>,
    /// Number of points-to false-positive edges added.
    pub false_positive_edges: usize,
    /// Functions containing at least one tail-call op (the static analogue
    /// of the engine's dynamically discovered `tail_fns` set).
    pub tail_functions: Vec<FunctionId>,
}

impl StaticGraph {
    /// Conservative indirect-target cardinality estimate for `site`:
    /// the number of distinct functions the site may dispatch to, or
    /// `None` if the site is not an indirect call.
    pub fn indirect_cardinality(&self, site: CallSiteId) -> Option<usize> {
        self.indirect_targets.get(&site).map(|targets| {
            let distinct: HashSet<FunctionId> = targets.iter().copied().collect();
            distinct.len()
        })
    }

    /// Largest indirect-target cardinality over all indirect sites
    /// (0 when the program has no indirect calls). High-cardinality sites
    /// are the main source of PCCE false-positive blowup (§2.2).
    pub fn max_indirect_cardinality(&self) -> usize {
        self.indirect_targets
            .keys()
            .filter_map(|&s| self.indirect_cardinality(s))
            .max()
            .unwrap_or(0)
    }
}

/// Builds the whole-program static call graph of `program`.
///
/// Roots are collected through a hash set (insertion order preserved in
/// [`StaticGraph::roots`]) so repeated spawn targets cost O(1) instead of a
/// linear scan per spawn op.
pub fn build_static_graph(program: &Program) -> StaticGraph {
    let mut out = StaticGraph::default();
    let mut root_set: HashSet<FunctionId> = HashSet::new();
    out.graph.ensure_node(program.main);
    out.roots.push(program.main);
    root_set.insert(program.main);

    for (owner, op) in program.call_ops() {
        out.site_owner.insert(op.site, owner);
        match &op.callee {
            CalleeSpec::Direct(t) => {
                out.graph.add_edge(owner, *t, op.site, Dispatch::Direct);
            }
            CalleeSpec::Plt(t) => {
                out.graph.add_edge(owner, *t, op.site, Dispatch::Plt);
            }
            CalleeSpec::Spawn(t) => {
                out.graph.ensure_node(*t);
                if root_set.insert(*t) {
                    out.roots.push(*t);
                }
            }
            CalleeSpec::Indirect { table, .. } => {
                let tbl = &program.tables[*table as usize];
                let mut targets = Vec::new();
                for &t in &tbl.targets {
                    out.graph.add_edge(owner, t, op.site, Dispatch::Indirect);
                    targets.push(t);
                }
                for &t in &tbl.pointsto_extra {
                    let (_, new) = out.graph.add_edge(owner, t, op.site, Dispatch::Indirect);
                    if new {
                        out.false_positive_edges += 1;
                    }
                    targets.push(t);
                }
                out.indirect_targets.insert(op.site, targets);
            }
        }
    }
    out.tail_functions = program.functions_with_tail_calls();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::model::TargetChoice;

    #[test]
    fn repeated_spawn_targets_are_rooted_once_in_order() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let w1 = b.function("w1");
        let w2 = b.function("w2");
        b.body(main)
            .spawn(w1, [1.0, 1.0])
            .spawn(w2, [1.0, 1.0])
            .spawn(w1, [1.0, 1.0])
            .done();
        b.body(w1).work(1).done();
        b.body(w2).work(1).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.roots, vec![main, w1, w2]);
    }

    #[test]
    fn tail_functions_and_cardinality_are_reported() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let t1 = b.function("t1");
        let t2 = b.function("t2");
        let fp = b.function("fp");
        let table = b.table_with_extra(vec![t1, t2], vec![fp]);
        b.body(main)
            .call(a)
            .indirect(table, TargetChoice::Uniform, [1.0, 1.0], 1)
            .done();
        b.body(a).tail(t1, [1.0, 1.0]).done();
        b.body(t1).work(1).done();
        b.body(t2).work(1).done();
        b.body(fp).work(1).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.tail_functions, vec![a]);
        let site = p
            .call_ops()
            .find(|(_, op)| matches!(op.callee, CalleeSpec::Indirect { .. }))
            .unwrap()
            .1
            .site;
        assert_eq!(sg.indirect_cardinality(site), Some(3));
        assert_eq!(sg.max_indirect_cardinality(), 3);
        let direct_site = p.call_ops().next().unwrap().1.site;
        assert_eq!(sg.indirect_cardinality(direct_site), None);
    }

    #[test]
    fn static_graph_includes_cold_code_and_false_positives() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let hot = b.function("hot");
        let cold = b.function("cold_error_handler");
        let fp = b.function("never_a_target");
        let table = b.table_with_extra(vec![hot], vec![fp]);
        b.body(main)
            .call(hot)
            .call_p(cold, [0.0, 0.0]) // never executes, statically present
            .indirect(table, TargetChoice::Uniform, [1.0, 1.0], 1)
            .done();
        b.body(hot).work(1).done();
        b.body(cold).work(1).done();
        b.body(fp).work(1).done();
        let p = b.build(main);

        let sg = build_static_graph(&p);
        assert_eq!(sg.graph.node_count(), 4);
        // Edges: main->hot (direct), main->cold, main->hot (indirect),
        // main->fp (false positive).
        assert_eq!(sg.graph.edge_count(), 4);
        assert_eq!(sg.false_positive_edges, 1);
        assert_eq!(sg.roots, vec![main]);
        let targets = &sg.indirect_targets[&p.call_ops().nth(2).unwrap().1.site];
        assert_eq!(targets, &vec![hot, fp]);
    }

    #[test]
    fn spawn_targets_become_roots() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let worker = b.function("worker");
        b.body(main).spawn(worker, [1.0, 1.0]).done();
        b.body(worker).work(1).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.roots, vec![main, worker]);
        assert!(sg.graph.contains_node(worker));
    }

    #[test]
    fn site_owner_is_recorded_for_every_call_op() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        b.body(main).call(a).done();
        b.body(a).call_p(a, [0.5, 0.5]).done();
        let p = b.build(main);
        let sg = build_static_graph(&p);
        assert_eq!(sg.site_owner.len(), 2);
        let (owner0, op0) = p.call_ops().next().unwrap();
        assert_eq!(sg.site_owner[&op0.site], owner0);
    }
}
