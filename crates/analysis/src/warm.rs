//! Warm-start seeding: turn a static analysis into an engine seed.
//!
//! DACCE normally starts from an empty graph, so every first invocation of
//! an edge traps (§3.1). Seeding the engine with the sound static graph
//! removes those cold-start traps entirely: every statically known
//! `(site, callee)` pair already has an encoded patch before the first
//! call executes. Soundness of the over-approximation (see
//! [`crate::graph`]) guarantees the runtime never discovers an edge outside
//! the seed, so warm-started runs trap only if the engine pruned part of
//! the seed to stay inside the 64-bit id budget.

use dacce::{SeedEdge, WarmStartSeed};
use dacce_program::Program;

use crate::passes::analyze;

/// Builds a [`WarmStartSeed`] for `program` from the full static analysis.
///
/// The seed carries the static roots (spawn targets must be registered
/// before their threads start), every static call edge, and the statically
/// known tail-calling functions — the engine only learns `tail_fns` inside
/// its trap handler, which seeded sites never reach, so omitting them would
/// corrupt tail-call contexts (Figure 7a).
pub fn warm_seed(program: &Program) -> WarmStartSeed {
    let analysis = analyze(program);
    let edges = analysis
        .graph
        .graph
        .edges()
        .map(|(_, e)| SeedEdge {
            caller: e.caller,
            callee: e.callee,
            site: e.site,
            dispatch: e.dispatch,
        })
        .collect();
    WarmStartSeed {
        roots: analysis.graph.roots.clone(),
        edges,
        tail_fns: analysis.tails.tail_callers.iter().copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;

    #[test]
    fn seed_covers_edges_roots_and_tails() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let t = b.function("t");
        let w = b.function("w");
        b.body(main).call(a).spawn(w, [1.0, 1.0]).done();
        b.body(a).tail(t, [1.0, 1.0]).done();
        b.body(t).work(1).done();
        b.body(w).work(1).done();
        let p = b.build(main);
        let seed = warm_seed(&p);
        assert_eq!(seed.roots, vec![main, w]);
        assert_eq!(seed.edges.len(), 2); // main->a, a->t; spawn adds no edge
        assert!(seed.edges.iter().all(|e| e.caller == main || e.caller == a));
        assert_eq!(seed.tail_fns, vec![a]);
    }
}
