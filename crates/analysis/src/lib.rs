//! # dacce-analyze — static analysis and encoding verification for DACCE
//!
//! Three cooperating passes over the `dacce-program` model and exported
//! engine state:
//!
//! 1. **Sound static call graph** ([`graph`], [`passes`]) — the
//!    over-approximate whole-program graph (generalized from
//!    `pcce::pointsto`) plus SCC condensation, ahead-of-time back-edge
//!    classification, tail-call reachability and per-site indirect-target
//!    cardinality estimates.
//! 2. **Encoding verifier** ([`verifier`], [`lint`]) — proves the
//!    Ball–Larus/DACCE invariants of every decode dictionary (path-id
//!    uniqueness, unencoded-id range correctness, hottest-edge zero
//!    weight, overflow freedom, timestamp monotonicity) and reports
//!    violations as structured diagnostics with witness paths.
//! 3. **Warm start** ([`warm`]) — converts the static graph into a
//!    [`dacce::WarmStartSeed`] that pre-seeds the dynamic engine, removing
//!    first-invocation traps.
//!
//! The `dacce-lint` binary in this crate audits `dacce-export v1` engine
//! state files with the verifier and is wired into CI over the workload
//! suite; it also validates flight-recorder postmortem dumps
//! ([`postmortem`], `--postmortem`). The `dacce-flame` binary merges
//! collapsed-stack flame exports and decodes journal JSON into them.

#![warn(missing_docs)]

pub mod graph;
pub mod lint;
pub mod metrics;
pub mod passes;
pub mod postmortem;
pub mod verifier;
pub mod warm;

pub use graph::{build_static_graph, StaticGraph};
pub use lint::{Diagnostic, Severity};
pub use metrics::{verify_metrics, PromDoc, PromSample};
pub use passes::{analyze, StaticAnalysis, TailAnalysis};
pub use postmortem::{parse_postmortem, verify_postmortem, Postmortem};
pub use verifier::{verify_dicts, verify_engine, verify_export};
pub use warm::warm_seed;
