//! `dacce-flame` — merge collapsed-stack flame exports offline.
//!
//! Usage: `dacce-flame [--export <export-file>] [--lineage <hex>] [--json] [--out <file>] <input>...`
//!
//! Each input is either a collapsed-stack flame file (`# dacce-flame v1`,
//! as written by `dacce-top --flame`) or a journal event dump (the JSON
//! array written by `dacce-top --journal-out`). Flame files are parsed
//! directly. Journal dumps are decoded: every `sample` event whose
//! context was fully encoded (depth 0 — no ccStack suspension) is
//! resolved against the `dacce-export v1` state given with `--export`
//! into a root-first frame stack `f<root>;…;f<leaf>`; deeper samples
//! cannot be reconstructed from the event alone and are counted as
//! skipped on stderr. Journal-derived stacks are tagged with the
//! `--lineage` hex hash when given (so fleet merges key correctly), 0
//! otherwise.
//!
//! All inputs are merged into one graph: the lineage tag survives when
//! every input agrees and is zeroed on mixed merges. The result is
//! written to `--out` (or stdout) in collapsed-stack text, or as JSON
//! with `--json`. Exits 2 on usage, IO or parse errors.

use std::process::ExitCode;

use dacce::{EncodedContext, OfflineDecoder};
use dacce_callgraph::{FunctionId, TimeStamp};
use dacce_obs::{events_from_json, EventKind, FlameGraph};

fn usage() -> ExitCode {
    eprintln!(
        "usage: dacce-flame [--export <export-file>] [--lineage <hex>] [--json] \
         [--out <file>] <flame-or-journal-file>..."
    );
    ExitCode::from(2)
}

/// Decodes the `sample` events of a journal dump into a flame graph.
/// Returns the graph plus how many samples were skipped (suspended
/// contexts or decode failures).
fn flame_from_journal(
    text: &str,
    decoder: Option<&OfflineDecoder>,
    lineage: u64,
) -> Result<(FlameGraph, usize), String> {
    let events = events_from_json(text)?;
    let mut graph = FlameGraph::new(lineage);
    let mut skipped = 0usize;
    for ev in &events {
        let EventKind::Sample {
            generation,
            id,
            leaf,
            root,
            weight,
            depth,
            ..
        } = ev.kind
        else {
            continue;
        };
        let Some(decoder) = decoder else {
            return Err("journal input needs --export <export-file> to decode samples".into());
        };
        if depth != 0 {
            // The event only carries the ccStack depth, not its entries;
            // a suspended context cannot be reconstructed offline.
            skipped += 1;
            continue;
        }
        let ctx = EncodedContext {
            ts: TimeStamp::new(generation),
            id,
            leaf: FunctionId::new(leaf),
            root: FunctionId::new(root),
            cc: Vec::new(),
            spawn: None,
        };
        match decoder.decode(&ctx) {
            Ok(path) => {
                let frames: Vec<String> = path.0.iter().map(|s| s.func.to_string()).collect();
                graph.add(&frames, u64::from(weight));
            }
            Err(_) => skipped += 1,
        }
    }
    Ok((graph, skipped))
}

fn main() -> ExitCode {
    let mut export: Option<String> = None;
    let mut lineage = 0u64;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--export" => match args.next() {
                Some(path) => export = Some(path),
                None => return usage(),
            },
            "--lineage" => match args.next().map(|h| u64::from_str_radix(&h, 16)) {
                Some(Ok(h)) => lineage = h,
                _ => return usage(),
            },
            "--json" => json = true,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => return usage(),
            },
            _ => inputs.push(arg),
        }
    }
    if inputs.is_empty() {
        return usage();
    }

    let decoder: Option<OfflineDecoder> = match &export {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match dacce::import(&text) {
                Ok(d) => Some(d),
                Err(e) => {
                    eprintln!("{path}: cannot import: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let mut merged: Option<FlameGraph> = None;
    let mut skipped_total = 0usize;
    for input in &inputs {
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{input}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        let parsed = if text.starts_with("# dacce-flame v1") {
            FlameGraph::parse(&text)
        } else {
            flame_from_journal(&text, decoder.as_ref(), lineage).map(|(graph, skipped)| {
                if skipped > 0 {
                    eprintln!("{input}: {skipped} suspended/undecodable sample(s) skipped");
                    skipped_total += skipped;
                }
                graph
            })
        };
        let graph = match parsed {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{input}: {e}");
                return ExitCode::from(2);
            }
        };
        match &mut merged {
            None => merged = Some(graph),
            Some(m) => m.merge(&graph),
        }
    }
    let merged = merged.expect("at least one input");

    let rendered = if json {
        merged.to_json()
    } else {
        merged.to_collapsed()
    };
    match &out {
        None => print!("{rendered}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("{path}: cannot write: {e}");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "dacce-flame: {} input(s), {} stack(s), total weight {}, lineage {:016x}{}",
        inputs.len(),
        merged.len(),
        merged.total(),
        merged.lineage,
        if skipped_total > 0 {
            format!(", {skipped_total} sample(s) skipped")
        } else {
            String::new()
        }
    );
    ExitCode::SUCCESS
}
