//! `dacce-lint` — audit exported DACCE engine states.
//!
//! Usage: `dacce-lint <export-file>...`
//!
//! Each argument is a `dacce-export v1` file (see `dacce::export`). Every
//! file is imported and run through the encoding verifier; findings are
//! printed with their rule id, severity and witness path. Exits non-zero
//! if any file fails to parse or any error-severity finding is reported.

use std::process::ExitCode;

use dacce_analyze::verifier::verify_export;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: dacce-lint <export-file>...");
        return ExitCode::from(2);
    }
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                errors += 1;
                continue;
            }
        };
        let decoder = match dacce::import(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{file}: cannot import: {e}");
                errors += 1;
                continue;
            }
        };
        let diags = verify_export(&decoder);
        for d in &diags {
            println!("{file}: {d}");
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
        }
        if diags.is_empty() {
            println!(
                "{file}: ok ({} dictionaries, {} samples)",
                decoder.dicts().len(),
                decoder.samples().len()
            );
        }
    }
    println!(
        "dacce-lint: {} file(s), {errors} error(s), {warnings} warning(s)",
        files.len()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
