//! `dacce-lint` — audit exported DACCE engine states.
//!
//! Usage: `dacce-lint [--metrics <prometheus-file>] [--dispatch] [--superops] [--degraded] <export-file>...`
//! or: `dacce-lint --fleet <tenant-export> <twin-export>`
//! or: `dacce-lint --postmortem <dump-file> [<export-file>...]`
//! or: `dacce-lint --fragments <journal-file> [<export-file>...]`
//! or: `dacce-lint --list-rules`
//!
//! Each argument is a `dacce-export v1` file (see `dacce::export`). Every
//! file is imported and run through the encoding verifier; findings are
//! printed with their rule id, severity and witness path. With
//! `--metrics`, a Prometheus document exported by the same run (e.g.
//! `dacce-top --prom-out`) is additionally cross-checked against each
//! export: dictionary counts, generation `maxID`s and the
//! traps/edges/re-encodes arithmetic must agree. With `--dispatch`, the
//! export's compiled dispatch table (the flat slot-indexed fast path) is
//! verified edge-for-edge against the latest dictionary (rule
//! `dispatch-table`). With `--superops`, every superop of the export's
//! compiled table is re-folded over the dispatch actions of its window
//! and checked against the net effect it memoizes (rule
//! `superop-net-effect`). With `--degraded`, the exported degraded-state
//! counters are checked for internal consistency (rule `degraded-state`).
//! With `--fleet`, exactly two exports are expected — a shared-lineage
//! fleet tenant and its standalone twin — and the pair is cross-checked
//! for identity (rule `fleet-twin`) on top of the per-file audits.
//! With `--postmortem`, a flight-recorder dump (`dacce-postmortem v1`,
//! see `dacce::DacceEngine::postmortem`) is validated for structure and
//! internal consistency (rules `postmortem-*`); export files are then
//! optional.
//! With `--fragments`, a recorded decode journal (`dacce-journal v1`,
//! see `dacce::fragment`) is parsed and its seam-seed chain is verified
//! by independent fragment replay (rules `fragment-journal`,
//! `fragment-seam`) — a clean run means the fragment-parallel decoder
//! proves every seam without serial fallbacks; export files are then
//! optional.
//! With `--list-rules`, prints the full rule catalogue (id, severity,
//! enabling flag, invariant) and exits. Exits non-zero if any file fails
//! to parse or any finding — error **or** warning severity — is reported
//! (see `dacce_analyze::lint::exit_code`).

use std::process::ExitCode;

use dacce_analyze::lint;
use dacce_analyze::metrics::{verify_metrics, PromDoc};
use dacce_analyze::postmortem::verify_postmortem;
use dacce_analyze::verifier::{
    verify_degraded, verify_dispatch, verify_export, verify_fleet_twin, verify_fragments,
    verify_superops,
};

fn main() -> ExitCode {
    let mut metrics: Option<String> = None;
    let mut postmortem: Option<String> = None;
    let mut fragments: Option<String> = None;
    let mut dispatch = false;
    let mut superops = false;
    let mut degraded = false;
    let mut fleet = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--list-rules" {
            for r in lint::RULES {
                println!(
                    "{:22} {:8} [{}] {}",
                    r.id, r.severity, r.enabled_by, r.summary
                );
            }
            return ExitCode::SUCCESS;
        } else if arg == "--metrics" {
            match args.next() {
                Some(path) => metrics = Some(path),
                None => {
                    eprintln!("--metrics requires a file path");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--postmortem" {
            match args.next() {
                Some(path) => postmortem = Some(path),
                None => {
                    eprintln!("--postmortem requires a file path");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--fragments" {
            match args.next() {
                Some(path) => fragments = Some(path),
                None => {
                    eprintln!("--fragments requires a file path");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--dispatch" {
            dispatch = true;
        } else if arg == "--superops" {
            superops = true;
        } else if arg == "--degraded" {
            degraded = true;
        } else if arg == "--fleet" {
            fleet = true;
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() && postmortem.is_none() && fragments.is_none() {
        eprintln!(
            "usage: dacce-lint [--metrics <prometheus-file>] [--dispatch] [--superops] \
             [--degraded] [--postmortem <dump-file>] [--fragments <journal-file>] \
             <export-file>... \
             | dacce-lint --fleet <tenant-export> <twin-export>"
        );
        return ExitCode::from(2);
    }
    if fleet && files.len() != 2 {
        eprintln!(
            "--fleet compares exactly two exports (tenant, standalone twin); got {}",
            files.len()
        );
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;

    let prom: Option<PromDoc> = match &metrics {
        None => None,
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match PromDoc::parse(&text) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("{path}: malformed metrics export: {e}");
                    errors += 1;
                    None
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                errors += 1;
                None
            }
        },
    };

    if let Some(path) = &postmortem {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let diags = verify_postmortem(&text);
                for d in &diags {
                    println!("{path}: {d}");
                    if d.is_error() {
                        errors += 1;
                    } else {
                        warnings += 1;
                    }
                }
                if diags.is_empty() {
                    println!("{path}: postmortem ok");
                }
            }
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                errors += 1;
            }
        }
    }

    if let Some(path) = &fragments {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let diags = verify_fragments(&text);
                for d in &diags {
                    println!("{path}: {d}");
                    if d.is_error() {
                        errors += 1;
                    } else {
                        warnings += 1;
                    }
                }
                if diags.is_empty() {
                    println!("{path}: fragment seams ok");
                }
            }
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                errors += 1;
            }
        }
    }

    let mut decoders = Vec::with_capacity(files.len());
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                errors += 1;
                decoders.push(None);
                continue;
            }
        };
        let decoder = match dacce::import(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{file}: cannot import: {e}");
                errors += 1;
                decoders.push(None);
                continue;
            }
        };
        let mut diags = verify_export(&decoder);
        if let Some(doc) = &prom {
            diags.extend(verify_metrics(doc, &decoder));
        }
        if dispatch {
            if decoder.dispatch().is_empty() {
                eprintln!("{file}: --dispatch requested but export carries no dispatch records");
                errors += 1;
            }
            diags.extend(verify_dispatch(&decoder));
        }
        if superops {
            if decoder.superops().is_empty() {
                eprintln!("{file}: --superops requested but export carries no superop records");
                errors += 1;
            }
            diags.extend(verify_superops(&decoder));
        }
        if degraded {
            diags.extend(verify_degraded(&decoder));
        }
        for d in &diags {
            println!("{file}: {d}");
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
        }
        if diags.is_empty() {
            println!(
                "{file}: ok ({} dictionaries, {} samples{})",
                decoder.dicts().len(),
                decoder.samples().len(),
                if prom.is_some() {
                    ", metrics consistent"
                } else {
                    ""
                }
            );
        }
        decoders.push(Some(decoder));
    }

    if fleet {
        if let [Some(tenant), Some(twin)] = &decoders[..] {
            let diags = verify_fleet_twin(tenant, twin);
            for d in &diags {
                println!("{} vs {}: {d}", files[0], files[1]);
                if d.is_error() {
                    errors += 1;
                } else {
                    warnings += 1;
                }
            }
            if diags.is_empty() {
                println!(
                    "{} vs {}: fleet twin ok (shared-lineage export matches standalone twin)",
                    files[0], files[1]
                );
            }
        }
    }
    println!(
        "dacce-lint: {} file(s), {errors} error(s), {warnings} warning(s)",
        files.len()
    );
    ExitCode::from(lint::exit_code(errors, warnings))
}
