//! The combined static-analysis pipeline.
//!
//! Pass ordering matters and is fixed here:
//!
//! 1. [`build_static_graph`] — sound over-approximate call graph plus side
//!    tables (owners, roots, indirect targets, tail functions).
//! 2. `classify_back_edges` — DFS back-edge marking from the static roots;
//!    back edges are never encoded (§3.2 of the paper), so classifying them
//!    ahead of time tells us exactly which edges the encoder will skip.
//! 3. [`strongly_connected_components`] — SCC condensation; a function is
//!    recursive iff its component has more than one member or a self loop.
//! 4. Tail-call reachability — which functions contain tail ops, which can
//!    be *entered* through a tail call, and which call sites must be
//!    TcStack-wrapped (§5.2).

use std::collections::HashSet;

use dacce_callgraph::analysis::{
    classify_back_edges, find_back_edges, strongly_connected_components, BackEdgeAnalysis,
    SccAnalysis,
};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::{CalleeSpec, Program};

use crate::graph::{build_static_graph, StaticGraph};

/// Ahead-of-time tail-call facts (§5.2: tail calls splice frames, so the
/// runtime wraps every call into a function that may tail-call onward).
#[derive(Clone, Debug, Default)]
pub struct TailAnalysis {
    /// Functions containing at least one tail-call op. This is the static
    /// analogue of the engine's `tail_fns` set, which it otherwise only
    /// learns inside `handle_trap`.
    pub tail_callers: HashSet<FunctionId>,
    /// Functions that can be *entered* via a tail call (targets of any tail
    /// op, including every conservative target of a tail-indirect site).
    pub tail_entered: HashSet<FunctionId>,
    /// Call sites with at least one static callee in `tail_callers`; the
    /// runtime must TcStack-wrap these.
    pub wrap_sites: HashSet<CallSiteId>,
}

/// Everything the downstream consumers (warm start, verifier, lint CLI,
/// benches) need from one analysis run.
#[derive(Clone, Debug)]
pub struct StaticAnalysis {
    /// The over-approximate call graph and side tables. Back-edge flags on
    /// `graph.graph` are already classified from `graph.roots`.
    pub graph: StaticGraph,
    /// DFS back-edge classification from the static roots.
    pub back_edges: BackEdgeAnalysis,
    /// SCC condensation of the static graph.
    pub scc: SccAnalysis,
    /// Tail-call reachability facts.
    pub tails: TailAnalysis,
}

impl StaticAnalysis {
    /// True when the static graph says `f` sits on a cycle (mutual or
    /// self-recursion). All edges into such a component from within it are
    /// back edges under some DFS order, so DACCE's encoder will leave at
    /// least one of them unencoded.
    pub fn is_recursive(&self, f: FunctionId) -> bool {
        self.scc.is_recursive(f)
    }
}

/// Runs the full pipeline over `program` in the documented pass order.
pub fn analyze(program: &Program) -> StaticAnalysis {
    let mut graph = build_static_graph(program);
    let roots = graph.roots.clone();
    classify_back_edges(&mut graph.graph, &roots);
    let back_edges = find_back_edges(&graph.graph, &roots);
    let scc = strongly_connected_components(&graph.graph, &roots);
    let tails = tail_analysis(program, &graph);
    StaticAnalysis {
        graph,
        back_edges,
        scc,
        tails,
    }
}

fn tail_analysis(program: &Program, graph: &StaticGraph) -> TailAnalysis {
    let mut out = TailAnalysis {
        tail_callers: graph.tail_functions.iter().copied().collect(),
        ..TailAnalysis::default()
    };
    for (_, op) in program.call_ops() {
        if !op.tail {
            continue;
        }
        match &op.callee {
            CalleeSpec::Direct(t) | CalleeSpec::Plt(t) | CalleeSpec::Spawn(t) => {
                out.tail_entered.insert(*t);
            }
            CalleeSpec::Indirect { .. } => {
                if let Some(targets) = graph.indirect_targets.get(&op.site) {
                    out.tail_entered.extend(targets.iter().copied());
                }
            }
        }
    }
    for (_, e) in graph.graph.edges() {
        if out.tail_callers.contains(&e.callee) {
            out.wrap_sites.insert(e.site);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::model::TargetChoice;

    #[test]
    fn pipeline_classifies_recursion_and_tails() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let rec = b.function("rec");
        let t1 = b.function("t1");
        let t2 = b.function("t2");
        let table = b.table(vec![t1, t2]);
        b.body(main).call(a).call(rec).done();
        // `a` tail-calls through the table, so t1/t2 are tail-entered and
        // every site calling `a` must be wrapped.
        b.body(a)
            .tail_indirect(table, TargetChoice::Uniform, [1.0, 1.0])
            .done();
        b.body(rec).call_p(rec, [0.3, 0.3]).done();
        b.body(t1).work(1).done();
        b.body(t2).work(1).done();
        let p = b.build(main);

        let sa = analyze(&p);
        assert!(sa.is_recursive(rec));
        assert!(!sa.is_recursive(a));
        assert!(sa.tails.tail_callers.contains(&a));
        assert!(sa.tails.tail_entered.contains(&t1));
        assert!(sa.tails.tail_entered.contains(&t2));
        let main_to_a = p.call_ops().next().unwrap().1.site;
        assert!(sa.tails.wrap_sites.contains(&main_to_a));
        // The self-loop on rec is a back edge both by DFS and by SCC.
        assert_eq!(sa.back_edges.back_edges.len(), 1);
        let eid = sa.back_edges.back_edges[0];
        assert!(sa.graph.graph.edge(eid).back);
    }

    #[test]
    fn spawn_only_programs_have_no_edges_but_extra_roots() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let w = b.function("w");
        b.body(main).spawn(w, [1.0, 1.0]).done();
        b.body(w).work(1).done();
        let p = b.build(main);
        let sa = analyze(&p);
        assert_eq!(sa.graph.graph.edge_count(), 0);
        assert_eq!(sa.graph.roots, vec![main, w]);
        assert!(!sa.is_recursive(w));
    }
}
