//! Cross-checks an exported Prometheus metrics document against a
//! `dacce-export v1` engine-state file from the same run.
//!
//! The observability registry (`dacce-obs`) and the engine's export are
//! two independent records of one execution: the registry accumulates
//! counters and a generation table as events happen, the export freezes
//! the final decode dictionaries. `dacce-lint --metrics` replays the
//! arithmetic that ties them together — every decode dictionary is one
//! generation row, every applied re-encoding is one dictionary past the
//! initial (and warm-start) ones, every dictionary edge was either
//! warm-seeded or trap-discovered — and reports any divergence as a lint
//! [`Diagnostic`]. A totals mismatch means an event was dropped, double
//! counted, or wired to the wrong hook.

use std::collections::BTreeMap;

use dacce::OfflineDecoder;
use dacce_callgraph::TimeStamp;

use crate::lint::{Diagnostic, Severity};

/// One parsed Prometheus sample: name, sorted labels, integer value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromSample {
    /// Metric name (e.g. `dacce_traps_total`).
    pub name: String,
    /// Label set, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// Sample value. DACCE metrics are all non-negative integers.
    pub value: u64,
}

/// A parsed Prometheus text-format document.
#[derive(Clone, Debug, Default)]
pub struct PromDoc {
    samples: Vec<PromSample>,
}

impl PromDoc {
    /// Parses the Prometheus text exposition format (the subset
    /// `MetricsSnapshot::to_prometheus` emits: `# HELP`/`# TYPE` comments
    /// and `name{labels} value` samples).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its 1-based line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let sample =
                parse_sample(line).map_err(|e| format!("line {}: {e}: `{line}`", no + 1))?;
            samples.push(sample);
        }
        Ok(Self { samples })
    }

    /// All samples, in document order.
    #[must_use]
    pub fn samples(&self) -> &[PromSample] {
        &self.samples
    }

    /// The value of an unlabelled series, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The value of a series carrying `label=value`, if present.
    #[must_use]
    pub fn get_labeled(&self, name: &str, label: &str, value: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.get(label).map(String::as_str) == Some(value))
            .map(|s| s.value)
    }
}

fn parse_sample(line: &str) -> Result<PromSample, &'static str> {
    // `name` or `name{k="v",...}`, then whitespace, then the value.
    let (head, value) = line
        .rsplit_once(char::is_whitespace)
        .ok_or("missing value")?;
    let value: u64 = match value.parse() {
        Ok(v) => v,
        // Histogram buckets use `+Inf`; clamp to max (only ordering and
        // presence matter for the cross-checks).
        Err(_) if value == "+Inf" => u64::MAX,
        Err(_) => {
            let f: f64 = value.parse().map_err(|_| "non-numeric value")?;
            if f < 0.0 || f.fract() != 0.0 {
                return Err("non-integer value");
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                f as u64
            }
        }
    };
    let head = head.trim_end();
    let (name, labels) = match head.split_once('{') {
        None => (head, BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            let mut labels = BTreeMap::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or("label without `=`")?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or("unquoted label value")?;
                labels.insert(k.to_string(), v.to_string());
            }
            (name, labels)
        }
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err("invalid metric name");
    }
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn diag(rule: &'static str, ts: Option<TimeStamp>, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        ts,
        message,
        witness: Vec::new(),
    }
}

/// Returns a named counter, reporting a diagnostic when the series is
/// missing from the document.
fn require(doc: &PromDoc, name: &'static str, diags: &mut Vec<Diagnostic>) -> Option<u64> {
    let v = doc.get(name);
    if v.is_none() {
        diags.push(diag(
            "metrics-missing",
            None,
            format!("required series `{name}` absent from metrics export"),
        ));
    }
    v
}

/// Cross-checks exported metric totals against the engine-state export
/// they were captured with.
///
/// Rules (all [`Severity::Error`] — a mismatch is lost or double-counted
/// telemetry, not a style concern):
///
/// - `metrics-missing` — a series the runtime always exports is absent.
/// - `metrics-dictionaries` — `dacce_dictionaries` must equal the number
///   of decode dictionaries in the export.
/// - `metrics-reencodes` — applied re-encodings (`dacce_reencodes_total`
///   − `dacce_reencode_aborts_total`) must account for every dictionary
///   past the initial one (and the warm-start one, when edges were
///   seeded).
/// - `metrics-generation` — each dictionary's generation row must exist
///   and agree on `maxID`; `dacce_max_id` must equal the newest
///   dictionary's.
/// - `metrics-edges` — every dictionary edge was warm-seeded or
///   trap-discovered, and a trap precedes every discovery:
///   `dict.edges ≤ seeded + discovered ≤ seeded + traps`.
#[must_use]
pub fn verify_metrics(doc: &PromDoc, decoder: &OfflineDecoder) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dicts = decoder.dicts();

    let dict_gauge = require(doc, "dacce_dictionaries", &mut diags);
    let traps = require(doc, "dacce_traps_total", &mut diags);
    let discovered = require(doc, "dacce_edges_discovered_total", &mut diags);
    let reencodes = require(doc, "dacce_reencodes_total", &mut diags);
    let aborts = require(doc, "dacce_reencode_aborts_total", &mut diags);
    let seeded = require(doc, "dacce_warm_seeded_edges_total", &mut diags);
    let max_id = require(doc, "dacce_max_id", &mut diags);

    if let Some(g) = dict_gauge {
        if g != dicts.len() as u64 {
            diags.push(diag(
                "metrics-dictionaries",
                None,
                format!(
                    "metrics report {g} dictionaries, export holds {}",
                    dicts.len()
                ),
            ));
        }
    }

    if let (Some(re), Some(ab), Some(seeded)) = (reencodes, aborts, seeded) {
        let applied = re.saturating_sub(ab);
        // Dictionary count = initial encoding + warm-start re-encoding
        // (when any edge was seeded) + one per applied re-encoding.
        let expected = 1 + u64::from(seeded > 0) + applied;
        if ab > re {
            diags.push(diag(
                "metrics-reencodes",
                None,
                format!("{ab} re-encode aborts exceed {re} re-encodes"),
            ));
        } else if expected != dicts.len() as u64 {
            diags.push(diag(
                "metrics-reencodes",
                None,
                format!(
                    "{applied} applied re-encoding(s) (+initial{}) expect {expected} \
                     dictionaries, export holds {}",
                    if seeded > 0 { "+warm" } else { "" },
                    dicts.len()
                ),
            ));
        }
    }

    for i in 0..dicts.len() {
        let ts = TimeStamp::new(u32::try_from(i).expect("dict count fits u32"));
        let dict = dicts.get(ts).expect("store is dense");
        let generation = ts.raw().to_string();
        match doc.get_labeled("dacce_dict_max_id", "generation", &generation) {
            None => diags.push(diag(
                "metrics-generation",
                Some(ts),
                format!("no generation row for dictionary ts={generation}"),
            )),
            Some(row_max) if row_max != dict.max_id() => diags.push(diag(
                "metrics-generation",
                Some(ts),
                format!(
                    "generation row maxID {row_max} != dictionary maxID {}",
                    dict.max_id()
                ),
            )),
            Some(_) => {}
        }
    }
    if let (Some(max_id), Some(latest)) = (max_id, dicts.latest()) {
        if max_id != latest.max_id() {
            diags.push(diag(
                "metrics-generation",
                Some(latest.timestamp()),
                format!(
                    "dacce_max_id {max_id} != newest dictionary maxID {}",
                    latest.max_id()
                ),
            ));
        }
    }

    if let (Some(traps), Some(discovered), Some(seeded)) = (traps, discovered, seeded) {
        if discovered > traps {
            diags.push(diag(
                "metrics-edges",
                None,
                format!("{discovered} edges discovered but only {traps} traps handled"),
            ));
        }
        if let Some(latest) = dicts.latest() {
            let accounted = seeded + discovered;
            if (latest.edge_count() as u64) > accounted {
                diags.push(diag(
                    "metrics-edges",
                    Some(latest.timestamp()),
                    format!(
                        "newest dictionary encodes {} edges but metrics only account \
                         for {accounted} ({seeded} seeded + {discovered} discovered)",
                        latest.edge_count()
                    ),
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce::{import, DacceConfig, DacceEngine};
    use dacce_callgraph::{CallSiteId, FunctionId};
    use dacce_program::{runtime::CallDispatch, CostModel, ThreadId};

    /// An engine driven far enough to trap and re-encode, plus its metrics
    /// document and re-imported engine-state export.
    fn run_and_export() -> (PromDoc, OfflineDecoder) {
        let mut e = DacceEngine::new(
            DacceConfig {
                edge_threshold: 1,
                min_events_between_reencodes: 1,
                ..DacceConfig::default()
            },
            CostModel::default(),
        );
        let main = FunctionId::new(0);
        e.attach_main(main);
        e.thread_start(ThreadId::MAIN, main, None);
        for round in 0u32..50 {
            for i in 0u32..6 {
                if (round + i) % 3 == 0 {
                    let (s, f) = (CallSiteId::new(i), FunctionId::new(i + 1));
                    e.call(ThreadId::MAIN, s, main, f, CallDispatch::Direct, false);
                    e.ret(ThreadId::MAIN, s, main, f);
                }
            }
        }
        let text = dacce::export_state(&e);
        let doc = PromDoc::parse(&e.observability().snapshot().to_prometheus())
            .expect("runtime export parses");
        (doc, import(&text).expect("own export imports"))
    }

    #[test]
    fn parses_names_labels_and_values() {
        let doc = PromDoc::parse(
            "# HELP dacce_traps_total Traps\n\
             # TYPE dacce_traps_total counter\n\
             dacce_traps_total 12\n\
             dacce_dict_edges{generation=\"2\"} 14\n\
             dacce_trap_ns_bucket{le=\"+Inf\"} 2\n",
        )
        .unwrap();
        assert_eq!(doc.get("dacce_traps_total"), Some(12));
        assert_eq!(
            doc.get_labeled("dacce_dict_edges", "generation", "2"),
            Some(14)
        );
        assert_eq!(
            doc.get_labeled("dacce_trap_ns_bucket", "le", "+Inf"),
            Some(2)
        );
        assert_eq!(doc.get("absent"), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "dacce_x",
            "dacce_x{generation=\"1\" 3",
            "da cce 3",
            "dacce_x -1",
        ] {
            assert!(PromDoc::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn live_run_cross_checks_clean() {
        let (doc, decoder) = run_and_export();
        assert!(decoder.dicts().len() > 1, "run must re-encode");
        let diags = verify_metrics(&doc, &decoder);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn tampered_totals_are_caught() {
        let (doc, decoder) = run_and_export();
        let tamper = |name: &str, value: u64| {
            let mut d = doc.clone();
            for s in &mut d.samples {
                if s.name == name && s.labels.is_empty() {
                    s.value = value;
                }
            }
            d
        };

        let d = verify_metrics(&tamper("dacce_dictionaries", 99), &decoder);
        assert!(d.iter().any(|d| d.rule == "metrics-dictionaries"), "{d:?}");

        let d = verify_metrics(&tamper("dacce_reencodes_total", 0), &decoder);
        assert!(d.iter().any(|d| d.rule == "metrics-reencodes"), "{d:?}");

        let d = verify_metrics(&tamper("dacce_edges_discovered_total", 0), &decoder);
        assert!(d.iter().any(|d| d.rule == "metrics-edges"), "{d:?}");

        let d = verify_metrics(&tamper("dacce_max_id", 1), &decoder);
        assert!(d.iter().any(|d| d.rule == "metrics-generation"), "{d:?}");

        let mut gone = doc.clone();
        gone.samples.retain(|s| s.name != "dacce_traps_total");
        let d = verify_metrics(&gone, &decoder);
        assert!(d.iter().any(|d| d.rule == "metrics-missing"), "{d:?}");
    }
}
