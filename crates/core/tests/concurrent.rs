//! Concurrent differential test: reader threads sample and decode their
//! calling contexts while a writer thread keeps trapping new edges and
//! forcing re-encodes. Every decoded path must match the oracle (the call
//! chain the reader actually performed), across every encoding generation
//! it happens to land in, and no decode may error.
//!
//! This exercises the snapshot-publication machinery end to end: epoch
//! revalidation, lazy cross-generation migration (decode under the old
//! dictionary, replay under the new patches), trap re-checks under the
//! shared lock, and versioned decoding of samples stamped with older
//! timestamps.

use dacce::config::DacceConfig;
use dacce::tracker::Tracker;
use dacce_callgraph::{CallSiteId, FunctionId};

/// One call-chain step a reader replays: `(site, callee, callee name)`.
type ChainStep = (CallSiteId, FunctionId, String);
/// A reader's private workload: `(worker fn, spawn site, call chain)`.
type ReaderChain = (FunctionId, CallSiteId, Vec<ChainStep>);

/// Tiny deterministic PRNG (xorshift64*) so the interleaving pressure is
/// reproducible modulo scheduling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

const READERS: usize = 4;
const ROUNDS: usize = 1500;
const DEPTH: usize = 6;
const WRITER_TRAPS: usize = 120;

#[test]
fn decode_stays_correct_during_concurrent_reencodes() {
    // Eager triggers with no back-off: every writer trap can fire a
    // re-encoding, so readers constantly cross encoding generations.
    let cfg = DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        reencode_backoff: 1.0,
        ..DacceConfig::default()
    };
    let tracker = Tracker::with_config(cfg);
    let main_fn = tracker.define_function("main");
    let main_th = tracker.register_thread(main_fn);

    // Per-reader function/site chains (sites are unique per static call
    // location, so every reader owns its own).
    let mut chains: Vec<ReaderChain> = Vec::new();
    for r in 0..READERS {
        let worker = tracker.define_function(&format!("reader{r}"));
        let spawn_site = tracker.define_call_site();
        let mut chain = Vec::with_capacity(DEPTH);
        for d in 0..DEPTH {
            let name = format!("r{r}_f{d}");
            let f = tracker.define_function(&name);
            let s = tracker.define_call_site();
            chain.push((s, f, name));
        }
        chains.push((worker, spawn_site, chain));
    }
    let writer_fn = tracker.define_function("writer");
    let writer_spawn = tracker.define_call_site();

    crossbeam::scope(|scope| {
        let tracker = &tracker;
        let main_th = &main_th;
        // Readers: walk their chain to a random depth, decode at the
        // deepest point and after each unwind step, and compare with the
        // path they actually took.
        for (r, (worker, spawn_site, chain)) in chains.iter().enumerate() {
            scope.spawn(move |_| {
                let th = tracker.register_spawned_thread(*worker, main_th, *spawn_site);
                let mut rng = Rng(0x9e37_79b9 + r as u64);
                let prefix = format!("main -> reader{r}");
                for _ in 0..ROUNDS {
                    let depth = 1 + (rng.next() as usize) % DEPTH;
                    let mut guards = Vec::with_capacity(depth);
                    let mut expected = prefix.clone();
                    for (s, f, name) in &chain[..depth] {
                        guards.push(th.call(*s, *f));
                        expected.push_str(" -> ");
                        expected.push_str(name);
                    }
                    let path = tracker.decode(&th.sample()).expect("sample decodes");
                    assert_eq!(tracker.format_path(&path), expected);
                    // Unwind, checking one intermediate level as we go.
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                    let path = tracker
                        .decode(&th.sample())
                        .expect("unwound sample decodes");
                    assert_eq!(tracker.format_path(&path), prefix);
                }
            });
        }
        // Writer: keeps discovering new edges, each trap re-evaluating the
        // triggers under the shared lock and republishing the encoding.
        scope.spawn(move |_| {
            let th = tracker.register_spawned_thread(writer_fn, main_th, writer_spawn);
            for i in 0..WRITER_TRAPS {
                let f = tracker.define_function(&format!("hot{i}"));
                let s = tracker.define_call_site();
                let _g = th.call(s, f);
                let path = tracker.decode(&th.sample()).expect("writer sample decodes");
                assert_eq!(
                    tracker.format_path(&path),
                    format!("main -> writer -> hot{i}")
                );
            }
        });
    })
    .unwrap();

    let stats = tracker.stats();
    assert_eq!(stats.decode_errors, 0, "no decode may ever fail");
    assert!(
        stats.reencodes >= 20,
        "writer must have forced many re-encodes, got {}",
        stats.reencodes
    );
    assert!(
        stats.calls as usize >= READERS * ROUNDS + WRITER_TRAPS,
        "all calls accounted for"
    );
}
