//! Concurrent differential test: reader threads sample and decode their
//! calling contexts while a writer thread keeps trapping new edges and
//! forcing re-encodes. Every decoded path must match the oracle (the call
//! chain the reader actually performed), across every encoding generation
//! it happens to land in, and no decode may error.
//!
//! This exercises the snapshot-publication machinery end to end: epoch
//! revalidation, lazy cross-generation migration (decode under the old
//! dictionary, replay under the new patches), trap re-checks under the
//! shared lock, and versioned decoding of samples stamped with older
//! timestamps.

use dacce::config::DacceConfig;
use dacce::tracker::Tracker;
use dacce_callgraph::{CallSiteId, FunctionId};

/// One call-chain step a reader replays: `(site, callee, callee name)`.
type ChainStep = (CallSiteId, FunctionId, String);
/// A reader's private workload: `(worker fn, spawn site, call chain)`.
type ReaderChain = (FunctionId, CallSiteId, Vec<ChainStep>);

/// Tiny deterministic PRNG (xorshift64*) so the interleaving pressure is
/// reproducible modulo scheduling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

const READERS: usize = 4;
const ROUNDS: usize = 1500;
const DEPTH: usize = 6;
const WRITER_TRAPS: usize = 120;

#[test]
fn decode_stays_correct_during_concurrent_reencodes() {
    // Eager triggers with no back-off: every writer trap can fire a
    // re-encoding, so readers constantly cross encoding generations.
    let cfg = DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        reencode_backoff: 1.0,
        ..DacceConfig::default()
    };
    let tracker = Tracker::with_config(cfg);
    let main_fn = tracker.define_function("main");
    let main_th = tracker.register_thread(main_fn);

    // Per-reader function/site chains (sites are unique per static call
    // location, so every reader owns its own).
    let mut chains: Vec<ReaderChain> = Vec::new();
    for r in 0..READERS {
        let worker = tracker.define_function(&format!("reader{r}"));
        let spawn_site = tracker.define_call_site();
        let mut chain = Vec::with_capacity(DEPTH);
        for d in 0..DEPTH {
            let name = format!("r{r}_f{d}");
            let f = tracker.define_function(&name);
            let s = tracker.define_call_site();
            chain.push((s, f, name));
        }
        chains.push((worker, spawn_site, chain));
    }
    let writer_fn = tracker.define_function("writer");
    let writer_spawn = tracker.define_call_site();

    crossbeam::scope(|scope| {
        let tracker = &tracker;
        let main_th = &main_th;
        // Readers: walk their chain to a random depth, decode at the
        // deepest point and after each unwind step, and compare with the
        // path they actually took.
        for (r, (worker, spawn_site, chain)) in chains.iter().enumerate() {
            scope.spawn(move |_| {
                let th = tracker.register_spawned_thread(*worker, main_th, *spawn_site);
                let mut rng = Rng(0x9e37_79b9 + r as u64);
                let prefix = format!("main -> reader{r}");
                for _ in 0..ROUNDS {
                    let depth = 1 + (rng.next() as usize) % DEPTH;
                    let mut guards = Vec::with_capacity(depth);
                    let mut expected = prefix.clone();
                    for (s, f, name) in &chain[..depth] {
                        guards.push(th.call(*s, *f));
                        expected.push_str(" -> ");
                        expected.push_str(name);
                    }
                    let path = tracker.decode(&th.sample()).expect("sample decodes");
                    assert_eq!(tracker.format_path(&path), expected);
                    // Unwind, checking one intermediate level as we go.
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                    let path = tracker
                        .decode(&th.sample())
                        .expect("unwound sample decodes");
                    assert_eq!(tracker.format_path(&path), prefix);
                }
            });
        }
        // Writer: keeps discovering new edges, each trap re-evaluating the
        // triggers under the shared lock and republishing the encoding.
        scope.spawn(move |_| {
            let th = tracker.register_spawned_thread(writer_fn, main_th, writer_spawn);
            for i in 0..WRITER_TRAPS {
                let f = tracker.define_function(&format!("hot{i}"));
                let s = tracker.define_call_site();
                let _g = th.call(s, f);
                let path = tracker.decode(&th.sample()).expect("writer sample decodes");
                assert_eq!(
                    tracker.format_path(&path),
                    format!("main -> writer -> hot{i}")
                );
            }
        });
    })
    .unwrap();

    let stats = tracker.stats();
    assert_eq!(stats.decode_errors, 0, "no decode may ever fail");
    assert!(
        stats.reencodes >= 20,
        "writer must have forced many re-encodes, got {}",
        stats.reencodes
    );
    assert!(
        stats.calls as usize >= READERS * ROUNDS + WRITER_TRAPS,
        "all calls accounted for"
    );
}

/// One level of a reader's indirect chain. A call site is one static
/// location in one function, so the site used at level `d` depends on
/// which of the two level-`d-1` functions is executing: `sites[p]` is the
/// indirect site inside parent-pick `p`, and either one may invoke either
/// of `fns` — every site ends up with two known targets.
struct PolyLevel {
    sites: [CallSiteId; 2],
    fns: [FunctionId; 2],
    names: [String; 2],
}

/// Stale-cache window: readers drive *indirect* sites — whose resolutions
/// land in the per-thread inline cache — with alternating targets, partly
/// through RAII guards and partly through `run_batch`, while a writer
/// forces re-encode after re-encode. Every republish changes the snapshot
/// epoch, so each cached entry filled before it becomes stale; a probe
/// that ever honoured one would add a stale delta and derail every decode
/// that follows. The oracle is the call chain the reader actually
/// performed.
#[test]
fn inline_cache_stays_generation_safe_during_reencodes() {
    use dacce::BatchOp;

    let cfg = DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        reencode_backoff: 1.0,
        ..DacceConfig::default()
    };
    let tracker = Tracker::with_config(cfg);
    let main_fn = tracker.define_function("main");
    let main_th = tracker.register_thread(main_fn);

    let mut chains: Vec<(FunctionId, CallSiteId, Vec<PolyLevel>)> = Vec::new();
    for r in 0..READERS {
        let worker = tracker.define_function(&format!("reader{r}"));
        let spawn_site = tracker.define_call_site();
        let mut chain = Vec::with_capacity(DEPTH);
        for d in 0..DEPTH {
            let names = [format!("r{r}_f{d}_a"), format!("r{r}_f{d}_b")];
            chain.push(PolyLevel {
                sites: [tracker.define_call_site(), tracker.define_call_site()],
                fns: [
                    tracker.define_function(&names[0]),
                    tracker.define_function(&names[1]),
                ],
                names,
            });
        }
        chains.push((worker, spawn_site, chain));
    }
    let writer_fn = tracker.define_function("writer");
    let writer_spawn = tracker.define_call_site();

    crossbeam::scope(|scope| {
        let tracker = &tracker;
        let main_th = &main_th;
        for (r, (worker, spawn_site, chain)) in chains.iter().enumerate() {
            scope.spawn(move |_| {
                let th = tracker.register_spawned_thread(*worker, main_th, *spawn_site);
                let mut rng = Rng(0xdead_beef + r as u64);
                let prefix = format!("main -> reader{r}");
                for round in 0..ROUNDS {
                    let bits = rng.next();
                    if round % 4 == 3 {
                        // Batched drive: one balanced batch walking the
                        // full chain down and back up.
                        let mut ops = Vec::with_capacity(2 * DEPTH);
                        let mut prev = 0usize;
                        for (d, level) in chain.iter().enumerate() {
                            let pick = (bits >> d) as usize & 1;
                            ops.push(BatchOp::CallIndirect {
                                site: level.sites[prev],
                                target: level.fns[pick],
                            });
                            prev = pick;
                        }
                        for _ in 0..DEPTH {
                            ops.push(BatchOp::Ret);
                        }
                        th.run_batch(&ops).expect("balanced batch");
                        let path = tracker.decode(&th.sample()).expect("post-batch decodes");
                        assert_eq!(tracker.format_path(&path), prefix);
                    } else {
                        // Guard drive to a random depth with per-level
                        // target selection, decoding at the deepest point.
                        let depth = 1 + (rng.next() as usize) % DEPTH;
                        let mut guards = Vec::with_capacity(depth);
                        let mut expected = prefix.clone();
                        let mut prev = 0usize;
                        for (d, level) in chain[..depth].iter().enumerate() {
                            let pick = (bits >> d) as usize & 1;
                            guards.push(th.call_indirect(level.sites[prev], level.fns[pick]));
                            expected.push_str(" -> ");
                            expected.push_str(&level.names[pick]);
                            prev = pick;
                        }
                        let path = tracker.decode(&th.sample()).expect("sample decodes");
                        assert_eq!(tracker.format_path(&path), expected);
                        while let Some(g) = guards.pop() {
                            drop(g);
                        }
                    }
                }
            });
        }
        scope.spawn(move |_| {
            let th = tracker.register_spawned_thread(writer_fn, main_th, writer_spawn);
            for i in 0..WRITER_TRAPS {
                let f = tracker.define_function(&format!("hot{i}"));
                let s = tracker.define_call_site();
                let _g = th.call(s, f);
                let path = tracker.decode(&th.sample()).expect("writer sample decodes");
                assert_eq!(
                    tracker.format_path(&path),
                    format!("main -> writer -> hot{i}")
                );
            }
        });
    })
    .unwrap();

    tracker
        .check_invariants()
        .expect("invariants hold after the storm");
    let stats = tracker.stats();
    assert_eq!(stats.decode_errors, 0, "no decode may ever fail");
    assert!(
        stats.reencodes >= 20,
        "writer must have forced many re-encodes, got {}",
        stats.reencodes
    );
    assert!(
        stats.icache_hits > 0,
        "indirect fast path must have produced cache hits"
    );
    assert!(
        stats.icache_misses > 0,
        "re-encodes and target flips must have produced cache misses"
    );
}
