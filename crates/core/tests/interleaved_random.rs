//! Randomized interleaving of several logical threads with staggered
//! registration, ring sampling, and eager re-encoding — hunting for
//! cross-thread regeneration bugs.

use dacce::{DacceConfig, DacceEngine};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

fn run(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut e = DacceEngine::new(
        DacceConfig {
            edge_threshold: 3,
            min_events_between_reencodes: 16,
            reencode_backoff: 1.05,
            reencode_interval_cap: 512,
            ..DacceConfig::default()
        },
        CostModel::default(),
    );
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);

    let workers = 4usize;
    let mut registered = vec![false; workers];
    let mut stacks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); workers];

    for step in 0..8000usize {
        let w = rng.gen_range(0..workers);
        let tid = ThreadId::new(w as u32 + 1);
        if !registered[w] {
            // Staggered registration: register lazily, sometimes much later.
            if rng.gen_bool(0.02) || step > 4000 {
                e.thread_start(tid, f(1), Some((ThreadId::MAIN, s(0))));
                registered[w] = true;
            }
            continue;
        }
        let depth = stacks[w].len();
        let wind = depth < 6 && (depth == 0 || rng.gen_bool(0.55));
        if wind {
            let site = 1 + (w as u32) * 6 + depth as u32;
            let caller = if depth == 0 { 1 } else { 2 + depth as u32 - 1 };
            let callee = 2 + depth as u32;
            e.call(
                tid,
                s(site),
                f(caller),
                f(callee),
                CallDispatch::Direct,
                false,
            );
            stacks[w].push((site, callee));
        } else {
            let (site, callee) = stacks[w].pop().unwrap();
            let caller = if stacks[w].is_empty() {
                1
            } else {
                stacks[w].last().unwrap().1
            };
            e.ret(tid, s(site), f(caller), f(callee));
        }
        // Real ring sampling (like the Tracker) plus validation.
        let (snap, _) = e.sample(tid);
        let decoded = e
            .decode(&snap)
            .unwrap_or_else(|err| panic!("seed {seed} step {step} w{w}: {err}\n{snap:?}"));
        let got: Vec<u32> = decoded.0.iter().map(|p| p.func.raw()).collect();
        let mut want = vec![0u32, 1];
        want.extend(stacks[w].iter().map(|&(_, c)| c));
        assert_eq!(got, want, "seed {seed} step {step} w{w}");
    }
    assert_eq!(e.stats().decode_errors, 0, "seed {seed}");
}

#[test]
fn randomized_interleavings() {
    for seed in 0..30 {
        run(seed);
    }
}
