//! Edge-case integration tests of the engine driven directly by events.

use dacce::{CompressionMode, DacceConfig, DacceEngine};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

fn engine(cfg: DacceConfig) -> DacceEngine {
    let mut e = DacceEngine::new(cfg, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    e
}

fn eager() -> DacceConfig {
    DacceConfig {
        edge_threshold: 2,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    }
}

/// PLT calls behave like direct calls once bound: one trap, then encoded.
#[test]
fn plt_calls_bind_then_encode() {
    let mut e = engine(eager());
    for round in 0..4 {
        let c = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Plt, false);
        if round == 0 {
            assert!(c >= CostModel::default().handler_trap);
        } else {
            assert!(c < CostModel::default().handler_trap);
        }
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        // Trigger a re-encode via a second edge on the first round.
        if round == 0 {
            let _ = e.call(
                ThreadId::MAIN,
                s(1),
                f(0),
                f(2),
                CallDispatch::Direct,
                false,
            );
            let _ = e.ret(ThreadId::MAIN, s(1), f(0), f(2));
        }
    }
    assert_eq!(e.stats().traps, 2);
    e.check_invariants().unwrap();
}

/// A sub-path head that also has encoded incoming edges: the decoder must
/// match the ccStack boundary before extending through the zero-encoded
/// edge (the head-match-first rule of Algorithm 1).
#[test]
fn head_match_takes_priority_over_zero_edges() {
    let mut e = engine(eager());
    // Build: main -> a (encoded after re-encode), a -> b, and an
    // *indirect* main -> b edge that stays unencoded initially.
    let _ = e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    let _ = e.call(
        ThreadId::MAIN,
        s(1),
        f(1),
        f(2),
        CallDispatch::Direct,
        false,
    );
    let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(2));
    let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
    // Now an indirect call straight to b: new edge, unencoded boundary.
    let _ = e.call(
        ThreadId::MAIN,
        s(2),
        f(0),
        f(2),
        CallDispatch::Indirect,
        false,
    );
    let (snap, _) = e.sample(ThreadId::MAIN);
    let path = e.decode(&snap).unwrap();
    let funcs: Vec<u32> = path.0.iter().map(|p| p.func.raw()).collect();
    assert_eq!(
        funcs,
        vec![0, 2],
        "boundary pop must win over a->b's zero edge"
    );
    let _ = e.ret(ThreadId::MAIN, s(2), f(0), f(2));
    e.check_invariants().unwrap();
}

/// Indirect tail calls: target discovery plus tail semantics combined.
#[test]
fn indirect_tail_calls_decode() {
    let mut e = engine(eager());
    let _ = e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    // f1 performs an indirect *tail* call to f2 or f3 (no return events
    // for these, and f1's frame is replaced).
    let _ = e.call(
        ThreadId::MAIN,
        s(1),
        f(1),
        f(2),
        CallDispatch::Indirect,
        true,
    );
    let (snap, _) = e.sample(ThreadId::MAIN);
    let path = e.decode(&snap).unwrap();
    let funcs: Vec<u32> = path.0.iter().map(|p| p.func.raw()).collect();
    assert_eq!(funcs, vec![0, 1, 2]);
    // Control returns to main's frame: the after-code of site 0 runs.
    let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
    let (snap, _) = e.sample(ThreadId::MAIN);
    assert_eq!(snap.id, 0);
    assert_eq!(snap.cc_depth(), 0);
    e.check_invariants().unwrap();
}

/// Compression mode Always on alternating mutual recursion never falsely
/// compresses (different sites alternate at the top).
#[test]
fn mutual_recursion_is_not_falsely_compressed() {
    let cfg = DacceConfig {
        compression: CompressionMode::Always,
        ..eager()
    };
    let mut e = engine(cfg);
    let _ = e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    // Alternate f1 -> f2 -> f1 -> f2 ... then unwind; every decode along
    // the way must see the exact alternation.
    let mut depth_funcs = vec![0u32, 1];
    for k in 0..6u32 {
        let (site, from, to) = if k % 2 == 0 {
            (s(1), f(1), f(2))
        } else {
            (s(2), f(2), f(1))
        };
        let _ = e.call(ThreadId::MAIN, site, from, to, CallDispatch::Direct, false);
        depth_funcs.push(to.raw());
        let (snap, _) = e.sample(ThreadId::MAIN);
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<u32> = path.0.iter().map(|p| p.func.raw()).collect();
        assert_eq!(funcs, depth_funcs, "at nesting {k}");
    }
    for k in (0..6u32).rev() {
        let (site, from, to) = if k % 2 == 0 {
            (s(1), f(1), f(2))
        } else {
            (s(2), f(2), f(1))
        };
        let _ = e.ret(ThreadId::MAIN, site, from, to);
        depth_funcs.pop();
        let (snap, _) = e.sample(ThreadId::MAIN);
        let path = e.decode(&snap).unwrap();
        assert_eq!(path.depth(), depth_funcs.len());
    }
    e.check_invariants().unwrap();
}

/// Re-encoding while several threads are mid-flight regenerates every
/// thread consistently.
#[test]
fn reencode_regenerates_all_threads() {
    let mut e = engine(DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    });
    e.thread_start(ThreadId::new(1), f(10), Some((ThreadId::MAIN, s(9))));
    e.thread_start(ThreadId::new(2), f(10), Some((ThreadId::MAIN, s(9))));
    // Wind each thread into a different position.
    let _ = e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    let _ = e.call(
        ThreadId::new(1),
        s(3),
        f(10),
        f(11),
        CallDispatch::Direct,
        false,
    );
    let _ = e.call(
        ThreadId::new(2),
        s(3),
        f(10),
        f(11),
        CallDispatch::Direct,
        false,
    );
    let _ = e.call(
        ThreadId::new(2),
        s(4),
        f(11),
        f(12),
        CallDispatch::Direct,
        false,
    );
    // This call crosses the edge threshold and re-encodes with all three
    // threads live.
    let _ = e.call(
        ThreadId::MAIN,
        s(1),
        f(1),
        f(2),
        CallDispatch::Direct,
        false,
    );
    assert!(e.stats().reencodes >= 1);
    e.check_invariants().unwrap();
    for (tid, want) in [
        (ThreadId::MAIN, vec![0u32, 1, 2]),
        (ThreadId::new(1), vec![0, 10, 11]),
        (ThreadId::new(2), vec![0, 10, 11, 12]),
    ] {
        let (snap, _) = e.sample(tid);
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<u32> = path.0.iter().map(|p| p.func.raw()).collect();
        assert_eq!(funcs, want, "{tid}");
    }
}

/// Exercising the ccStack-rate trigger: hot unencoded recursion forces a
/// re-encode even when no new edges appear.
#[test]
fn ccstack_rate_triggers_reencode() {
    let cfg = DacceConfig {
        edge_threshold: usize::MAX,
        min_events_between_reencodes: 16,
        ccstack_rate_window: 64,
        ccstack_rate_threshold: 0.05,
        compression_min_heat: 1,
        ..DacceConfig::default()
    };
    let mut e = engine(cfg);
    let _ = e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    for _ in 0..400 {
        let _ = e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(1));
    }
    assert!(
        e.stats().reencodes >= 1,
        "rate trigger must fire: {:?}",
        e.stats().reencodes
    );
    let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
    e.check_invariants().unwrap();
}
