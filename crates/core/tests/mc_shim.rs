//! Smoke test for the `mc` instrumentation feature: with the feature on,
//! the tracker's protocol operations — epoch publishes, epoch checks,
//! lock acquisitions and releases — must all flow through the `dacce-sync`
//! hook, carrying their declared orderings.
//!
//! Runs only under `--features mc`; the default build compiles the shim
//! to direct std/parking_lot re-exports with nothing to observe.

#![cfg(feature = "mc")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dacce::config::DacceConfig;
use dacce::sync::{clear_hook, set_hook, SyncEvent, SyncHook, SyncOp};
use dacce::tracker::Tracker;

#[derive(Default)]
struct CountingHook {
    loads: AtomicU64,
    stores: AtomicU64,
    rmws: AtomicU64,
    lock_acquires: AtomicU64,
    lock_releases: AtomicU64,
    release_stores: AtomicU64,
    acquire_loads: AtomicU64,
}

impl SyncHook for CountingHook {
    fn on_sync(&self, event: &SyncEvent) {
        match event.op {
            SyncOp::Load => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                if matches!(event.order, Ordering::Acquire) {
                    self.acquire_loads.fetch_add(1, Ordering::Relaxed);
                }
            }
            SyncOp::Store => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                if matches!(event.order, Ordering::Release) {
                    self.release_stores.fetch_add(1, Ordering::Relaxed);
                }
            }
            SyncOp::Rmw => {
                self.rmws.fetch_add(1, Ordering::Relaxed);
            }
            SyncOp::LockAcquire => {
                self.lock_acquires.fetch_add(1, Ordering::Relaxed);
            }
            SyncOp::LockRelease => {
                self.lock_releases.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

#[test]
fn tracker_protocol_operations_report_to_the_hook() {
    let hook = Arc::new(CountingHook::default());
    set_hook(Arc::clone(&hook) as Arc<dyn SyncHook>);

    // Eager triggers so the run publishes at least one new epoch.
    let cfg = DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        reencode_backoff: 1.0,
        ..DacceConfig::default()
    };
    let tracker = Tracker::with_config(cfg);
    let main_fn = tracker.define_function("main");
    let th = tracker.register_thread(main_fn);
    for i in 0..8 {
        let f = tracker.define_function(&format!("f{i}"));
        let s = tracker.define_call_site();
        let _g = th.call(s, f);
        let _ = tracker.decode(&th.sample()).expect("sample decodes");
    }
    let stats = tracker.stats();
    clear_hook();

    assert!(stats.reencodes > 0, "workload must force a re-encode");
    let loads = hook.loads.load(Ordering::Relaxed);
    let stores = hook.stores.load(Ordering::Relaxed);
    let acquires = hook.lock_acquires.load(Ordering::Relaxed);
    let releases = hook.lock_releases.load(Ordering::Relaxed);
    assert!(loads > 0, "epoch checks must report loads");
    assert!(stores > 0, "epoch publishes must report stores");
    assert!(
        hook.rmws.load(Ordering::Relaxed) > 0,
        "counters must report RMWs"
    );
    assert!(acquires > 0, "slow path must report lock acquisitions");
    assert_eq!(acquires, releases, "every acquire pairs with a release");
    assert!(
        hook.release_stores.load(Ordering::Relaxed) > 0,
        "EPOCH_PUBLISH stores must carry Release"
    );
    assert!(
        hook.acquire_loads.load(Ordering::Relaxed) > 0,
        "EPOCH_CHECK loads must carry Acquire"
    );
}
