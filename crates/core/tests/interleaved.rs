//! Deterministic multi-thread interleaving test mirroring the Tracker
//! concurrency pattern: several logical threads wind/unwind call chains
//! with distinct per-thread sites while eager re-encoding fires constantly.

use dacce::{DacceConfig, DacceEngine};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

#[test]
fn interleaved_threads_with_eager_reencode() {
    let mut e = DacceEngine::new(
        DacceConfig {
            edge_threshold: 3,
            min_events_between_reencodes: 16,
            reencode_backoff: 1.1,
            reencode_interval_cap: 512,
            ..DacceConfig::default()
        },
        CostModel::default(),
    );
    // f0 = main root; f1 = worker root; f2..f7 = levels.
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    let workers = 4u32;
    for w in 0..workers {
        e.thread_start(ThreadId::new(w + 1), f(1), Some((ThreadId::MAIN, s(0))));
    }

    // Per-worker state: current stack of (site, func); chains of the four
    // workers coexist — one step per worker per turn, so re-encodings fire
    // while every thread is mid-chain.
    let mut stacks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); workers as usize];
    let mut winding = vec![true; workers as usize];
    let mut target_depth = vec![1usize; workers as usize];
    let mut round = vec![0usize; workers as usize];
    for step in 0..6000usize {
        let w = step % workers as usize;
        let tid = ThreadId::new(w as u32 + 1);
        if winding[w] {
            let d = stacks[w].len();
            let site = 1 + (w as u32) * 6 + d as u32;
            let caller = if d == 0 { 1 } else { 2 + d as u32 - 1 };
            let callee = 2 + d as u32;
            e.call(
                tid,
                s(site),
                f(caller),
                f(callee),
                CallDispatch::Direct,
                false,
            );
            stacks[w].push((site, callee));
            if stacks[w].len() >= target_depth[w] {
                winding[w] = false;
            }
        } else if let Some((site, callee)) = stacks[w].pop() {
            let caller = if stacks[w].is_empty() {
                1
            } else {
                stacks[w].last().unwrap().1
            };
            e.ret(tid, s(site), f(caller), f(callee));
        } else {
            winding[w] = true;
            round[w] += 1;
            target_depth[w] = 1 + (round[w] * 7 + w) % 6;
        }
        // sample + validate the active thread after every event.
        let snap = e.snapshot(tid);
        let decoded = e
            .decode(&snap)
            .unwrap_or_else(|err| panic!("step {step} w{w}: {err}\n{snap:?}"));
        let got: Vec<u32> = decoded.0.iter().map(|p| p.func.raw()).collect();
        let mut want = vec![0u32, 1];
        want.extend(stacks[w].iter().map(|&(_, c)| c));
        assert_eq!(got, want, "step {step} w{w}");
    }
    assert_eq!(e.stats().decode_errors, 0);
    e.check_invariants().unwrap();
}
