//! Property test for soundness under degradation: for any random program
//! walk and any injected fault schedule, every sampled context decodes to
//! exactly the oracle call stack, and the engine's invariants
//! ([`DacceEngine::check_invariants`], which audits the degraded-state
//! arithmetic too) hold at every step.
//!
//! Faults may make the encoding *worse* — more trapping, ccStack spills,
//! aborted or permanently disabled re-encodings, starved dispatch slots —
//! but never *wrong*: decode exactness is the invariant the whole failure
//! model is built around.

use proptest::prelude::*;

use dacce::{DacceConfig, DacceEngine, FaultPlan};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};

/// Function pool size; call sites are derived as `caller * POOL + callee`
/// so each site has exactly one owning function.
const POOL: u32 = 6;

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn decoded_contexts_stay_exact_under_any_fault_schedule(
        // Each op: (callee, push?) — pops when `push` is false and frames
        // are open, otherwise calls `callee` from the current leaf.
        ops in prop::collection::vec((0u32..POOL, prop::bool::weighted(0.6)), 1..140),
        max_id_cap in prop_oneof![
            Just(None),
            (0u64..4).prop_map(Some),
        ],
        cc_spill_limit in prop_oneof![
            Just(None),
            (2usize..8).prop_map(Some),
        ],
        abort_generations in prop::collection::vec(1u32..8, 0..3),
        dispatch_slot_cap in prop_oneof![
            Just(None),
            (1u32..10).prop_map(Some),
        ],
        seed in 0u64..1000,
    ) {
        let fault = FaultPlan {
            max_id_cap,
            cc_spill_limit,
            abort_generations,
            dispatch_slot_cap,
            poison_slow_locks: Vec::new(),
            force_reencode_every: None,
            seed,
        };
        // Eager re-encoding so generation-targeted faults actually see
        // re-encodings within a ~100-op walk.
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            fault,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);

        // The oracle stack: (site, caller, callee) of every open frame.
        let mut stack: Vec<(CallSiteId, FunctionId, FunctionId)> = Vec::new();
        for (i, &(callee, push)) in ops.iter().enumerate() {
            if push || stack.is_empty() {
                let caller = stack.last().map_or(f(0), |&(_, _, c)| c);
                let callee = f(callee);
                let site = CallSiteId::new(caller.raw() * POOL + callee.raw());
                let _ = e.call(ThreadId::MAIN, site, caller, callee, CallDispatch::Direct, false);
                stack.push((site, caller, callee));
            } else {
                let (site, caller, callee) = stack.pop().expect("non-empty");
                let _ = e.ret(ThreadId::MAIN, site, caller, callee);
            }

            // Exactness: the sampled context decodes to the oracle stack.
            let (snap, _) = e.sample(ThreadId::MAIN);
            let path = e.decode(&snap).expect("context decodes under faults");
            let got: Vec<FunctionId> = path.0.iter().map(|s| s.func).collect();
            let mut want = vec![f(0)];
            want.extend(stack.iter().map(|&(_, _, c)| c));
            prop_assert_eq!(got, want, "op {} of {}", i, ops.len());

            if i % 8 == 0 {
                let inv = e.check_invariants();
                prop_assert!(inv.is_ok(), "op {}: {}", i, inv.unwrap_err());
            }
        }
        let inv = e.check_invariants();
        prop_assert!(inv.is_ok(), "final: {}", inv.unwrap_err());
    }
}
