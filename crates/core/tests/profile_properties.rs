//! Property tests for [`dacce::HotContextProfile`]: the `total` accumulator
//! must always equal the sum of the per-context counts, no matter how
//! records (including zero weights) and merges interleave.

use proptest::prelude::*;

use dacce::HotContextProfile;
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::{ContextPath, PathStep};

/// One profile-building operation.
#[derive(Clone, Debug)]
enum Op {
    /// Record the path with the given index and weight.
    Record { path: usize, weight: u64 },
    /// Merge a scratch profile built from the listed (path, weight) pairs.
    Merge(Vec<(usize, u64)>),
}

fn path(idx: usize) -> ContextPath {
    // A small pool of distinct paths: chains of varying length and leaf.
    let len = 1 + idx % 4;
    ContextPath(
        (0..len)
            .map(|d| PathStep {
                site: if d == 0 {
                    None
                } else {
                    Some(CallSiteId::new((idx * 8 + d) as u32))
                },
                func: FunctionId::new((idx * 8 + d) as u32),
            })
            .collect(),
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..12, 0u64..1000).prop_map(|(path, weight)| Op::Record { path, weight }),
        prop::collection::vec((0usize..12, 0u64..1000), 0..6).prop_map(Op::Merge),
    ]
}

fn checked_sum(p: &HotContextProfile) -> u64 {
    p.top(usize::MAX).iter().map(|(_, c)| *c).sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// `total` equals the sum of counts after arbitrary record/merge
    /// sequences, and no context ever shows up with zero weight.
    #[test]
    fn total_equals_sum_of_counts(ops in prop::collection::vec(op_strategy(), 0..24)) {
        let mut profile = HotContextProfile::new();
        for op in ops {
            match op {
                Op::Record { path: p, weight } => profile.record_weighted(&path(p), weight),
                Op::Merge(pairs) => {
                    let mut other = HotContextProfile::new();
                    for (p, w) in pairs {
                        other.record_weighted(&path(p), w);
                    }
                    prop_assert_eq!(other.total(), checked_sum(&other));
                    profile.merge(&other);
                }
            }
            prop_assert_eq!(profile.total(), checked_sum(&profile));
            prop_assert_eq!(profile.distinct(), profile.top(usize::MAX).len());
            prop_assert!(profile.top(usize::MAX).iter().all(|(_, c)| *c > 0));
        }
    }

    /// Merging is weight-preserving: the merged total is the sum of parts.
    #[test]
    fn merge_preserves_total(
        a in prop::collection::vec((0usize..12, 0u64..1000), 0..12),
        b in prop::collection::vec((0usize..12, 0u64..1000), 0..12),
    ) {
        let mut pa = HotContextProfile::new();
        for (p, w) in a {
            pa.record_weighted(&path(p), w);
        }
        let mut pb = HotContextProfile::new();
        for (p, w) in b {
            pb.record_weighted(&path(p), w);
        }
        let (ta, tb) = (pa.total(), pb.total());
        pa.merge(&pb);
        prop_assert_eq!(pa.total(), ta + tb);
        prop_assert_eq!(pa.total(), checked_sum(&pa));
    }
}
