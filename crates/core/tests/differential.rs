//! Randomized differential test: the engine against a simple truth stack.
//!
//! Drives the engine with random call/return sequences over a small
//! function universe — direct, indirect, recursive and *tail* calls — and,
//! after every event, decodes the live context and compares it with a
//! directly maintained truth stack. Any divergence prints the event log
//! tail. This harness has caught real bugs (compressed-repetition
//! expansion; the TcStack/compression count interaction), so keep its
//! universe gnarly.

use dacce::{DacceConfig, DacceEngine};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

/// One possible call op: `(site, targets, indirect, tail)`.
type OpDef = (u32, &'static [u32], bool, bool);

/// Static universe: function -> its call ops. Site owners are fixed, as in
/// a real binary. f1 self-recurses and tail-calls f3; f3 indirect-tail-calls
/// back into f1/f2 (a tail cycle); f2 re-enters f0 (recursion through main).
fn universe() -> Vec<Vec<OpDef>> {
    vec![
        /* f0 */
        vec![
            (0, &[1], false, false),
            (1, &[2], false, false),
            (2, &[1, 2, 3], true, false),
        ],
        /* f1 */
        vec![
            (3, &[3], false, false),
            (4, &[1], false, false),
            (7, &[3], false, true),
        ],
        /* f2 */ vec![(5, &[1], false, false), (6, &[0], false, false)],
        /* f3 */ vec![(8, &[1, 2], true, true)],
    ]
}

/// Truth frame: `(site, func, is_tail)`.
type TruthFrame = (u32, u32, bool);

fn run_seed(seed: u64, config: DacceConfig) {
    let uni = universe();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut e = DacceEngine::new(config, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);

    let mut truth: Vec<TruthFrame> = Vec::new();
    let mut log: Vec<String> = Vec::new();

    for step in 0..4000 {
        let cur = truth.last().map_or(0, |&(_, t, _)| t);
        let sites = &uni[cur as usize];
        let can_call = !sites.is_empty() && truth.len() < 24;
        let do_call = can_call && (truth.is_empty() || rng.gen_bool(0.55));
        if do_call {
            // Tail calls out of the root frame would never "return" (main
            // restarts are modelled elsewhere); require a frame below.
            let choices: Vec<&OpDef> = sites
                .iter()
                .filter(|(_, _, _, tail)| !tail || !truth.is_empty())
                .collect();
            if choices.is_empty() {
                continue;
            }
            let &&(site, targets, indirect, tail) = &choices[rng.gen_range(0..choices.len())];
            let target = targets[rng.gen_range(0..targets.len())];
            let dispatch = if indirect {
                CallDispatch::Indirect
            } else {
                CallDispatch::Direct
            };
            log.push(format!(
                "call{} s{site} f{cur}->f{target}",
                if tail { "*" } else { "" }
            ));
            e.call(ThreadId::MAIN, s(site), f(cur), f(target), dispatch, tail);
            truth.push((site, target, tail));
        } else if !truth.is_empty() {
            // Return from the innermost *physical* frame: its tail chain
            // unwinds with it, and the after-code runs at the physical
            // frame's call site.
            let phys = truth
                .iter()
                .rposition(|&(_, _, tail)| !tail)
                .expect("non-tail frame exists under any tail chain");
            let (site, callee, _) = truth[phys];
            let caller = if phys == 0 { 0 } else { truth[phys - 1].1 };
            truth.truncate(phys);
            log.push(format!("ret s{site} f{caller}<-f{callee}"));
            e.ret(ThreadId::MAIN, s(site), f(caller), f(callee));
        }

        // Validate after every event.
        let snap = e.snapshot(ThreadId::MAIN);
        let decoded = match e.decode(&snap) {
            Ok(p) => p,
            Err(err) => {
                let tail: Vec<&String> = log.iter().rev().take(30).collect();
                panic!(
                    "seed {seed} step {step}: decode error {err}\nsnap: {snap:?}\nlog tail: {tail:?}"
                );
            }
        };
        let got: Vec<u32> = decoded.0.iter().map(|p| p.func.raw()).collect();
        let mut want = vec![0u32];
        want.extend(truth.iter().map(|&(_, t, _)| t));
        if got != want {
            let tail: Vec<&String> = log.iter().rev().take(40).collect();
            panic!(
                "seed {seed} step {step}: decoded {got:?} truth {want:?}\nsnap: {snap:?}\nts={} max_id={}\nlog tail: {tail:?}",
                e.timestamp(),
                e.max_id()
            );
        }
        if step % 257 == 0 {
            e.check_invariants()
                .unwrap_or_else(|err| panic!("seed {seed} step {step}: {err}"));
        }
    }
}

#[test]
fn differential_default_config() {
    for seed in 0..12 {
        run_seed(
            seed,
            DacceConfig {
                edge_threshold: 4,
                min_events_between_reencodes: 64,
                ccstack_rate_window: 512,
                hot_check_every: 777,
                compression_min_heat: 8,
                sample_ring: 32,
                ..DacceConfig::default()
            },
        );
    }
}

#[test]
fn differential_always_compress() {
    for seed in 100..106 {
        run_seed(
            seed,
            DacceConfig {
                edge_threshold: 3,
                min_events_between_reencodes: 16,
                compression: dacce::CompressionMode::Always,
                ..DacceConfig::default()
            },
        );
    }
}

#[test]
fn differential_no_reencode() {
    for seed in 200..206 {
        run_seed(seed, DacceConfig::no_reencoding());
    }
}

#[test]
fn differential_eager_reencode_with_compression() {
    for seed in 300..308 {
        run_seed(
            seed,
            DacceConfig {
                edge_threshold: 2,
                min_events_between_reencodes: 8,
                reencode_backoff: 1.05,
                reencode_interval_cap: 256,
                compression: dacce::CompressionMode::Always,
                compression_min_heat: 1,
                indirect_inline_max: 1,
                ..DacceConfig::default()
            },
        );
    }
}
